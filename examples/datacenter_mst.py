"""Building a minimum spanning tree of a switch fabric with a control bus.

Scenario: a large ring/torus-like interconnect whose links have heterogeneous
costs (latencies), plus a shared low-bandwidth control bus (the multiaccess
channel).  The operator wants the minimum-cost spanning tree for building a
routing/aggregation overlay.  The Section 6 multimedia MST algorithm computes
it in O(√n log n) time, while a point-to-point-only fragment-merging
algorithm needs Θ(n log n) on this high-diameter fabric.

Run with:  python examples/datacenter_mst.py
"""

from repro.core.mst import MultimediaMST, PointToPointMST, kruskal_mst
from repro.topology import ring_graph, torus_graph
from repro.topology.weights import assign_distinct_weights


def solve(name, graph) -> None:
    reference = kruskal_mst(graph)
    multimedia = MultimediaMST(graph).run()
    baseline = PointToPointMST(graph).run()
    assert multimedia.mst.edge_keys() == reference.edge_keys()
    assert baseline.mst.edge_keys() == reference.edge_keys()
    print(f"\n{name}: n={graph.num_nodes()}, m={graph.num_edges()}")
    print(f"  MST weight                 : {reference.total_weight:.0f}")
    print(
        f"  multimedia MST             : {multimedia.total_rounds} rounds "
        f"({multimedia.initial_fragments} initial fragments, "
        f"{len(multimedia.merge_phases)} merge phases)"
    )
    print(f"  point-to-point baseline    : {baseline.total_rounds} rounds")
    print(
        "  speed-up from the channel  : "
        f"{baseline.total_rounds / multimedia.total_rounds:.2f}×"
    )


def main() -> None:
    # a moderate torus — low diameter, the baseline is still competitive
    torus = assign_distinct_weights(torus_graph(16, 16), seed=3)
    solve("16×16 torus fabric", torus)

    # a long ring — high diameter, the multimedia algorithm pulls ahead
    ring = assign_distinct_weights(ring_graph(4096), seed=3)
    solve("4096-node ring fabric", ring)


if __name__ == "__main__":
    main()
