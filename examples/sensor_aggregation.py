"""Sensor-field aggregation: min/max/mean over a random geometric network.

The scenario the paper's introduction motivates: processors connected by a
sparse point-to-point fabric (here: radio links between nearby sensors,
modelled by a random geometric graph) that also share one broadcast channel
(e.g. a satellite uplink / radio beacon).  Aggregating a reading across the
field needs Ω(diameter) time over the links alone and Ω(n) slots over the
channel alone; the two-stage multimedia algorithm needs only Õ(√n).

Run with:  python examples/sensor_aggregation.py
"""

import random

from repro.core.global_function import (
    INTEGER_ADDITION,
    INTEGER_MAXIMUM,
    INTEGER_MINIMUM,
    compute_global_function,
    compute_on_channel_only,
    compute_on_point_to_point_only,
)
from repro.core.partition import RandomizedPartitioner
from repro.topology import random_geometric_graph
from repro.topology.properties import diameter


def main() -> None:
    rng = random.Random(42)
    graph = random_geometric_graph(200, seed=42)
    print(
        f"sensor field: n={graph.num_nodes()}, m={graph.num_edges()}, "
        f"diameter={diameter(graph)}"
    )

    # each sensor holds a temperature reading in tenths of a degree
    readings = {node: rng.randint(150, 350) for node in graph.nodes()}

    # partition once (randomized, Section 4), reuse it for several queries
    forest = RandomizedPartitioner(graph, seed=7).run().forest
    print(f"partition: {forest.num_fragments()} fragments, radius ≤ {forest.max_radius()}")

    for name, function in (
        ("total", INTEGER_ADDITION),
        ("minimum", INTEGER_MINIMUM),
        ("maximum", INTEGER_MAXIMUM),
    ):
        result = compute_global_function(
            graph, function, readings, method="randomized", forest=forest, seed=3
        )
        print(
            f"{name:8s} = {result.value:6d}   "
            f"({result.total_rounds} rounds, {result.global_slots} channel slots)"
        )

    # compare against each medium on its own
    p2p = compute_on_point_to_point_only(graph, INTEGER_ADDITION, readings)
    channel = compute_on_channel_only(graph, INTEGER_ADDITION, readings, seed=3)
    multimedia = compute_global_function(
        graph, INTEGER_ADDITION, readings, method="randomized", forest=forest, seed=3
    )
    print(
        f"\ntime to aggregate the total: multimedia={multimedia.total_rounds}, "
        f"point-to-point only={p2p.rounds}, channel only={channel.rounds}"
    )


if __name__ == "__main__":
    main()
