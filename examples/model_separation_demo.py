"""Why the multimedia network is more powerful than either medium alone.

Reproduces the paper's central message (Theorem 2 + the upper bounds) as a
live demo: computing a global sensitive function on a diameter-Θ(n) network
takes Θ(n) time on the point-to-point network alone and Θ(n) slots on the
channel alone, but only Õ(√n) on the combination — and the paper's
Ω(min{d, √n}) lower bound says no multimedia algorithm can do much better.

The sweep is the registered ``e7`` experiment — the same spec `python -m
repro run e7` and the benchmark suite execute — driven here at custom sizes
through the unified runner.

Run with:  python examples/model_separation_demo.py
"""

from repro.experiments.runner import run_experiment


def main() -> None:
    result = run_experiment("e7", overrides={"sizes": (64, 256, 1024)})
    print(result.to_table().render())
    rows = result.rows
    assert all(row["speedup_vs_p2p"] > 1.0 for row in rows[1:])
    print(
        "\nBoth single-medium columns grow linearly with n while the multimedia "
        "column grows like √n — the combination is strictly more powerful than "
        "either of its parts (Theorem 2 / Corollary 3).\n"
        "Try other topologies and presets:  python -m repro run e7 "
        "--topology ad_hoc --preset hot"
    )


if __name__ == "__main__":
    main()
