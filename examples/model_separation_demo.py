"""Why the multimedia network is more powerful than either medium alone.

Reproduces the paper's central message (Theorem 2 + the upper bounds) as a
live demo: computing a global sensitive function on a diameter-Θ(n) network
takes Θ(n) time on the point-to-point network alone and Θ(n) slots on the
channel alone, but only Õ(√n) on the combination — and the paper's
Ω(min{d, √n}) lower bound says no multimedia algorithm can do much better.

Run with:  python examples/model_separation_demo.py
"""

from repro.analysis.reporting import Table
from repro.core.global_function import (
    INTEGER_ADDITION,
    compute_global_function,
    compute_on_channel_only,
    compute_on_point_to_point_only,
)
from repro.core.lower_bounds import (
    broadcast_lower_bound,
    multimedia_lower_bound,
    point_to_point_lower_bound,
)
from repro.topology import ring_graph
from repro.topology.properties import diameter
from repro.topology.weights import assign_distinct_weights


def main() -> None:
    table = Table(
        title="Computing the network-wide sum on an n-node ring (time in rounds/slots)",
        columns=[
            "n", "d", "multimedia", "p2p only", "channel only",
            "Ω bound (mm)", "Ω bound (p2p)", "Ω bound (chan)",
        ],
    )
    for n in (64, 256, 1024):
        graph = assign_distinct_weights(ring_graph(n), seed=1)
        d = diameter(graph)
        inputs = {node: 1 for node in graph.nodes()}
        multimedia = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5
        )
        p2p = compute_on_point_to_point_only(graph, INTEGER_ADDITION, inputs)
        channel = compute_on_channel_only(graph, INTEGER_ADDITION, inputs, seed=5)
        assert multimedia.value == p2p.value == channel.value == n
        table.add_row(
            n, d, multimedia.total_rounds, p2p.rounds, channel.rounds,
            multimedia_lower_bound(n, d),
            point_to_point_lower_bound(d),
            broadcast_lower_bound(n),
        )
    print(table.render())
    print(
        "\nBoth single-medium columns grow linearly with n while the multimedia "
        "column grows like √n — the combination is strictly more powerful than "
        "either of its parts (Theorem 2 / Corollary 3)."
    )


if __name__ == "__main__":
    main()
