"""Quickstart: build a multimedia network, partition it, and aggregate a value.

Run with:  python examples/quickstart.py
"""

from repro.core.global_function import INTEGER_ADDITION, compute_global_function
from repro.core.partition import DeterministicPartitioner, validate_partition
from repro.topology import grid_graph
from repro.topology.weights import assign_distinct_weights


def main() -> None:
    # 1. a point-to-point topology — an 8×8 grid of 64 processors; every
    #    processor is additionally attached to the shared multiaccess channel
    graph = assign_distinct_weights(grid_graph(8, 8), seed=7)
    print(f"network: n={graph.num_nodes()} nodes, m={graph.num_edges()} links")

    # 2. partition it into O(√n) fragments of radius O(√n) (Section 3)
    partition = DeterministicPartitioner(graph).run()
    report = validate_partition(partition.forest, graph, check_mst_subtrees=True)
    print(
        f"partition: {partition.num_fragments} fragments, "
        f"max radius {partition.forest.max_radius()}, "
        f"min size {partition.forest.min_size()}, "
        f"subtrees of MST: {report.subtrees_of_mst}"
    )
    print(
        f"partition cost: {partition.metrics.rounds} rounds, "
        f"{partition.metrics.point_to_point_messages} messages"
    )

    # 3. compute a global sensitive function (the sum of all local inputs)
    #    with the two-stage multimedia algorithm, reusing the partition
    inputs = {node: int(node) for node in graph.nodes()}
    result = compute_global_function(
        graph, INTEGER_ADDITION, inputs,
        method="deterministic", forest=partition.forest, seed=1,
    )
    print(
        f"sum over the network = {result.value} "
        f"(expected {sum(inputs.values())}) in {result.total_rounds} rounds "
        f"({result.local_rounds} local + {result.global_slots} channel slots)"
    )


if __name__ == "__main__":
    main()
