"""Setuptools metadata for the reproduction package.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so that
``pip install -e . --no-use-pep517`` works in offline environments that lack
the ``wheel`` package required by PEP 517 editable installs.  Installing
exposes the ``repro`` console script (the same CLI as ``python -m repro``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-multimedia-networks",
    version="1.0.0",
    description="Reproduction of Afek, Landau, Schieber, Yung (PODC 1988): "
    "the power of multimedia networks",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
