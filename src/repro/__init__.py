"""Reproduction of *The Power of Multimedia: Combining Point-to-Point and
Multiaccess Networks* (Afek, Landau, Schieber, Yung — PODC 1988 / Information
and Computation 84, 1990).

The package provides:

* a faithful simulation of the **multimedia network** model (synchronous
  point-to-point network + slotted collision channel) — :mod:`repro.sim`;
* topology generators, including the paper's ray graphs — :mod:`repro.topology`;
* the protocol building blocks (collision resolution, symmetry breaking,
  tree primitives) — :mod:`repro.protocols`;
* the paper's algorithms: deterministic and randomized network partitioning,
  global-sensitive-function computation, the multimedia MST, lower bounds and
  the Section 7 model variations — :mod:`repro.core`;
* the experiment harness reproducing every quantitative claim —
  :mod:`repro.experiments`.

Quickstart::

    from repro import topology
    from repro.core.global_function import INTEGER_ADDITION, compute_global_function

    graph = topology.ring_graph(64)
    result = compute_global_function(
        graph, INTEGER_ADDITION, {v: v for v in graph.nodes()},
        method="randomized", seed=7,
    )
    print(result.value, result.total_rounds)
"""

__version__ = "1.0.0"

from repro import analysis, core, protocols, sim, topology  # noqa: F401

__all__ = ["analysis", "core", "protocols", "sim", "topology", "__version__"]
