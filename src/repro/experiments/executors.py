"""Pluggable sweep executors: serial, process-pool, and sharded/checkpointed.

:func:`~repro.experiments.runner.run_experiment` delegates the *mechanics* of
executing a sweep's points to an :class:`Executor`, so new execution backends
(batch schedulers, remote farms) extend this module instead of adding new
drivers.  Three backends ship today:

* :class:`SerialExecutor` — one point after another in the calling process;
  the reference semantics every other backend must reproduce bit-identically.
* :class:`ProcessExecutor` — the historical ``processes=N`` pool, refactored
  behind the protocol: sweep points run across worker processes and the rows
  come back in sweep order (every point is independently seeded, so the rows
  are bit-identical to a serial run).
* :class:`ShardedExecutor` — partitions the sweep into deterministic,
  independently resumable **shards**, executes them one at a time, and writes
  each completed shard as a JSON checkpoint under a run directory.  A killed
  sweep restarts from its last completed shard (``--resume``), shards can be
  farmed out across invocations (``--shard 2/8``), and the merged rows are
  bit-identical to a serial run of the same sweep.
* ``distributed`` (:class:`~repro.experiments.distributed.DistributedExecutor`)
  — a coordinator leases the same shards to worker processes over TCP
  (heartbeats, lease timeouts, at-least-once reassignment); every accepted
  shard lands as the same digest-checked checkpoint, so the merged rows stay
  bit-identical to serial.  Lives in :mod:`repro.experiments.distributed`
  and is resolved lazily by :func:`make_executor`.

The checkpoint primitives (:func:`write_checkpoint`, :func:`load_checkpoint`,
:func:`ensure_manifest`, :func:`merge_checkpoints`, :func:`resolve_run_dir`)
are module-level so every checkpoint-producing backend — and the read-side
``repro serve`` service — validates and merges through one code path.

Shard / checkpoint layout
-------------------------
A run directory holds one ``manifest.json`` plus one ``shard-NNNN.json`` per
completed shard::

    .repro_runs/e2-default-1f0c2a9b3d/
        manifest.json        # sweep identity: spec id, preset, params, digest
        shard-0000.json      # {"digest", "shard", "indices", "rows", ...}
        shard-0001.json
        ...

Shard ``k`` of ``N`` owns sweep-point indices ``k, k+N, k+2N, …`` (round-robin
striping, so the expensive tail of an ascending size sweep spreads across
shards instead of landing in the last one).  The striping is a function of
``(num_points, shard_count)`` only, so any two invocations agree on the
layout; the manifest digest covers the spec id, preset, resolved parameters
and shard count, and a run directory is refused when it belongs to a
different sweep.

Determinism contract
--------------------
Rows are stored in the checkpoint exactly as the JSON encoder emits them
(with non-finite floats wrapped reversibly so the files stay strict JSON)
and always read back through the JSON decoder — including for shards
computed in the current invocation — so a resumed/merged result cannot
differ from a fresh one.  Since every sweep point carries its own seeds (see
:mod:`repro.experiments.registry`), the merged rows equal a serial run's rows
bit-for-bit; ``tests/test_executors.py`` holds the matrix proof.

Accounting
----------
Executors report *compute* seconds: the summed execution time of every shard
that contributes rows, accumulated across invocations through the checkpoint
files.  The runner records this as ``ExperimentResult.wall_seconds`` and the
final invocation's own wall clock separately as ``invocation_seconds`` (see
``RESULT_SCHEMA`` 2 in :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.experiments.registry import ExperimentSpec, PointParams, RowDict
from repro.experiments.serialization import (
    decode_nonfinite,
    encode_nonfinite,
    jsonable,
)

MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"

#: executor names accepted by ``run_experiment(executor=...)`` and the CLI
EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "process", "sharded", "distributed")


class ExecutorConfigError(ValueError):
    """An executor refused its configuration (operator error, not a bug).

    Raised at execution time for mistakes an operator can fix — a run
    directory belonging to a different sweep, a shard index outside the
    layout — so the CLI can render them as clean usage errors while genuine
    failures inside a sweep keep their tracebacks.
    """


@dataclass
class ExecutionOutcome:
    """What an executor hands back to the runner.

    Attributes:
        rows: the completed rows, in sweep-point order.  A partial sharded
            run (``--shard k/N`` or ``--max-shards``) returns only the rows
            of the shards completed so far.
        compute_seconds: summed execution time of every shard/point that
            contributed rows — accumulated across invocations for a resumed
            sharded run, equal to this invocation's sweep time otherwise.
        pending_points: sweep points not yet computed (0 for a complete run).
    """

    rows: List[RowDict]
    compute_seconds: float
    pending_points: int = 0


@runtime_checkable
class Executor(Protocol):
    """The executor protocol: run a spec's sweep points, return the rows.

    Implementations must preserve the serial semantics: rows in sweep-point
    order, bit-identical to :class:`SerialExecutor` on the same spec and
    points (every point carries its own seeds, so this is a matter of not
    reordering or re-encoding rows, not of luck).
    """

    name: str

    def execute(
        self,
        spec: ExperimentSpec,
        preset: str,
        params: Mapping[str, Any],
        points: List[PointParams],
    ) -> ExecutionOutcome:
        """Execute ``points`` of ``spec`` and return the outcome."""
        ...


def execute_point(spec: ExperimentSpec, point: Mapping[str, Any]) -> RowDict:
    """Execute one sweep point of ``spec`` and validate its row schema.

    Raises:
        ValueError: when the returned row's keys do not match the spec's
            declared columns.
    """
    row = spec.point_fn(**point)
    missing = [column for column in spec.columns if column not in row]
    if missing or len(row) != len(spec.columns):
        raise ValueError(
            f"experiment {spec.id!r} returned a row whose keys do not "
            f"match its declared columns (missing: {missing}, got: {list(row)})"
        )
    return row


class SerialExecutor:
    """Reference executor: every point in order, in the calling process."""

    name = "serial"

    def execute(
        self,
        spec: ExperimentSpec,
        preset: str,
        params: Mapping[str, Any],
        points: List[PointParams],
    ) -> ExecutionOutcome:
        """Execute every point serially."""
        start = time.perf_counter()
        rows = [execute_point(spec, point) for point in points]
        return ExecutionOutcome(
            rows=rows, compute_seconds=time.perf_counter() - start
        )


def _run_point_packed(packed: Tuple[str, Mapping[str, Any]]) -> RowDict:
    """Pool-worker entry: resolve the spec by id (ids pickle, functions vary)."""
    from repro.experiments.registry import get_experiment

    experiment_id, point = packed
    return execute_point(get_experiment(experiment_id), point)


@dataclass
class ProcessExecutor:
    """Process-pool executor: sweep points across ``processes`` workers.

    The pool workers re-resolve the spec by id, so parallel execution needs a
    *registered* spec; rows come back in sweep order and are bit-identical to
    a serial run.  With fewer than two points (or ``processes <= 1``) it
    degrades to the serial path, pool-free.
    """

    processes: int
    name: str = field(default="process", init=False)

    def execute(
        self,
        spec: ExperimentSpec,
        preset: str,
        params: Mapping[str, Any],
        points: List[PointParams],
    ) -> ExecutionOutcome:
        """Execute the points across the process pool."""
        if self.processes <= 1 or len(points) < 2:
            return SerialExecutor().execute(spec, preset, params, points)
        start = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=min(self.processes, len(points))
        ) as pool:
            rows = list(pool.map(_run_point_packed, [(spec.id, p) for p in points]))
        return ExecutionOutcome(
            rows=rows, compute_seconds=time.perf_counter() - start
        )


# ----------------------------------------------------------------------
# sharded execution
# ----------------------------------------------------------------------
def shard_indices(num_points: int, shard_count: int) -> List[List[int]]:
    """Return each shard's sweep-point indices (round-robin striping).

    Shard ``k`` (0-based) owns indices ``k, k + N, k + 2N, …`` — a disjoint
    cover of ``range(num_points)`` that is a pure function of the two
    arguments, so independent invocations always agree on the layout.  A
    shard count larger than the point count is allowed (farm tooling often
    fixes ``N`` before knowing the sweep size): the excess shards are
    simply empty.

    Raises:
        ValueError: when ``shard_count`` is not positive.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    return [list(range(k, num_points, shard_count)) for k in range(shard_count)]


def sweep_digest(
    experiment_id: str,
    preset: str,
    params: Mapping[str, Any],
    num_points: int,
    shard_count: int,
) -> str:
    """Return the identity digest of one sharded sweep.

    Two invocations may share a run directory only when this digest matches:
    it covers everything that determines the shard layout and the rows —
    the spec id, the preset, the resolved parameters, the point count and
    the shard count.  The adversity schedule is hashed as its own explicit
    key (``None`` for a fault-free sweep) on top of riding along inside
    ``params``, so a ``--resume`` against checkpoints written under a
    different — or no — adversity configuration is always refused rather
    than silently merged.
    """
    payload = json.dumps(
        {
            "experiment": experiment_id,
            "preset": preset,
            "params": jsonable(dict(params)),
            "adversity": jsonable(params.get("adversity")),
            "num_points": num_points,
            "shard_count": shard_count,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_run_root() -> Path:
    """Return the default parent directory for sharded run directories.

    ``.repro_runs/`` at the repository root of a ``src/`` checkout, the
    working directory otherwise (mirroring
    :func:`repro.experiments.trajectory.default_output`).
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "src").is_dir():
        return root / ".repro_runs"
    return Path.cwd() / ".repro_runs"


def resolve_run_dir(
    experiment_id: str,
    preset: str,
    params: Mapping[str, Any],
    num_points: int,
    run_dir: Optional[Path],
) -> Path:
    """Return ``run_dir`` as a path, or the default directory for this sweep.

    The default directory name must NOT depend on the shard layout (only the
    sweep identity), so a farm run with ``--shard K/N``, a bare ``--resume``
    collect, and a distributed coordinator all resolve to the same
    directory; shard count 0 is the layout-independent sentinel.
    """
    if run_dir is not None:
        return Path(run_dir)
    name_digest = sweep_digest(experiment_id, preset, params, num_points, 0)
    return default_run_root() / f"{experiment_id}-{preset}-{name_digest[:10]}"


def _shard_path(run_dir: Path, shard: int) -> Path:
    """Return the checkpoint path of shard ``shard`` under ``run_dir``."""
    return run_dir / f"shard-{shard:04d}.json"


def _write_json_atomic(path: Path, payload: Mapping[str, Any]) -> None:
    """Write ``payload`` as strict JSON via a unique temp file + rename.

    ``allow_nan=False`` keeps every emitted file RFC 8259-valid; callers
    with non-finite floats to persist encode them reversibly first (see
    :func:`repro.experiments.serialization.encode_nonfinite`).  The temp
    file name is unique per writer (``mkstemp``) so concurrent farm
    invocations sharing a run directory — the documented ``--shard K/N``
    pattern — can never interleave on one temp file and promote a torn
    manifest/checkpoint.
    """
    handle, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "w") as tmp:
            tmp.write(json.dumps(payload, indent=2, allow_nan=False) + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def ensure_manifest(
    run_dir: Path,
    experiment_id: str,
    preset: str,
    params: Mapping[str, Any],
    num_points: int,
    shard_count: int,
    digest: str,
) -> None:
    """Create the run directory's manifest, or verify an existing one.

    Raises:
        ExecutorConfigError: when the directory's manifest carries a
            different digest (another experiment, preset, parameterisation,
            or shard layout).
    """
    manifest_path = run_dir / MANIFEST_NAME
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
            existing = manifest["digest"]
        except (OSError, ValueError, KeyError):
            existing = None  # unreadable manifest: rewrite it below
        if existing is not None and existing != digest:
            raise ExecutorConfigError(
                f"run directory {run_dir} belongs to a different sweep "
                f"(manifest digest {existing[:10]}… != {digest[:10]}…); "
                "pass a fresh --run-dir or matching parameters"
            )
        if existing == digest:
            return
    _write_json_atomic(
        manifest_path,
        {
            "schema": MANIFEST_SCHEMA,
            "experiment": experiment_id,
            "preset": preset,
            "params": jsonable(dict(params)),
            "adversity": jsonable(params.get("adversity")),
            "num_points": num_points,
            "shard_count": shard_count,
            "digest": digest,
        },
    )


def write_checkpoint(
    run_dir: Path,
    shard: int,
    shard_count: int,
    indices: List[int],
    rows: List[RowDict],
    compute_seconds: float,
    digest: str,
) -> None:
    """Write one completed shard's checkpoint file atomically.

    The rows are stored under the reversible non-finite encoding so the
    file stays strict RFC 8259 JSON while the decoded rows stay
    bit-identical to a serial run's.
    """
    _write_json_atomic(
        _shard_path(run_dir, shard),
        {
            "schema": MANIFEST_SCHEMA,
            "digest": digest,
            "shard": shard,
            "shard_count": shard_count,
            "indices": list(indices),
            "rows": encode_nonfinite(rows),
            "compute_seconds": round(compute_seconds, 6),
        },
    )


def load_checkpoint(
    run_dir: Path,
    shard: int,
    expected_indices: List[int],
    columns: Tuple[str, ...],
    digest: str,
) -> Optional[Dict[str, Any]]:
    """Load and validate one shard checkpoint; ``None`` when unusable.

    A missing, truncated, corrupt, foreign (digest mismatch), or
    schema-mismatched file is reported as absent rather than fatal, so
    recovery is always "re-run the shard" — the checkpoint directory can
    never wedge a sweep, and a stale checkpoint from a
    differently-parameterised sweep is never merged even when the manifest
    was lost.  The distributed coordinator applies the same validation to
    worker *submissions* before anything reaches the directory at all.
    """
    path = _shard_path(run_dir, shard)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    try:
        if data["digest"] != digest:
            return None
        rows = decode_nonfinite(data["rows"])
        if data["indices"] != list(expected_indices) or len(rows) != len(
            expected_indices
        ):
            return None
        if any(
            not isinstance(row, dict) or set(columns) - set(row)
            for row in rows
        ):
            return None
        return {
            "rows": rows,
            "compute_seconds": float(data["compute_seconds"]),
        }
    except (KeyError, TypeError, ValueError):
        return None


def merge_checkpoints(
    run_dir: Path,
    plan: List[List[int]],
    columns: Tuple[str, ...],
    digest: str,
    preloaded: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Tuple[Dict[int, RowDict], float]:
    """Merge every valid checkpoint under ``run_dir`` into per-index rows.

    Returns ``(rows_by_index, compute_seconds)`` — whoever wrote the
    checkpoints (a serial sharded run, farmed ``--shard K/N`` invocations,
    or distributed workers), the merge validates each file against the
    digest and layout and sums the contributing shards' compute time.
    ``preloaded`` carries checkpoints the caller already parsed this
    invocation so they are not re-read.
    """
    rows_by_index: Dict[int, RowDict] = {}
    compute_seconds = 0.0
    for shard in range(len(plan)):
        loaded = (preloaded or {}).get(shard)
        if loaded is None:
            loaded = load_checkpoint(run_dir, shard, plan[shard], columns, digest)
        if loaded is None:
            continue
        for index, row in zip(plan[shard], loaded["rows"]):
            rows_by_index[index] = row
        compute_seconds += loaded["compute_seconds"]
    return rows_by_index, compute_seconds


@dataclass
class ShardedExecutor:
    """Checkpointed executor: deterministic shards under a run directory.

    Attributes:
        run_dir: run directory holding the manifest and shard checkpoints;
            defaults to ``.repro_runs/<id>-<preset>-<digest10>`` at the repo
            root when unset (the name digest covers the sweep identity but
            not the shard layout, so farm and collect invocations with
            different ``--shard`` settings resolve to the same directory).
        shard_count: number of shards the sweep is partitioned into.  When
            unset, an existing run directory's manifest supplies the count
            (so a collect/`--resume` invocation agrees with the farm
            invocations that wrote it); otherwise it defaults to one shard
            per sweep point (finest resume grain).
        shard_index: when set (0-based), execute only this shard — the
            ``--shard k/N`` farm-out mode.  The returned rows still merge
            every completed checkpoint in the run directory, so the last
            farm invocation to finish observes the complete sweep.
        resume: reuse valid checkpoints already present in the run
            directory; without it every selected shard is recomputed (a
            corrupt or foreign-sweep checkpoint is never reused either way).
        max_shards: when > 0, compute at most this many shards in this
            invocation and leave the rest pending — the hook the resume
            tests and the CI smoke use to simulate a killed sweep.
    """

    run_dir: Optional[Path] = None
    shard_count: Optional[int] = None
    shard_index: Optional[int] = None
    resume: bool = False
    max_shards: int = 0
    name: str = field(default="sharded", init=False)

    def execute(
        self,
        spec: ExperimentSpec,
        preset: str,
        params: Mapping[str, Any],
        points: List[PointParams],
    ) -> ExecutionOutcome:
        """Execute (a subset of) the shards and merge every completed one.

        Raises:
            ExecutorConfigError: on an out-of-range ``shard_index``, a
                non-positive ``shard_count``, or a run directory that
                belongs to a different sweep.
        """
        run_dir = resolve_run_dir(
            spec.id, preset, params, len(points), self.run_dir
        )
        count = self.shard_count
        if count is None:
            # a collect/resume invocation without an explicit layout adopts
            # the one the run directory's farm invocations wrote (the
            # manifest is still digest-verified below)
            count = _manifest_shard_count(run_dir)
        if count is None:
            count = max(1, len(points))
        if count < 1:
            raise ExecutorConfigError(
                f"shard count must be positive, got {count}"
            )
        plan = shard_indices(len(points), count)
        if self.shard_index is not None and not 0 <= self.shard_index < count:
            raise ExecutorConfigError(
                f"shard index {self.shard_index} out of range for "
                f"{count} shard(s)"
            )
        digest = sweep_digest(spec.id, preset, params, len(points), count)
        run_dir.mkdir(parents=True, exist_ok=True)
        ensure_manifest(
            run_dir, spec.id, preset, params, len(points), count, digest
        )

        selected = (
            range(count) if self.shard_index is None else [self.shard_index]
        )
        # checkpoints already parsed during the resume skip-check are kept
        # so the merge below never re-reads a file this invocation loaded
        preloaded: Dict[int, Dict[str, Any]] = {}
        computed = 0
        for shard in selected:
            if self.resume:
                loaded = load_checkpoint(
                    run_dir, shard, plan[shard], spec.columns, digest
                )
                if loaded is not None:
                    preloaded[shard] = loaded
                    continue
            if self.max_shards > 0 and computed >= self.max_shards:
                break
            start = time.perf_counter()
            rows = [execute_point(spec, points[index]) for index in plan[shard]]
            write_checkpoint(
                run_dir, shard, count, plan[shard], rows,
                time.perf_counter() - start, digest,
            )
            computed += 1

        # merge every valid checkpoint present, whoever wrote it
        rows_by_index, compute_seconds = merge_checkpoints(
            run_dir, plan, spec.columns, digest, preloaded
        )
        rows = [rows_by_index[i] for i in sorted(rows_by_index)]
        return ExecutionOutcome(
            rows=rows,
            compute_seconds=compute_seconds,
            pending_points=len(points) - len(rows_by_index),
        )


def _manifest_shard_count(run_dir: Path) -> Optional[int]:
    """Return the shard count recorded in ``run_dir``'s manifest, if any.

    ``None`` when the manifest is missing, unreadable, or carries a
    nonsensical count — the caller then falls back to its own default, and
    the subsequent digest verification still decides whether the directory
    may be used at all.
    """
    try:
        data = json.loads((run_dir / MANIFEST_NAME).read_text())
        count = data["shard_count"]
    except (OSError, ValueError, KeyError):
        return None
    if isinstance(count, int) and count >= 1:
        return count
    return None


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI ``K/N`` shard selector into 0-based ``(index, count)``.

    ``K`` is 1-based on the command line (``--shard 2/8`` is the second of
    eight shards), matching how operators number farm-out slots.

    Raises:
        ValueError: on malformed text or ``K`` outside ``[1, N]``.
    """
    head, sep, tail = text.partition("/")
    if not sep:
        raise ValueError(f"expected K/N (e.g. 2/8), got {text!r}")
    try:
        index, count = int(head), int(tail)
    except ValueError:
        raise ValueError(f"expected integer K/N (e.g. 2/8), got {text!r}") from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must satisfy 1 <= K <= N, got {text!r}")
    return index - 1, count


def make_executor(
    name: str,
    processes: int = 0,
    shard: Optional[Tuple[int, int]] = None,
    resume: bool = False,
    run_dir: Optional[Path] = None,
    max_shards: int = 0,
    workers: int = 0,
    lease_timeout: float = 0.0,
) -> Executor:
    """Build an executor from CLI-shaped options.

    Args:
        name: one of :data:`EXECUTOR_NAMES`.
        processes: worker count for the ``process`` backend.
        shard: 0-based ``(index, count)`` pair for the ``sharded`` backend
            (see :func:`parse_shard`); sets both the shard layout and the
            single shard this invocation executes.
        resume: reuse completed checkpoints (``sharded``/``distributed``).
        run_dir: checkpoint directory override (``sharded``/``distributed``).
        max_shards: compute at most this many shards this invocation
            (``sharded`` only; 0 means no limit).
        workers: local worker-process count for the ``distributed`` backend
            (0 means its default).
        lease_timeout: seconds a distributed shard lease stays valid without
            a heartbeat (0 means the backend's default).

    Raises:
        ValueError: on an unknown executor name, or options combined with a
            backend that does not take them.
    """
    if name in ("serial", "process"):
        if shard or resume or run_dir or max_shards:
            raise ValueError(
                "--shard/--resume/--run-dir/--max-shards require "
                "--executor sharded (or distributed for --run-dir/--resume)"
            )
        if workers or lease_timeout:
            raise ValueError(
                "--workers/--lease-timeout require --executor distributed"
            )
        if name == "serial":
            if processes > 0:
                # an explicit serial request and a worker count contradict
                # each other; refuse rather than silently picking one
                raise ValueError("-j/--processes requires --executor process")
            return SerialExecutor()
        # no explicit worker count: use the machine; an explicit count is
        # honoured as-is (1 degrades to the serial path, deliberately)
        count = processes if processes > 0 else (os.cpu_count() or 2)
        return ProcessExecutor(processes=count)
    if name == "sharded":
        if max_shards < 0:
            raise ValueError(
                f"--max-shards must be non-negative, got {max_shards}"
            )
        if processes > 0:
            raise ValueError(
                "-j/--processes is not supported by the sharded executor "
                "(shards run serially within an invocation; farm them out "
                "across invocations with --shard K/N instead)"
            )
        if workers or lease_timeout:
            raise ValueError(
                "--workers/--lease-timeout require --executor distributed"
            )
        index, count = (None, None) if shard is None else shard
        return ShardedExecutor(
            run_dir=run_dir,
            shard_count=count,
            shard_index=index,
            resume=resume,
            max_shards=max_shards,
        )
    if name == "distributed":
        if shard is not None or max_shards:
            raise ValueError(
                "--shard/--max-shards are not supported by the distributed "
                "executor (the coordinator leases shards to workers itself)"
            )
        if processes > 0:
            raise ValueError(
                "-j/--processes is not supported by the distributed "
                "executor; use --workers for the local worker count"
            )
        if workers < 0:
            raise ValueError(f"--workers must be non-negative, got {workers}")
        if lease_timeout < 0:
            raise ValueError(
                f"--lease-timeout must be non-negative, got {lease_timeout}"
            )
        # imported lazily: distributed.py builds on this module
        from repro.experiments.distributed import DistributedExecutor

        kwargs: Dict[str, Any] = {"run_dir": run_dir, "resume": resume}
        if workers > 0:
            kwargs["workers"] = workers
        if lease_timeout > 0:
            kwargs["lease_timeout"] = lease_timeout
        return DistributedExecutor(**kwargs)
    raise ValueError(
        f"unknown executor {name!r} (available: {', '.join(EXECUTOR_NAMES)})"
    )
