"""Strict-JSON normalisation shared by the runner and the executors.

Lives in its own module so the two consumers —
:mod:`repro.experiments.runner` (result files) and
:mod:`repro.experiments.executors` (sweep digests, manifests) — can both
import it at module level without importing each other.
"""

from __future__ import annotations

import json
import math
from typing import Any


def jsonable(value: Any) -> Any:
    """Round-trip ``value`` through strictly-JSON-compatible containers.

    Non-finite floats (e10's ``GL_error_factor`` is ``inf`` when an estimate
    degenerates to zero) are mapped to their string forms so the emitted
    files stay valid for strict JSON consumers.
    """
    return json.loads(json.dumps(_finite(value), allow_nan=False))


def _finite(value: Any) -> Any:
    """Replace non-finite floats with their string forms, recursively."""
    if isinstance(value, dict):
        return {key: _finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_finite(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


#: marker key for the round-trip-stable non-finite encoding below
NONFINITE_KEY = "__nonfinite__"
_NONFINITE_NAMES = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def encode_nonfinite(value: Any) -> Any:
    """Wrap non-finite floats as ``{"__nonfinite__": name}`` markers.

    Unlike :func:`jsonable` — which flattens ``inf`` to the *string*
    ``"inf"`` for human-facing result files — this encoding is reversible:
    :func:`decode_nonfinite` restores the original float objects exactly.
    The shard checkpoints use the pair so their files stay strict RFC 8259
    JSON while the decoded rows remain bit-identical to a serial run's.
    """
    if isinstance(value, dict):
        return {key: encode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_nonfinite(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return {NONFINITE_KEY: str(value)}
    return value


def decode_nonfinite(value: Any) -> Any:
    """Reverse :func:`encode_nonfinite`, restoring non-finite floats."""
    if isinstance(value, dict):
        if set(value) == {NONFINITE_KEY} and value[NONFINITE_KEY] in _NONFINITE_NAMES:
            return _NONFINITE_NAMES[value[NONFINITE_KEY]]
        return {key: decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_nonfinite(item) for item in value]
    return value


#: marker key for the tuple-preserving wire encoding below
TUPLE_KEY = "__wire_tuple__"


def encode_wire(value: Any) -> Any:
    """Encode ``value`` for a JSON wire protocol, preserving Python shapes.

    A plain JSON round-trip flattens tuples to lists, and resolved sweep
    parameters are full of tuples (``sizes``, ``seeds``) that must survive
    the coordinator→worker hop *exactly* — the sweep digest is computed over
    the parameters on both ends, so any shape drift would (correctly) refuse
    the sweep.  Tuples become ``{"__wire_tuple__": [...]}`` markers and
    non-finite floats reuse the :data:`NONFINITE_KEY` markers, so
    :func:`decode_wire` restores the original objects bit-for-bit.
    """
    if isinstance(value, dict):
        return {key: encode_wire(item) for key, item in value.items()}
    if isinstance(value, tuple):
        return {TUPLE_KEY: [encode_wire(item) for item in value]}
    if isinstance(value, list):
        return [encode_wire(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return {NONFINITE_KEY: str(value)}
    return value


def decode_wire(value: Any) -> Any:
    """Reverse :func:`encode_wire`, restoring tuples and non-finite floats."""
    if isinstance(value, dict):
        if set(value) == {TUPLE_KEY} and isinstance(value[TUPLE_KEY], list):
            return tuple(decode_wire(item) for item in value[TUPLE_KEY])
        if set(value) == {NONFINITE_KEY} and value[NONFINITE_KEY] in _NONFINITE_NAMES:
            return _NONFINITE_NAMES[value[NONFINITE_KEY]]
        return {key: decode_wire(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_wire(item) for item in value]
    return value
