"""E13 — selective families vs backoff vs round-robin dissemination.

Races the three layer schedulers of
:mod:`repro.protocols.dissemination` — the affectance-selective greedy
family packer (after arXiv:1703.01704), the Decay-style randomized
backoff, and the sequential round-robin baseline — on one shared physical
layer: the :func:`~repro.topology.generators.ad_hoc_affectance_graph`
instance with its per-link affectance values exposed.  Every scheduler
disseminates the same message from the same source under the *same*
interference arithmetic, so the round-count columns isolate the scheduling
discipline from the physics.

What the table shows:

* ``layers`` — the BFS depth of the instance: the information-theoretic
  floor on rounds (one hop per round at best);
* ``r_selective`` stays within a small factor of ``layers`` (the selective
  family packs many compatible transmitters per round);
* ``r_decay`` pays the randomized-backoff overhead (roughly a log factor
  of collisions per layer);
* ``r_round_robin`` degenerates to Θ(transmissions) — the price of one
  transmitter per round;
* under an ``adversity`` override the same schedule hits all three
  schedulers (independently-seeded states, identical fault model): runs
  that exhaust the round budget report a bounded ``abort`` cell, never a
  hang.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.reporting import Table
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.protocols.dissemination import SCHEDULERS, disseminate
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort
from repro.topology.generators import ad_hoc_affectance_graph
from repro.topology.properties import breadth_first_levels

DEFAULT_SIZES = (64, 128, 256, 512)


@register_experiment(
    id="e13",
    title="E13  Rounds to full dissemination on the ad-hoc affectance layer: "
    "selective families vs Decay backoff vs round-robin",
    description="affectance-selective-family dissemination vs collision-layer "
    "baselines (arXiv:1703.01704)",
    columns=(
        "n", "m", "layers", "r_selective", "r_decay", "r_round_robin",
        "sel_vs_decay", "sel_vs_rr", "faults_injected", "status",
    ),
    adversities=ADVERSITY_KINDS,
    presets={
        "quick": {"sizes": (32, 64)},
        "default": {"sizes": DEFAULT_SIZES},
        "hot": {"sizes": (1024, 2048, 4096)},
    },
    bench_extras=(
        ("e13_hot", "hot", {}),
        ("e13_loss_hot", "hot", {"sizes": (1024,), "adversity": "loss"}),
    ),
    quick_extras=(("e13_jam", "quick", {"adversity": "jam"}),),
)
def sweep_point(n: int, adversity: object = None) -> Dict[str, object]:
    """Disseminate from the source under every scheduler on one instance.

    Each scheduler faces an independently-seeded
    :class:`~repro.sim.adversity.AdversityState` for the same schedule, so
    the adversary is equally unkind to all three without the runs sharing
    random draws.  A scheduler whose run exhausts the round budget
    contributes an ``abort`` cell; the ``status`` column records which
    schedulers survived.
    """
    graph, affectance = ad_hoc_affectance_graph(
        n, seed=11, return_affectance=True
    )
    source = 0
    layers = max(breadth_first_levels(graph, source).values())
    rounds: Dict[str, Optional[int]] = {}
    faults = 0
    for scheduler in SCHEDULERS:
        state = adversity_state(adversity, "e13", n, scheduler)
        try:
            result = disseminate(
                graph, affectance, source=source, scheduler=scheduler,
                seed=5, adversity=state,
            )
            rounds[scheduler] = result.rounds
        except AdversityAbort:
            rounds[scheduler] = None
        if state is not None:
            faults += state.faults_injected
    aborted = sorted(name for name, value in rounds.items() if value is None)
    selective = rounds["selective"]
    decay = rounds["decay"]
    round_robin = rounds["round_robin"]
    return {
        "n": graph.num_nodes(),
        "m": graph.num_edges(),
        "layers": layers,
        "r_selective": selective if selective is not None else ABORTED,
        "r_decay": decay if decay is not None else ABORTED,
        "r_round_robin": round_robin if round_robin is not None else ABORTED,
        "sel_vs_decay": (
            decay / selective if selective and decay else "-"
        ),
        "sel_vs_rr": (
            round_robin / selective if selective and round_robin else "-"
        ),
        "faults_injected": faults,
        "status": "ok" if not aborted else "abort:" + ",".join(aborted),
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES, adversity: object = None
) -> Table:
    """Run the sweep and return the E13 table (registry-backed)."""
    overrides: Dict[str, object] = {"sizes": tuple(sizes)}
    if adversity is not None:
        overrides["adversity"] = adversity
    result = run_experiment("e13", overrides=overrides)
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
