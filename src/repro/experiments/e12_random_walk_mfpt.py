"""E12 — distinct MFPT scalings on scale-free graphs with one degree sequence.

Reproduces the central effect of arXiv:0908.0976: the mean first-passage
time (MFPT) of an unbiased random walk to the hub is **not** determined by
the degree sequence — graphs sharing a degree sequence exactly can scale
with distinct exponents.  The sweep contrasts graph *families*:

* ``flower_13`` — the non-fractal (1, 3)-flower: every edge replacement
  keeps the original edge as a shortcut, so the web is small-world;
* ``flower_22`` — the fractal (2, 2)-flower: distances stretch by 2 per
  generation (diameter ~ √n).  At equal generations the two flowers have
  **identical degree sequences** by construction, yet the fractal family's
  MFPT grows with a visibly larger exponent;
* ``*_rewired`` — any family pushed through
  :func:`~repro.topology.generators.degree_preserving_rewire` (seeded
  double-edge swaps, connectivity preserving): the maximally randomized
  graph with the *same* degree sequence, whose scaling collapses to the
  uncorrelated baseline;
* ``scale_free`` / ``scale_free_rewired`` — Barabási–Albert and its
  rewired twin: BA is already nearly uncorrelated, so these two scale
  alike — the control showing rewiring only changes what structure there
  was to destroy.  The ``xhot`` preset probes ``scale_free_rewired`` at
  ``n = 102400`` (rewiring + walks at the flyweight scale budget).

Each row is one (family, n) point: the walk engine
(:mod:`repro.sim.walks`) runs a batch of hash-substream walkers to the hub
and reports the MFPT estimate.  :func:`fit_exponents` fits per-family power
laws via :func:`~repro.analysis.complexity.fit_power_law`; the tier-1 test
asserts the fractal/non-fractal exponent gap at small n on fixed seeds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.complexity import PowerLawFit, fit_power_law
from repro.analysis.reporting import Table
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.walks import hub_node, mean_first_passage_time
from repro.topology.generators import (
    barabasi_albert_graph,
    degree_preserving_rewire,
    flower_generations_for,
    flower_graph,
)
from repro.topology.graph import WeightedGraph

DEFAULT_SIZES = (172, 684, 2732)
DEFAULT_FAMILIES = ("flower_13", "flower_22", "flower_22_rewired")

#: every family the sweep accepts: the flower pair (same degree sequence at
#: equal generations), Barabási–Albert, and their degree-preserving rewires
FAMILIES = (
    "flower_13",
    "flower_22",
    "flower_13_rewired",
    "flower_22_rewired",
    "scale_free",
    "scale_free_rewired",
)

_FLOWER_PARAMS = {"flower_13": (1, 3), "flower_22": (2, 2)}


def build_family(
    family: str, n: int, seed: int
) -> Tuple[WeightedGraph, Optional[int]]:
    """Build one family member targeting ``n`` nodes.

    Flowers are built at the largest generation fitting inside ``n`` (their
    sizes are discrete), Barabási–Albert graphs at exactly ``n``; a
    ``*_rewired`` family applies the degree-preserving rewire with a seed
    derived from ``(seed, family, n)`` so every sweep point randomizes
    independently.

    Returns:
        ``(graph, generation)`` — generation is ``None`` for the BA family.

    Raises:
        ValueError: on an unknown family name.
    """
    base = family[: -len("_rewired")] if family.endswith("_rewired") else family
    generation: Optional[int] = None
    if base in _FLOWER_PARAMS:
        u, v = _FLOWER_PARAMS[base]
        generation = flower_generations_for(u, v, n)
        graph = flower_graph(u, v, generation)
    elif base == "scale_free":
        graph = barabasi_albert_graph(n, attachment=2, seed=seed)
    else:
        raise ValueError(
            f"unknown e12 family {family!r} (known: {', '.join(FAMILIES)})"
        )
    if family.endswith("_rewired"):
        from repro.sim.substreams import substream_seed

        graph = degree_preserving_rewire(
            graph, seed=substream_seed(seed, "topology.rewire", family, n)
        )
    return graph, generation


def _family_points(params: Mapping[str, object]) -> List[Dict[str, object]]:
    """One sweep point per (family, n) pair, family-major."""
    shared = {
        key: value
        for key, value in params.items()
        if key not in ("sizes", "families")
    }
    return [
        dict(shared, family=family, n=n)
        for family in params["families"]  # type: ignore[union-attr]
        for n in params["sizes"]  # type: ignore[union-attr]
    ]


@register_experiment(
    id="e12",
    title="E12  Mean first-passage time to the hub: distinct scalings on "
    "scale-free families with identical degree sequences "
    "(fractal vs non-fractal vs rewired)",
    description="random-walk MFPT scaling on same-degree-sequence families "
    "(arXiv:0908.0976)",
    columns=(
        "n", "family", "generation", "m", "hub_degree",
        "walkers", "mfpt", "capped",
    ),
    points=_family_points,
    presets={
        "quick": {
            "sizes": (44, 172), "families": ("flower_13", "flower_22"),
            "walkers": 12,
        },
        "default": {
            "sizes": DEFAULT_SIZES, "families": DEFAULT_FAMILIES,
            "walkers": 24,
        },
        "hot": {
            "sizes": (2732, 10924),
            "families": ("flower_13", "flower_22", "flower_22_rewired"),
            "walkers": 24,
        },
        # the scale probe: degree-preserving rewiring of a 102400-node
        # Barabási–Albert graph plus the walk batch, inside the xhot budget
        "xhot": {
            "sizes": (102400,), "families": ("scale_free_rewired",),
            "walkers": 8,
        },
    },
    bench_extras=(
        ("e12_hot", "hot", {}),
        ("e12_xhot", "xhot", {}),
    ),
    quick_extras=(
        ("e12_rewired", "quick",
         {"families": ("flower_13_rewired", "flower_22_rewired")}),
    ),
)
def sweep_point(
    n: int, family: str, walkers: int = 24, seed: int = 11
) -> Dict[str, object]:
    """Measure the MFPT to the hub on one family member.

    The walker substream master seed keys the full sweep point
    ``(seed, family, n)``, so points share no random draws in any executor.
    """
    graph, generation = build_family(family, n, seed)
    csr = graph.csr()
    target = hub_node(graph)
    summary = mean_first_passage_time(
        graph, target=target, walkers=walkers, seed=(seed, "e12", family, n)
    )
    return {
        "n": csr.n,
        "family": family,
        "generation": generation if generation is not None else "-",
        "m": csr.num_edges,
        "hub_degree": csr.offsets[target + 1] - csr.offsets[target],
        "walkers": walkers,
        "mfpt": summary.mean_steps,
        "capped": summary.capped,
    }


def fit_exponents(
    rows: Sequence[Mapping[str, object]]
) -> Dict[str, PowerLawFit]:
    """Fit one power law per family from a sweep's rows.

    Families with fewer than two uncapped rows are skipped (no fit is
    better than a degenerate one).
    """
    groups: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        if row["capped"]:
            continue
        groups.setdefault(str(row["family"]), []).append(
            (float(row["n"]), float(row["mfpt"]))  # type: ignore[arg-type]
        )
    fits = {}
    for family, points in groups.items():
        if len({size for size, _ in points}) < 2:
            continue
        fits[family] = fit_power_law(
            [size for size, _ in points], [value for _, value in points]
        )
    return fits


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    families: Sequence[str] = DEFAULT_FAMILIES,
    walkers: int = 24,
) -> Table:
    """Run the sweep and return the E12 table (registry-backed)."""
    result = run_experiment(
        "e12",
        overrides={
            "sizes": tuple(sizes),
            "families": tuple(families),
            "walkers": walkers,
        },
    )
    return result.to_table()


if __name__ == "__main__":
    result = run_experiment("e12")
    print(result.to_table().render())
    for family, fit in sorted(fit_exponents(result.rows).items()):
        print(
            f"{family}: mfpt ~ {fit.coefficient:.3g} · n^{fit.exponent:.3f} "
            f"(rms log-residual {fit.residual:.3f})"
        )
