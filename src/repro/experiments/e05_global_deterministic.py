"""E5 — deterministic global-sensitive-function computation (Section 5.1).

Claims reproduced: with the standard partition the deterministic algorithm
computes a global sensitive function in O(√n log n) time; with the tightened
balance of Section 5.1 the time improves to O(√(n log n log* n)).  The
messages stay at O(m + n log n log* n).  Both variants are measured here.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.complexity import global_det_time_bound
from repro.analysis.reporting import Table
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort

DEFAULT_SIZES = (64, 144, 256, 400)


@register_experiment(
    id="e5",
    title="E5  Deterministic global sensitive function (sum) "
    "(bound with tightened balance: O(√(n log n log* n)) time)",
    description="deterministic global sensitive function, both balances (Section 5.1)",
    columns=(
        "n", "fragments", "rounds_standard", "rounds_tightened",
        "time_bound", "tightened/bound", "global_slots", "value_correct",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    adversities=ADVERSITY_KINDS,
    presets={
        "quick": {"sizes": (16, 36), "topology": "grid"},
        "default": {"sizes": (64, 144, 256), "topology": "grid"},
        "hot": {"sizes": (1024, 4096), "topology": "grid"},
    },
    bench_extras=(("e5_hot", "hot", {}),),
)
def sweep_point(
    n: int, topology: str = "grid", adversity: object = None
) -> Dict[str, object]:
    """Compute the network-wide sum deterministically under both balances."""
    graph = make_topology(topology, n, seed=11)
    inputs = {node: int(node) for node in graph.nodes()}
    expected = sum(inputs.values())

    def variant(tag: str, tightened: bool):
        state = adversity_state(adversity, "e5", n, topology, tag)
        try:
            return compute_global_function(
                graph, INTEGER_ADDITION, inputs, method="deterministic", seed=7,
                tightened_balance=tightened, adversity=state,
            )
        except AdversityAbort:
            return None

    standard = variant("standard", False)
    tightened = variant("tightened", True)
    bound = global_det_time_bound(graph.num_nodes())
    return {
        "n": graph.num_nodes(),
        "fragments": standard.num_fragments if standard else ABORTED,
        "rounds_standard": standard.total_rounds if standard else ABORTED,
        "rounds_tightened": tightened.total_rounds if tightened else ABORTED,
        "time_bound": round(bound, 1),
        "tightened/bound": tightened.total_rounds / bound if tightened else "-",
        "global_slots": standard.global_slots if standard else ABORTED,
        "value_correct": (
            standard.value == expected and tightened.value == expected
            if standard and tightened
            else "-"
        ),
    }


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "grid") -> Table:
    """Run the sweep and return the E5 table (registry-backed)."""
    result = run_experiment(
        "e5", overrides={"sizes": tuple(sizes), "topology": topology}
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
