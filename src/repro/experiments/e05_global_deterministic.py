"""E5 — deterministic global-sensitive-function computation (Section 5.1).

Claims reproduced: with the standard partition the deterministic algorithm
computes a global sensitive function in O(√n log n) time; with the tightened
balance of Section 5.1 the time improves to O(√(n log n log* n)).  The
messages stay at O(m + n log n log* n).  Both variants are measured here.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.complexity import global_det_time_bound
from repro.analysis.reporting import Table
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 144, 256, 400)


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "grid") -> Table:
    """Run the sweep and return the E5 table."""
    table = Table(
        title="E5  Deterministic global sensitive function (sum) "
        "(bound with tightened balance: O(√(n log n log* n)) time)",
        columns=[
            "n", "fragments", "rounds_standard", "rounds_tightened",
            "time_bound", "tightened/bound", "global_slots", "value_correct",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        inputs = {node: int(node) for node in graph.nodes()}
        expected = sum(inputs.values())
        standard = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="deterministic", seed=7
        )
        tightened = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="deterministic", seed=7,
            tightened_balance=True,
        )
        bound = global_det_time_bound(graph.num_nodes())
        table.add_row(
            graph.num_nodes(),
            standard.num_fragments,
            standard.total_rounds,
            tightened.total_rounds,
            round(bound, 1),
            tightened.total_rounds / bound,
            standard.global_slots,
            standard.value == expected and tightened.value == expected,
        )
    return table


if __name__ == "__main__":
    print(run().render())
