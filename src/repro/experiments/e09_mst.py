"""E9 — minimum spanning tree in a multimedia network (Section 6).

Claims reproduced: the multimedia MST algorithm (1) computes exactly the MST
(checked edge for edge against sequential Kruskal), (2) runs in O(√n log n)
time and O(m + n log n log* n) messages, and (3) beats the point-to-point-only
fragment-merging baseline on high-diameter topologies, with the advantage
growing with n.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.complexity import mst_message_bound, mst_time_bound
from repro.analysis.reporting import Table
from repro.core.mst.ghs_baseline import PointToPointMST
from repro.core.mst.kruskal import kruskal_mst
from repro.core.mst.multimedia_mst import MultimediaMST
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 256, 1024, 2048, 4096)
"""Ring sizes spanning the crossover: below ≈1.5k the point-to-point baseline's
smaller constants win; beyond it the multimedia algorithm's O(√n log n) time
dominates the baseline's Θ(n log n)."""


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "ring") -> Table:
    """Run the sweep and return the E9 table."""
    table = Table(
        title="E9  Multimedia MST vs point-to-point-only baseline "
        "(bounds: time O(√n log n), messages O(m + n log n log* n); exact MST)",
        columns=[
            "n", "m", "t_multimedia", "time_bound", "t/bound",
            "messages", "messages/bound", "t_p2p_only", "speedup", "matches_kruskal",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        reference = kruskal_mst(graph)
        multimedia = MultimediaMST(graph).run()
        baseline = PointToPointMST(graph).run()
        matches = (
            multimedia.mst.edge_keys() == reference.edge_keys()
            and baseline.mst.edge_keys() == reference.edge_keys()
        )
        time_bound = mst_time_bound(graph.num_nodes())
        message_bound = mst_message_bound(graph.num_nodes(), graph.num_edges())
        table.add_row(
            graph.num_nodes(),
            graph.num_edges(),
            multimedia.total_rounds,
            round(time_bound, 1),
            multimedia.total_rounds / time_bound,
            multimedia.metrics.point_to_point_messages,
            multimedia.metrics.point_to_point_messages / message_bound,
            baseline.total_rounds,
            baseline.total_rounds / multimedia.total_rounds,
            matches,
        )
    return table


if __name__ == "__main__":
    print(run().render())
