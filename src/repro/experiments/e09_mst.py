"""E9 — minimum spanning tree in a multimedia network (Section 6).

Claims reproduced: the multimedia MST algorithm (1) computes exactly the MST
(checked edge for edge against sequential Kruskal), (2) runs in O(√n log n)
time and O(m + n log n log* n) messages, and (3) beats the point-to-point-only
fragment-merging baseline on high-diameter topologies, with the advantage
growing with n.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.complexity import mst_message_bound, mst_time_bound
from repro.analysis.reporting import Table
from repro.core.mst.ghs_baseline import PointToPointMST
from repro.core.mst.kruskal import kruskal_mst
from repro.core.mst.multimedia_mst import MultimediaMST
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort

DEFAULT_SIZES = (64, 256, 1024, 2048, 4096)
"""Ring sizes spanning the crossover: below ≈1.5k the point-to-point baseline's
smaller constants win; beyond it the multimedia algorithm's O(√n log n) time
dominates the baseline's Θ(n log n)."""


@register_experiment(
    id="e9",
    title="E9  Multimedia MST vs point-to-point-only baseline "
    "(bounds: time O(√n log n), messages O(m + n log n log* n); exact MST)",
    description="multimedia MST vs point-to-point baseline, exactness (Section 6)",
    columns=(
        "n", "m", "t_multimedia", "time_bound", "t/bound",
        "messages", "messages/bound", "t_p2p_only", "speedup", "matches_kruskal",
    ),
    topologies=("ring", "grid", "geometric", "scale_free", "ad_hoc"),
    adversities=ADVERSITY_KINDS,
    presets={
        "quick": {"sizes": (16, 64), "topology": "ring"},
        "default": {"sizes": (64, 256, 1024, 2048), "topology": "ring"},
        "hot": {"sizes": (4096, 16384), "topology": "ring"},
    },
    bench_extras=(("e9_hot", "hot", {}),),
)
def sweep_point(
    n: int, topology: str = "ring", adversity: object = None
) -> Dict[str, object]:
    """Build one MST with all three algorithms and compare cost and output.

    Only the multimedia algorithm's simulated stage faces the adversity (the
    point-to-point baseline and Kruskal are abstract reference runs); a
    multimedia run that aborts reports ``"abort"`` cells.
    """
    graph = make_topology(topology, n, seed=11)
    reference = kruskal_mst(graph)
    state = adversity_state(adversity, "e9", n, topology)
    try:
        multimedia = MultimediaMST(graph, adversity=state).run()
    except AdversityAbort:
        multimedia = None
    baseline = PointToPointMST(graph).run()
    baseline_matches = baseline.mst.edge_keys() == reference.edge_keys()
    matches: object = (
        multimedia.mst.edge_keys() == reference.edge_keys() and baseline_matches
        if multimedia
        else "-"
    )
    time_bound = mst_time_bound(graph.num_nodes())
    message_bound = mst_message_bound(graph.num_nodes(), graph.num_edges())
    if multimedia is None:
        return {
            "n": graph.num_nodes(),
            "m": graph.num_edges(),
            "t_multimedia": ABORTED,
            "time_bound": round(time_bound, 1),
            "t/bound": "-",
            "messages": ABORTED,
            "messages/bound": "-",
            "t_p2p_only": baseline.total_rounds,
            "speedup": "-",
            "matches_kruskal": matches,
        }
    return {
        "n": graph.num_nodes(),
        "m": graph.num_edges(),
        "t_multimedia": multimedia.total_rounds,
        "time_bound": round(time_bound, 1),
        "t/bound": multimedia.total_rounds / time_bound,
        "messages": multimedia.metrics.point_to_point_messages,
        "messages/bound": multimedia.metrics.point_to_point_messages / message_bound,
        "t_p2p_only": baseline.total_rounds,
        "speedup": baseline.total_rounds / multimedia.total_rounds,
        "matches_kruskal": matches,
    }


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "ring") -> Table:
    """Run the sweep and return the E9 table (registry-backed)."""
    result = run_experiment(
        "e9", overrides={"sizes": tuple(sizes), "topology": topology}
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
