"""E10 — model variations (Section 7).

Claims reproduced:

* **Corollary 4** — the channel synchronizer runs a synchronous algorithm on
  an asynchronous network with at most 2× the messages (acknowledgements)
  and a constant-factor time overhead.
* **Section 7.3** — the deterministic size computation returns the exact n.
* **Section 7.4** — the Greenberg–Ladner estimate is within a small
  multiplicative factor of n with high probability.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.size_estimation import (
    compute_size_deterministically,
    estimate_size_randomized,
)
from repro.experiments.harness import make_topology
from repro.protocols.spanning.broadcast_convergecast import TreeAggregationProtocol
from repro.protocols.spanning.bfs import build_bfs_forest
from repro.protocols.spanning.tree_utils import children_map
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.synchronizer import ChannelSynchronizer

DEFAULT_SIZES = (36, 64, 100, 144)
DEFAULT_SEEDS = (1, 2, 3)


def _aggregation_inputs(graph, root):
    parents, _, _ = build_bfs_forest(graph, [root])
    children = children_map(parents)
    return {
        node: {
            "parent": parents[node],
            "children": tuple(children[node]),
            "value": 1,
            "combine": lambda a, b: a + b,
            "redistribute": True,
        }
        for node in graph.nodes()
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E10 table.

    Args:
        sizes: approximate node counts, one row per entry.
        seeds: seeds for the randomized size estimates.
        topology: any :func:`~repro.experiments.harness.make_topology` kind;
            the synchronizer and size protocols are topology-agnostic, so the
            scale-free / ad-hoc kinds exercise Section 7 on irregular degree
            distributions.
    """
    table = Table(
        title="E10  Model variations: synchronizer overhead (Cor. 4), "
        "exact size computation (7.3), randomized size estimate (7.4)",
        columns=[
            "n", "sync_msg_overhead(≤2)", "sync_pulses", "sync_time",
            "det_size_exact", "mean_GL_estimate", "GL_error_factor",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        true_n = graph.num_nodes()
        root = min(graph.nodes())
        inputs = _aggregation_inputs(graph, root)

        # Corollary 4: run the same aggregation synchronously and under the
        # channel synchronizer on an asynchronous network
        sync_run = MultimediaNetwork(graph, seed=3).run(
            TreeAggregationProtocol, inputs=inputs
        )
        async_run = ChannelSynchronizer(graph, max_link_delay=3, seed=3).run(
            TreeAggregationProtocol, inputs=inputs
        )
        assert async_run.results[root] == sync_run.results[root] == true_n

        det = compute_size_deterministically(graph, seed=1)
        estimates = [
            estimate_size_randomized(graph, seed=seed).estimate for seed in seeds
        ]
        error = mean(
            [max(est / true_n, true_n / est) if est else float("inf") for est in estimates]
        )
        table.add_row(
            true_n,
            async_run.message_overhead_factor,
            async_run.pulses,
            round(async_run.asynchronous_time, 1),
            det.n == true_n,
            mean(estimates),
            error,
        )
    return table


if __name__ == "__main__":
    print(run().render())
