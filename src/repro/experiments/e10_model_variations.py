"""E10 — model variations (Section 7).

Claims reproduced:

* **Corollary 4** — the channel synchronizer runs a synchronous algorithm on
  an asynchronous network with at most 2× the messages (acknowledgements)
  and a constant-factor time overhead.
* **Section 7.3** — the deterministic size computation returns the exact n.
* **Section 7.4** — the Greenberg–Ladner estimate is within a small
  multiplicative factor of n with high probability.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.size_estimation import (
    compute_size_deterministically,
    estimate_size_randomized,
)
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.protocols.spanning.broadcast_convergecast import TreeAggregationFlyweight
from repro.protocols.spanning.bfs import build_bfs_forest
from repro.protocols.spanning.tree_utils import children_map
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.synchronizer import ChannelSynchronizer

DEFAULT_SIZES = (36, 64, 100, 144)
DEFAULT_SEEDS = (1, 2, 3)


def _aggregation_inputs(graph, root):
    parents, _, _ = build_bfs_forest(graph, [root])
    children = children_map(parents)
    return {
        node: {
            "parent": parents[node],
            "children": tuple(children[node]),
            "value": 1,
            "combine": lambda a, b: a + b,
            "redistribute": True,
        }
        for node in graph.nodes()
    }


@register_experiment(
    id="e10",
    title="E10  Model variations: synchronizer overhead (Cor. 4), "
    "exact size computation (7.3), randomized size estimate (7.4)",
    description="synchronizer overhead + size computation/estimation (Section 7)",
    columns=(
        "n", "sync_msg_overhead(≤2)", "sync_pulses", "sync_time",
        "det_size_exact", "mean_GL_estimate", "GL_error_factor",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    adversities=ADVERSITY_KINDS,
    presets={
        "quick": {"sizes": (16, 36), "seeds": (1,), "topology": "grid"},
        "default": {"sizes": (36, 64, 100), "seeds": (1, 2, 3), "topology": "grid"},
        "hot": {"sizes": (1024, 4096), "seeds": (1, 2), "topology": "grid"},
        # the synchronizer at scale: the size protocols are partition-bound
        # (ROADMAP Open item 2) and are gated off so the preset times the
        # sim layer it exists to watch
        "xhot": {
            "sizes": (102400,), "seeds": (1,), "topology": "grid",
            "size_protocols": False,
        },
    },
    bench_extras=(
        ("e10_hot", "hot", {}),
        ("e10_scale_free", "hot",
         {"sizes": (256, 1024), "topology": "scale_free"}),
        ("e10_xhot", "xhot", {}),
    ),
    quick_extras=(
        ("e10_scale_free", "quick", {"sizes": (36,), "topology": "scale_free"}),
    ),
)
def sweep_point(
    n: int,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
    adversity: object = None,
    size_protocols: bool = True,
) -> Dict[str, object]:
    """Exercise the Section 7 variations on one topology.

    The synchronous and synchronized aggregation runs each face an
    independently-seeded adversity instance (the size protocols stay
    fault-free — they calibrate the estimate columns); an aborted run shows
    ``"abort"`` in its columns.  ``size_protocols=False`` skips the Section
    7.3/7.4 size columns (shown as ``"-"``): they are partition-bound, and
    the ``xhot`` preset exists to time the synchronizer, not the partition.

    Raises:
        AssertionError: in fault-free runs only — if the synchronous and
            synchronized runs disagree on the aggregate (both must equal the
            true node count).
    """
    graph = make_topology(topology, n, seed=11)
    true_n = graph.num_nodes()
    root = min(graph.nodes())
    inputs = _aggregation_inputs(graph, root)

    # Corollary 4: run the same aggregation synchronously and under the
    # channel synchronizer on an asynchronous network
    try:
        sync_run = MultimediaNetwork(graph, seed=3).run(
            TreeAggregationFlyweight, inputs=inputs,
            adversity=adversity_state(adversity, "e10", n, topology, "sync"),
        )
    except AdversityAbort:
        sync_run = None
    try:
        async_run = ChannelSynchronizer(graph, max_link_delay=3, seed=3).run(
            TreeAggregationFlyweight, inputs=inputs,
            adversity=adversity_state(adversity, "e10", n, topology, "async"),
        )
    except AdversityAbort:
        async_run = None
    if adversity is None:
        assert async_run.results[root] == sync_run.results[root] == true_n

    if size_protocols:
        det = compute_size_deterministically(graph, seed=1)
        estimates = [
            estimate_size_randomized(graph, seed=seed).estimate for seed in seeds
        ]
        error = mean(
            [
                max(est / true_n, true_n / est) if est else float("inf")
                for est in estimates
            ]
        )
        size_columns = {
            "det_size_exact": det.n == true_n,
            "mean_GL_estimate": mean(estimates),
            "GL_error_factor": error,
        }
    else:
        size_columns = {
            "det_size_exact": "-",
            "mean_GL_estimate": "-",
            "GL_error_factor": "-",
        }
    return {
        "n": true_n,
        "sync_msg_overhead(≤2)": (
            async_run.message_overhead_factor if async_run else ABORTED
        ),
        "sync_pulses": async_run.pulses if async_run else ABORTED,
        "sync_time": (
            round(async_run.asynchronous_time, 1) if async_run else "-"
        ),
        **size_columns,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E10 table (registry-backed).

    Args:
        sizes: approximate node counts, one row per entry.
        seeds: seeds for the randomized size estimates.
        topology: any :func:`~repro.experiments.harness.make_topology` kind;
            the synchronizer and size protocols are topology-agnostic, so the
            scale-free / ad-hoc kinds exercise Section 7 on irregular degree
            distributions.
    """
    result = run_experiment(
        "e10",
        overrides={"sizes": tuple(sizes), "seeds": tuple(seeds), "topology": topology},
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
