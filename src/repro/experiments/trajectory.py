"""Benchmark trajectory: registry-driven timing suite for ``BENCH_core.json``.

Runs every registered experiment (plus each spec's declared hot/topology
variants), times each sweep through the unified runner, extracts the message
counts its structured rows report, probes the largest feasible ``n`` for the
hot experiments (e2/e4/e9), and records everything under a named label in
``BENCH_core.json`` at the repository root.  Re-running with a different
label merges into the same file, so the file accumulates the performance
trajectory across PRs:

    PYTHONPATH=src python -m repro bench --label after

Labels are sequenced in the order they are first recorded; the runner writes
the per-experiment wall-clock speedup between every consecutive pair of
labels (``speedups``) in addition to the original ``speedup_before_to_after``
pair, so each PR's ≥1.5–2× targets are checked against its predecessor.

CI runs the suite in smoke mode:

    PYTHONPATH=src python -m repro bench --quick

which sweeps the ``quick`` presets, skips the max-``n`` probes, and writes
nothing (the committed ``BENCH_core.json`` trajectory is never clobbered by
CI) — it exists to prove every experiment entry point still runs end to end.

The suite itself is **not** defined here: each entry comes from the
experiment specs (the implicit ``default``/``quick`` preset per spec plus
its ``bench_extras``/``quick_extras`` variants), so the trajectory, the
pytest benches and the CLI can never drift apart.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from repro.experiments.registry import all_experiments
from repro.experiments.runner import run_experiment


def default_output() -> Path:
    """Return the trajectory file path (``BENCH_core.json`` at the repo root).

    Falls back to the current working directory when the package does not
    live in a ``src/`` checkout (e.g. an installed wheel).
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "src").is_dir():
        return root / "BENCH_core.json"
    return Path.cwd() / "BENCH_core.json"


@dataclass(frozen=True)
class SuiteEntry:
    """One named, timed entry of the trajectory (or quick smoke) suite."""

    name: str
    experiment_id: str
    preset: str
    overrides: Mapping[str, object]


def suite_entries(quick: bool = False) -> List[SuiteEntry]:
    """Build the suite from the registry: one entry per spec, then variants."""
    entries = [
        SuiteEntry(spec.id, spec.id, "quick" if quick else "default", {})
        for spec in all_experiments()
    ]
    for spec in all_experiments():
        for variant in spec.quick_extras if quick else spec.bench_extras:
            entries.append(
                SuiteEntry(variant.name, spec.id, variant.preset, variant.overrides)
            )
    return entries


def _message_counts(columns, rows) -> Dict[str, List[int]]:
    """Extract the per-row message counts from the rows, when any are reported."""
    counts: Dict[str, List[int]] = {}
    for column in columns:
        name = column.lower()
        if "message" in name and "bound" not in name and "/" not in name:
            counts[column] = [row[column] for row in rows]
    return counts


def run_suite(
    only: Optional[List[str]] = None,
    quick: bool = False,
    executor: str = "serial",
    processes: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Run (a subset of) the suite and return per-experiment stats.

    Args:
        only: restrict to these entry names (``None`` runs everything).
        quick: sweep the ``quick`` presets (the CI smoke suite).
        executor: execution backend per sweep — ``serial`` (the default;
            ``wall_seconds`` then measures the algorithm alone) or
            ``process``.  The sharded backend is deliberately not offered
            here: trajectory timings must stay comparable across labels,
            and resumed compute times are not one invocation's wall clock.
        processes: worker count for the ``process`` backend (0 uses the
            machine's CPU count).
    """
    results: Dict[str, Dict[str, object]] = {}
    for entry in suite_entries(quick):
        if only and entry.name not in only:
            continue
        result = run_experiment(
            entry.experiment_id,
            preset=entry.preset,
            overrides=entry.overrides,
            executor=executor,
            processes=processes,
        )
        first_column = result.columns[0]
        ns = [row[first_column] for row in result.rows]
        results[entry.name] = {
            "wall_seconds": round(result.wall_seconds, 4),
            "sweep_max_n": max(ns) if ns else None,
            "messages": _message_counts(result.columns, result.rows),
        }
        print(
            f"{entry.name:>16}: {result.wall_seconds:8.3f}s  "
            f"(max n = {results[entry.name]['sweep_max_n']})"
        )
    return results


# ----------------------------------------------------------------------
# max-feasible-n probes for the hot experiments
# ----------------------------------------------------------------------
def _probe(
    single_run: Callable[[int], None],
    start_n: int,
    budget: float,
    retries: int = 2,
) -> Dict[str, object]:
    """Double ``n`` until one run exceeds ``budget`` seconds; report the last fit.

    A size is declared infeasible only on the *minimum* of up to
    ``1 + retries`` timings.  Wall-clock noise on a shared host is one-sided
    (a run can be measured slower than the algorithm, never faster), so a
    single overshoot near the boundary carries no information about the
    size itself; re-timing on overshoot keeps the committed value stable
    across runners instead of flapping between adjacent powers of two
    (e4's historical 32768-vs-65536 jitter on the 2 s boundary).  Re-timing
    only happens inside the jitter window (under ``2 * budget``): a gross
    overshoot is already conclusive — host jitter does not double a
    runtime — and the terminal doubling step typically overshoots by a
    large factor, so re-timing it would triple the probe's most expensive
    run for nothing.  Sizes that fit on their first timing cost one run,
    exactly as before.
    """
    n = start_n
    feasible = None
    feasible_seconds = None
    while n <= 2 ** 22:
        best = None
        for _ in range(1 + retries):
            start = time.perf_counter()
            single_run(n)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
            if best <= budget or best >= 2 * budget:
                break
        if best > budget:
            break
        feasible = n
        feasible_seconds = round(best, 4)
        n *= 2
    return {
        "max_feasible_n": feasible,
        "seconds_at_max": feasible_seconds,
        "budget_seconds": budget,
    }


def probe_max_n(budget: float) -> Dict[str, Dict[str, object]]:
    """Probe the largest single-instance ``n`` each hot experiment can afford."""
    from repro.core.mst.multimedia_mst import MultimediaMST
    from repro.core.partition.deterministic import DeterministicPartitioner
    from repro.core.partition.randomized import RandomizedPartitioner
    from repro.experiments.harness import make_topology

    def det(n: int) -> None:
        DeterministicPartitioner(make_topology("grid", n, seed=11)).run()

    def rand(n: int) -> None:
        RandomizedPartitioner(
            make_topology("grid", n, seed=11), seed=1, las_vegas=True
        ).run()

    def mst(n: int) -> None:
        MultimediaMST(make_topology("ring", n, seed=11)).run()

    probes = {}
    for name, fn in (("e2", det), ("e4", rand), ("e9", mst)):
        probes[name] = _probe(fn, 64, budget)
        print(f"{name:>16}: max feasible n = {probes[name]['max_feasible_n']} "
              f"({probes[name]['seconds_at_max']}s/run, budget {budget}s)")
    return probes


# ----------------------------------------------------------------------
# JSON trajectory file
# ----------------------------------------------------------------------
def pair_speedups(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, float]:
    """Per-experiment wall-clock speedups between two recorded runs.

    Entries that carry no timing on either side are skipped — probe-only
    entries (a ``--only`` run still writes the e2/e4/e9 max-``n`` probes)
    have no ``wall_seconds``.  Public because ``repro serve``'s diff
    endpoint computes the same comparison on demand for arbitrary label
    pairs.
    """
    speedups = {}
    for name, before_entry in before.items():
        before_seconds = before_entry.get("wall_seconds")
        after_seconds = after.get(name, {}).get("wall_seconds")
        if before_seconds and after_seconds:
            speedups[name] = round(before_seconds / after_seconds, 2)
    return speedups


def label_order(runs: Dict[str, Dict[str, object]]) -> List[str]:
    """Trajectory labels ordered by recorded sequence (oldest first)."""
    return sorted(runs, key=lambda label: runs[label].get("sequence", 0))


def _chain_speedups(runs: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Speedups between every consecutive pair of labels (by sequence)."""
    ordered = label_order(runs)
    chain: Dict[str, Dict[str, float]] = {}
    for earlier, later in zip(ordered, ordered[1:]):
        chain[f"{earlier}->{later}"] = pair_speedups(
            runs[earlier].get("experiments", {}), runs[later].get("experiments", {})
        )
    return chain


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the experiment suite and merge into BENCH_core.json.",
    )
    parser.add_argument("--label", default="after",
                        help="name this run is recorded under (e.g. before/after)")
    parser.add_argument("--output", type=Path, default=None,
                        help="trajectory JSON file to merge into "
                             "(default: BENCH_core.json at the repo root)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only these experiments (e.g. --only e2 e4 e9)")
    parser.add_argument("--probe-budget", type=float, default=2.0,
                        help="per-run seconds allowed by the max-n probes (0 disables)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: quick presets, no probes, and no "
                             "write to BENCH_core.json unless --output is given")
    parser.add_argument("--executor", choices=("serial", "process"),
                        default=None,
                        help="execution backend per sweep (default: serial, "
                             "which keeps the recorded wall clocks comparable "
                             "across labels; -j implies process)")
    parser.add_argument("--processes", "-j", type=int, default=0,
                        help="worker count for --executor process "
                             "(default: the machine's CPU count)")
    parser.add_argument("--note", default="", help="free-form note stored with the run")
    args = parser.parse_args(argv)

    if args.only:
        known = {entry.name for entry in suite_entries(args.quick)}
        unknown = set(args.only) - known
        if unknown:
            parser.error(f"unknown experiment(s): {', '.join(sorted(unknown))}")
    if args.executor == "serial" and args.processes > 0:
        # an explicit serial request and a worker count contradict each
        # other; refuse rather than silently picking one
        parser.error("-j/--processes requires --executor process")
    if args.executor is None:
        # -j implies the pool, exactly as it does for `repro run`
        args.executor = "process" if args.processes > 0 else "serial"
    experiments = run_suite(
        args.only, quick=args.quick, executor=args.executor,
        processes=args.processes,
    )
    run_probes = args.probe_budget > 0 and not args.quick
    probes = probe_max_n(args.probe_budget) if run_probes else {}
    for name, probe in probes.items():
        experiments.setdefault(name, {}).update(probe)

    if args.quick and args.output is None:
        print("quick mode: smoke run complete, trajectory file left untouched")
        return 0
    output = args.output if args.output is not None else default_output()

    data: Dict[str, object] = {"schema": 1, "runs": {}}
    if output.exists():
        data = json.loads(output.read_text())
    runs = data.setdefault("runs", {})
    # legacy trajectory files predate the sequence field; the original two
    # labels are known to be PR 0 ("before") and PR 1 ("after")
    for legacy_sequence, legacy_label in enumerate(("before", "after"), start=1):
        if legacy_label in runs and "sequence" not in runs[legacy_label]:
            runs[legacy_label]["sequence"] = legacy_sequence
    previous = runs.get(args.label, {})
    note = args.note
    if args.only:
        # a targeted re-run refreshes just the selected experiments and the
        # probe fields; the label's other recorded entries — and, within a
        # refreshed entry, the fields this run did not measure (a probe-only
        # e2/e4/e9 entry must not erase a stored full sweep) — survive, as
        # does the stored note unless a new one is given
        combined = {
            name: dict(entry)
            for name, entry in previous.get("experiments", {}).items()
        }
        for name, entry in experiments.items():
            combined.setdefault(name, {}).update(entry)
        experiments = combined
        note = args.note or previous.get("note", "")
    sequence = previous.get(
        "sequence",
        1 + max((run.get("sequence", 0) for run in runs.values()), default=0),
    )
    runs[args.label] = {
        "note": note,
        "python": platform.python_version(),
        "sequence": sequence,
        "experiments": experiments,
    }
    if "before" in runs and "after" in runs:
        data["speedup_before_to_after"] = pair_speedups(
            runs["before"].get("experiments", {}),
            runs["after"].get("experiments", {}),
        )
    data["speedups"] = _chain_speedups(runs)
    output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} (label={args.label!r})")
    for pair, speedups in data["speedups"].items():
        if speedups:
            print(f"speedups {pair}: {speedups}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
