"""E3 — randomized partition quality (Section 4, Theorem 1).

Claims reproduced: the randomized partitioning algorithm outputs a spanning
forest of trees of radius at most 4√n, and the expected number of trees is
O(√n).  The table reports the across-seed mean number of trees and the worst
observed radius.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.partition.randomized import RandomizedPartitioner
from repro.core.partition.validation import validate_partition
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment

DEFAULT_SIZES = (64, 144, 256, 400)
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


@register_experiment(
    id="e3",
    title="E3  Randomized partition quality "
    "(bounds: radius ≤ 4√n, E[#trees] = O(√n))",
    description="randomized partition quality bounds (Section 4, Theorem 1)",
    columns=(
        "n", "sqrt_n", "mean_fragments", "fragments/sqrt_n",
        "max_radius", "radius_bound", "structure_ok",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    presets={
        "quick": {"sizes": (16, 36), "seeds": (1,), "topology": "grid"},
        "default": {"sizes": (64, 144, 256), "seeds": (1, 2, 3), "topology": "grid"},
        "hot": {"sizes": (4096, 16384), "seeds": (1, 2), "topology": "grid"},
    },
    bench_extras=(("e3_hot", "hot", {}),),
)
def sweep_point(
    n: int, seeds: Sequence[int] = DEFAULT_SEEDS, topology: str = "grid"
) -> Dict[str, object]:
    """Partition one topology across seeds and validate the Theorem 1 bounds."""
    graph = make_topology(topology, n, seed=11)
    sqrt_n = math.sqrt(graph.num_nodes())
    fragment_counts = []
    worst_radius = 0
    structure_ok = True
    for seed in seeds:
        result = RandomizedPartitioner(graph, seed=seed).run()
        report = validate_partition(result.forest, graph)
        structure_ok = structure_ok and report.ok
        fragment_counts.append(result.num_fragments)
        worst_radius = max(worst_radius, result.forest.max_radius())
    return {
        "n": graph.num_nodes(),
        "sqrt_n": round(sqrt_n, 1),
        "mean_fragments": mean(fragment_counts),
        "fragments/sqrt_n": mean(fragment_counts) / sqrt_n,
        "max_radius": worst_radius,
        "radius_bound": round(4 * sqrt_n, 1),
        "structure_ok": structure_ok,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E3 table (registry-backed)."""
    result = run_experiment(
        "e3",
        overrides={"sizes": tuple(sizes), "seeds": tuple(seeds), "topology": topology},
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
