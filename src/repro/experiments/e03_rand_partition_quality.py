"""E3 — randomized partition quality (Section 4, Theorem 1).

Claims reproduced: the randomized partitioning algorithm outputs a spanning
forest of trees of radius at most 4√n, and the expected number of trees is
O(√n).  The table reports the across-seed mean number of trees and the worst
observed radius.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.partition.randomized import RandomizedPartitioner
from repro.core.partition.validation import validate_partition
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 144, 256, 400)
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E3 table."""
    table = Table(
        title="E3  Randomized partition quality "
        "(bounds: radius ≤ 4√n, E[#trees] = O(√n))",
        columns=[
            "n", "sqrt_n", "mean_fragments", "fragments/sqrt_n",
            "max_radius", "radius_bound", "structure_ok",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        sqrt_n = math.sqrt(graph.num_nodes())
        fragment_counts = []
        worst_radius = 0
        structure_ok = True
        for seed in seeds:
            result = RandomizedPartitioner(graph, seed=seed).run()
            report = validate_partition(result.forest, graph)
            structure_ok = structure_ok and report.ok
            fragment_counts.append(result.num_fragments)
            worst_radius = max(worst_radius, result.forest.max_radius())
        table.add_row(
            graph.num_nodes(),
            round(sqrt_n, 1),
            mean(fragment_counts),
            mean(fragment_counts) / sqrt_n,
            worst_radius,
            round(4 * sqrt_n, 1),
            structure_ok,
        )
    return table


if __name__ == "__main__":
    print(run().render())
