"""E7 — model separation: multimedia beats both single media (Theorem 2 + Cor. 3).

Claims reproduced: on topologies whose diameter is Θ(n) (rings), computing a
global sensitive function needs Ω(d) = Ω(n) time on the point-to-point
network alone and Ω(n) time on the channel alone, while the multimedia
algorithm finishes in Õ(√n) time — so the combined network is strictly more
powerful than either of its parts, with the gap growing with n.

The sweep also runs on the scale-free (``scale_free``) and ad-hoc wireless
(``ad_hoc``) topologies: their diameters are small, so there the separation
is carried by the channel-only Ω(n) bound rather than the point-to-point
Ω(d) bound.  For large-``n`` instances of those kinds the measured
channel-only baseline can be disabled (``channel_baseline=False``): it is
Θ(n) slots at Θ(n) work per slot regardless of topology, so measuring it
again at ``n ≥ 10^4`` adds minutes of wall clock and no information beyond
the reported ``lb_channel`` column.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import Table
from repro.core.global_function.baselines import (
    compute_on_channel_only,
    compute_on_point_to_point_only,
)
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.core.lower_bounds import (
    broadcast_lower_bound,
    multimedia_lower_bound,
    point_to_point_lower_bound,
)
from repro.experiments.harness import make_topology, topology_diameter

DEFAULT_SIZES = (64, 128, 256, 512, 1024)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    topology: str = "ring",
    channel_baseline: bool = True,
) -> Table:
    """Run the sweep and return the E7 table.

    Args:
        sizes: approximate node counts, one row per entry.
        topology: any :func:`~repro.experiments.harness.make_topology` kind.
        channel_baseline: measure the channel-only baseline (disable for
            ``n ≥ 10^4`` sweeps; the ``lb_channel`` column still reports the
            Ω(n) bound and the cell shows ``-``).
    """
    if topology == "ring":
        title = (
            "E7  Model separation on diameter-Θ(n) topologies "
            "(multimedia Õ(√n) vs point-to-point Ω(d) vs channel Ω(n))"
        )
    else:
        # low-diameter kinds: the point-to-point Ω(d) bound is weak there,
        # so the separation is carried by the channel-only Ω(n) bound
        title = (
            f"E7  Model separation on {topology} topologies "
            "(multimedia Õ(√n) vs point-to-point Ω(d) vs channel Ω(n); "
            "low diameter — the channel Ω(n) bound carries the gap)"
        )
    table = Table(
        title=title,
        columns=[
            "n", "diameter", "t_multimedia", "t_p2p_only", "t_channel_only",
            "lb_p2p", "lb_channel", "lb_multimedia",
            "speedup_vs_p2p", "speedup_vs_channel",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        d = topology_diameter(topology, graph)
        inputs = {node: int(node) for node in graph.nodes()}
        multimedia = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5
        )
        p2p = compute_on_point_to_point_only(graph, INTEGER_ADDITION, inputs, seed=5)
        if channel_baseline:
            channel = compute_on_channel_only(graph, INTEGER_ADDITION, inputs, seed=5)
            channel_rounds: object = channel.rounds
            channel_speedup: object = channel.rounds / multimedia.total_rounds
        else:
            channel_rounds = "-"
            channel_speedup = "-"
        table.add_row(
            graph.num_nodes(),
            d,
            multimedia.total_rounds,
            p2p.rounds,
            channel_rounds,
            point_to_point_lower_bound(d),
            broadcast_lower_bound(graph.num_nodes()),
            multimedia_lower_bound(graph.num_nodes(), d),
            p2p.rounds / multimedia.total_rounds,
            channel_speedup,
        )
    return table


if __name__ == "__main__":
    print(run().render())
