"""E7 — model separation: multimedia beats both single media (Theorem 2 + Cor. 3).

Claims reproduced: on topologies whose diameter is Θ(n) (rings), computing a
global sensitive function needs Ω(d) = Ω(n) time on the point-to-point
network alone and Ω(n) time on the channel alone, while the multimedia
algorithm finishes in Õ(√n) time — so the combined network is strictly more
powerful than either of its parts, with the gap growing with n.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import Table
from repro.core.global_function.baselines import (
    compute_on_channel_only,
    compute_on_point_to_point_only,
)
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.core.lower_bounds import (
    broadcast_lower_bound,
    multimedia_lower_bound,
    point_to_point_lower_bound,
)
from repro.experiments.harness import make_topology
from repro.topology.properties import diameter

DEFAULT_SIZES = (64, 128, 256, 512, 1024)


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "ring") -> Table:
    """Run the sweep and return the E7 table."""
    table = Table(
        title="E7  Model separation on diameter-Θ(n) topologies "
        "(multimedia Õ(√n) vs point-to-point Ω(d) vs channel Ω(n))",
        columns=[
            "n", "diameter", "t_multimedia", "t_p2p_only", "t_channel_only",
            "lb_p2p", "lb_channel", "lb_multimedia",
            "speedup_vs_p2p", "speedup_vs_channel",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        d = diameter(graph)
        inputs = {node: int(node) for node in graph.nodes()}
        multimedia = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5
        )
        p2p = compute_on_point_to_point_only(graph, INTEGER_ADDITION, inputs, seed=5)
        channel = compute_on_channel_only(graph, INTEGER_ADDITION, inputs, seed=5)
        table.add_row(
            graph.num_nodes(),
            d,
            multimedia.total_rounds,
            p2p.rounds,
            channel.rounds,
            point_to_point_lower_bound(d),
            broadcast_lower_bound(graph.num_nodes()),
            multimedia_lower_bound(graph.num_nodes(), d),
            p2p.rounds / multimedia.total_rounds,
            channel.rounds / multimedia.total_rounds,
        )
    return table


if __name__ == "__main__":
    print(run().render())
