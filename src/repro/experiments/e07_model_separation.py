"""E7 — model separation: multimedia beats both single media (Theorem 2 + Cor. 3).

Claims reproduced: on topologies whose diameter is Θ(n) (rings), computing a
global sensitive function needs Ω(d) = Ω(n) time on the point-to-point
network alone and Ω(n) time on the channel alone, while the multimedia
algorithm finishes in Õ(√n) time — so the combined network is strictly more
powerful than either of its parts, with the gap growing with n.

The sweep also runs on the scale-free (``scale_free``) and ad-hoc wireless
(``ad_hoc``) topologies: their diameters are small, so there the separation
is carried by the channel-only Ω(n) bound rather than the point-to-point
Ω(d) bound.  The measured channel-only baseline is optional
(``channel_baseline``): historically it cost Θ(n) slots at Θ(pending) work
per slot — minutes of wall clock at ``n ≥ 10^4`` — which is why the ``hot``
preset disables it by default.  The geometric skip-ahead contention scheduler
(:mod:`repro.protocols.collision.geometric`) now samples the same schedule
in O(1) work per busy slot, so the baseline column costs ~0.2 s at
``n = 10240`` on any topology kind; the ``e7_baseline_hot`` trajectory entry
records it on the hot scale-free preset within the 2 s/run budget (on ring
at that size the sweep is dominated by the point-to-point baseline's Θ(n)
rounds, not the channel stage — enable it per run via
``--set channel_baseline=true``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.analysis.reporting import Table
from repro.core.global_function.baselines import (
    compute_on_channel_only,
    compute_on_point_to_point_only,
)
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.core.lower_bounds import (
    broadcast_lower_bound,
    multimedia_lower_bound,
    point_to_point_lower_bound,
)
from repro.experiments.harness import make_topology, topology_diameter
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort

DEFAULT_SIZES = (64, 128, 256, 512, 1024)


def _title(params: Mapping[str, object]) -> str:
    topology = params.get("topology", "ring")
    if topology == "ring":
        return (
            "E7  Model separation on diameter-Θ(n) topologies "
            "(multimedia Õ(√n) vs point-to-point Ω(d) vs channel Ω(n))"
        )
    # low-diameter kinds: the point-to-point Ω(d) bound is weak there,
    # so the separation is carried by the channel-only Ω(n) bound
    return (
        f"E7  Model separation on {topology} topologies "
        "(multimedia Õ(√n) vs point-to-point Ω(d) vs channel Ω(n); "
        "low diameter — the channel Ω(n) bound carries the gap)"
    )


@register_experiment(
    id="e7",
    title=_title,
    description="multimedia vs single-medium separation (Theorem 2, Corollary 3)",
    columns=(
        "n", "diameter", "t_multimedia", "t_p2p_only", "t_channel_only",
        "lb_p2p", "lb_channel", "lb_multimedia",
        "speedup_vs_p2p", "speedup_vs_channel",
    ),
    topologies=("ring", "grid", "geometric", "scale_free", "ad_hoc"),
    adversities=ADVERSITY_KINDS,
    presets={
        "quick": {"sizes": (16, 32), "topology": "ring", "channel_baseline": True},
        "default": {"sizes": (128, 256, 512), "topology": "ring",
                    "channel_baseline": True},
        # the hot preset keeps the measured baseline off so its trajectory
        # entries stay comparable across labels; e7_baseline_hot turns it on
        # (affordable since the geometric skip-ahead landed)
        "hot": {"sizes": (4096, 10240), "topology": "scale_free",
                "channel_baseline": False},
        # an order of magnitude past hot: the flyweight sim layer keeps the
        # partition + two simulated stages inside a 10 s/run budget
        "xhot": {"sizes": (102400,), "topology": "scale_free",
                 "channel_baseline": False},
        # single instance at n = 10^6 (PR 8's CSR graph core); ~130 s/run —
        # bench-only, never part of the CI smoke suite
        "xxhot": {"sizes": (1000000,), "topology": "scale_free",
                  "channel_baseline": False},
    },
    bench_extras=(
        ("e7_scale_free_hot", "hot", {}),
        ("e7_ad_hoc_hot", "hot", {"topology": "ad_hoc"}),
        ("e7_baseline_hot", "hot", {"channel_baseline": True}),
        ("e7_loss_hot", "hot",
         {"sizes": (1024, 4096), "adversity": "loss"}),
        ("e7_xhot", "xhot", {}),
        ("e7_xxhot", "xxhot", {}),
    ),
    quick_extras=(
        ("e7_scale_free", "quick",
         {"sizes": (64, 128), "topology": "scale_free", "channel_baseline": False}),
        ("e7_ad_hoc", "quick",
         {"sizes": (64, 128), "topology": "ad_hoc", "channel_baseline": False}),
        ("e7_baseline", "quick",
         {"sizes": (256, 512), "topology": "scale_free", "channel_baseline": True}),
        ("e7_loss", "quick", {"adversity": "loss"}),
    ),
)
def sweep_point(
    n: int,
    topology: str = "ring",
    channel_baseline: bool = True,
    adversity: object = None,
) -> Dict[str, object]:
    """Measure all three media on one topology and report the separation.

    Each medium faces an independently-seeded instance of the adversity
    schedule (when one is requested); a medium whose run aborts reports
    ``"abort"`` and drops out of the speedup columns.

    Raises:
        AssertionError: in fault-free runs only — if any medium computes the
            wrong aggregate, the separation claim is meaningless.  A
            completed run under adversity reports what it measured (the
            aggregation protocols stall rather than mis-aggregate when
            messages are lost, so completion implies correctness there too).
    """
    graph = make_topology(topology, n, seed=11)
    d = topology_diameter(topology, graph)
    inputs = {node: int(node) for node in graph.nodes()}
    expected = sum(inputs.values())
    try:
        multimedia = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5,
            adversity=adversity_state(adversity, "e7", n, topology, "multimedia"),
        )
    except AdversityAbort:
        multimedia = None
    try:
        p2p = compute_on_point_to_point_only(
            graph, INTEGER_ADDITION, inputs, seed=5,
            adversity=adversity_state(adversity, "e7", n, topology, "p2p"),
        )
    except AdversityAbort:
        p2p = None
    if adversity is None:
        assert multimedia.value == expected and p2p.value == expected
    channel_rounds: object = "-"
    channel_speedup: object = "-"
    if channel_baseline:
        try:
            channel = compute_on_channel_only(
                graph, INTEGER_ADDITION, inputs, seed=5,
                adversity=adversity_state(adversity, "e7", n, topology, "channel"),
            )
            if adversity is None:
                assert channel.value == expected
            channel_rounds = channel.rounds
            if multimedia is not None:
                channel_speedup = channel.rounds / multimedia.total_rounds
        except AdversityAbort:
            channel_rounds = ABORTED
    return {
        "n": graph.num_nodes(),
        "diameter": d,
        "t_multimedia": multimedia.total_rounds if multimedia else ABORTED,
        "t_p2p_only": p2p.rounds if p2p else ABORTED,
        "t_channel_only": channel_rounds,
        "lb_p2p": point_to_point_lower_bound(d),
        "lb_channel": broadcast_lower_bound(graph.num_nodes()),
        "lb_multimedia": multimedia_lower_bound(graph.num_nodes(), d),
        "speedup_vs_p2p": (
            p2p.rounds / multimedia.total_rounds if multimedia and p2p else "-"
        ),
        "speedup_vs_channel": channel_speedup,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    topology: str = "ring",
    channel_baseline: bool = True,
) -> Table:
    """Run the sweep and return the E7 table (registry-backed).

    Args:
        sizes: approximate node counts, one row per entry.
        topology: any :func:`~repro.experiments.harness.make_topology` kind.
        channel_baseline: measure the channel-only baseline (disable for
            ``n ≥ 10^4`` sweeps; the ``lb_channel`` column still reports the
            Ω(n) bound and the cell shows ``-``).
    """
    result = run_experiment(
        "e7",
        overrides={
            "sizes": tuple(sizes),
            "topology": topology,
            "channel_baseline": channel_baseline,
        },
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
