"""Unified experiment runner: one code path from spec to structured result.

:func:`run_experiment` resolves an :class:`~repro.experiments.registry.ExperimentSpec`
(by id or directly), expands the chosen preset into sweep points, executes
each point — serially or across a process pool — and returns an
:class:`ExperimentResult` holding the structured row dictionaries.  The
result renders to the exact plain-text :class:`~repro.analysis.reporting.Table`
the experiment modules historically printed **and** serializes to JSON, so
the CLI, the benchmark trajectory, the pytest benches and CI all consume the
same records instead of scraping rendered tables.

Parallel determinism: every sweep point carries its own seeds (see
:mod:`repro.experiments.registry`), so a process-pool run computes exactly
the rows a serial run computes, in the same order — guarded by
``tests/test_experiment_registry.py``.
"""

from __future__ import annotations

import json
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.reporting import Table, table_from_records
from repro.experiments.registry import (
    DEFAULT_PRESET,
    ExperimentSpec,
    get_experiment,
)

RESULT_SCHEMA = 1


@dataclass
class ExperimentResult:
    """The structured outcome of one experiment sweep.

    Attributes:
        experiment_id: the spec id (``e1`` … ``e10``).
        title: rendered table title for the resolved parameters.
        columns: row schema, in rendering order.
        rows: one dict per sweep point, keyed by ``columns``.
        params: the resolved parameters the sweep ran with.
        preset: the preset the parameters were based on.
        wall_seconds: wall-clock duration of the sweep.
    """

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    rows: List[Dict[str, Any]]
    params: Dict[str, Any] = field(default_factory=dict)
    preset: str = DEFAULT_PRESET
    wall_seconds: float = 0.0

    def to_table(self) -> Table:
        """Render the rows as the experiment's historical plain-text table."""
        return table_from_records(self.title, self.columns, self.rows)

    def to_json_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable representation of the result."""
        return {
            "schema": RESULT_SCHEMA,
            "experiment": self.experiment_id,
            "title": self.title,
            "preset": self.preset,
            "params": _jsonable(self.params),
            "columns": list(self.columns),
            "rows": _jsonable(self.rows),
            "wall_seconds": round(self.wall_seconds, 4),
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_json_dict(), indent=indent) + "\n"

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json_dict` output.

        Raises:
            ValueError: on an unknown schema version.
        """
        if data.get("schema") != RESULT_SCHEMA:
            raise ValueError(f"unsupported result schema: {data.get('schema')!r}")
        return cls(
            experiment_id=data["experiment"],
            title=data["title"],
            columns=tuple(data["columns"]),
            rows=[dict(row) for row in data["rows"]],
            params=dict(data.get("params", {})),
            preset=data.get("preset", DEFAULT_PRESET),
            wall_seconds=data.get("wall_seconds", 0.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from a JSON string."""
        return cls.from_json_dict(json.loads(text))


def _jsonable(value: Any) -> Any:
    """Round-trip ``value`` through strictly-JSON-compatible containers.

    Non-finite floats (e10's ``GL_error_factor`` is ``inf`` when an estimate
    degenerates to zero) are mapped to their string forms so the emitted
    files stay valid for strict JSON consumers.
    """
    return json.loads(json.dumps(_finite(value), allow_nan=False))


def _finite(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_finite(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


def _resolve(experiment: Union[str, ExperimentSpec]) -> ExperimentSpec:
    if isinstance(experiment, ExperimentSpec):
        return experiment
    return get_experiment(experiment)


def _execute_point(spec: ExperimentSpec, point: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one sweep point of ``spec`` and validate its row schema."""
    row = spec.point_fn(**point)
    missing = [column for column in spec.columns if column not in row]
    if missing or len(row) != len(spec.columns):
        raise ValueError(
            f"experiment {spec.id!r} returned a row whose keys do not "
            f"match its declared columns (missing: {missing}, got: {list(row)})"
        )
    return row


def _run_point_packed(packed: Tuple[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Pool-worker entry: resolve the spec by id (ids pickle, functions vary)."""
    experiment_id, point = packed
    return _execute_point(get_experiment(experiment_id), point)


def run_experiment(
    experiment: Union[str, ExperimentSpec],
    preset: str = DEFAULT_PRESET,
    overrides: Optional[Mapping[str, Any]] = None,
    processes: int = 0,
) -> ExperimentResult:
    """Run one experiment sweep and return its structured result.

    Args:
        experiment: a spec id (``"e7"``) or the spec itself.
        preset: parameter preset (``quick``/``default``/``hot``).
        overrides: parameter overrides on top of the preset (e.g.
            ``{"topology": "ad_hoc", "sizes": (64, 128)}``).
        processes: when > 1, execute sweep points in a process pool of this
            many workers; rows come back in sweep order and are bit-identical
            to a serial run (every point is independently seeded).  The pool
            workers re-resolve the spec by id, so parallel execution needs a
            *registered* spec; serial execution runs any spec object as-is.

    Raises:
        KeyError: on an unknown experiment id or preset.
        ValueError: on unsupported parameter overrides.
    """
    spec = _resolve(experiment)
    params = spec.params_for(preset, overrides)
    points = spec.points(params)
    start = time.perf_counter()
    if processes > 1 and len(points) > 1:
        with ProcessPoolExecutor(max_workers=min(processes, len(points))) as pool:
            rows = list(pool.map(_run_point_packed, [(spec.id, p) for p in points]))
    else:
        rows = [_execute_point(spec, point) for point in points]
    elapsed = time.perf_counter() - start
    return ExperimentResult(
        experiment_id=spec.id,
        title=spec.render_title(params),
        columns=spec.columns,
        rows=rows,
        params=dict(params),
        preset=preset,
        wall_seconds=elapsed,
    )
