"""Unified experiment runner: one code path from spec to structured result.

:func:`run_experiment` resolves an :class:`~repro.experiments.registry.ExperimentSpec`
(by id or directly), expands the chosen preset into sweep points, hands them
to an execution backend (see :mod:`repro.experiments.executors` — serial,
process-pool, sharded/checkpointed, or distributed), and returns an
:class:`ExperimentResult` holding the structured row dictionaries.  The
result renders to the exact plain-text :class:`~repro.analysis.reporting.Table`
the experiment modules historically printed **and** serializes to JSON, so
the CLI, the benchmark trajectory, the pytest benches and CI all consume the
same records instead of scraping rendered tables.

Backend determinism: every sweep point carries its own seeds (see
:mod:`repro.experiments.registry`), so a process-pool or sharded run computes
exactly the rows a serial run computes, in the same order — guarded by
``tests/test_experiment_registry.py`` and ``tests/test_executors.py``.

Result schema history
---------------------
* schema 1 — ``wall_seconds`` was the invocation's wall clock.
* schema 2 — ``wall_seconds`` is the **accumulated compute time** of every
  shard that contributed rows (for a resumed sharded run this spans earlier
  invocations); ``invocation_seconds`` records the final invocation's own
  wall clock, and ``pending_points``/``executor`` record completeness and
  provenance.  Schema-1 files still load (``invocation_seconds`` defaults to
  the stored ``wall_seconds``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.reporting import Table, table_from_records
from repro.experiments.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.serialization import jsonable
from repro.experiments.registry import (
    DEFAULT_PRESET,
    ExperimentSpec,
    get_experiment,
)

RESULT_SCHEMA = 2
_LOADABLE_SCHEMAS = (1, 2)


@dataclass
class ExperimentResult:
    """The structured outcome of one experiment sweep.

    Attributes:
        experiment_id: the spec id (``e1`` … ``e10``).
        title: rendered table title for the resolved parameters.
        columns: row schema, in rendering order.
        rows: one dict per completed sweep point, keyed by ``columns`` (a
            partial sharded run holds only the completed shards' rows).
        params: the resolved parameters the sweep ran with.
        preset: the preset the parameters were based on.
        wall_seconds: accumulated compute seconds across every shard that
            contributed rows — for a resumed/merged sharded run this spans
            all contributing invocations; for serial/process runs it is this
            invocation's sweep time.
        invocation_seconds: wall clock of the invocation that produced this
            result object (≤ ``wall_seconds`` after a resume).
        pending_points: sweep points not yet computed (0 when complete).
        executor: name of the execution backend that produced the rows.
    """

    experiment_id: str
    title: str
    columns: Tuple[str, ...]
    rows: List[Dict[str, Any]]
    params: Dict[str, Any] = field(default_factory=dict)
    preset: str = DEFAULT_PRESET
    wall_seconds: float = 0.0
    invocation_seconds: float = 0.0
    pending_points: int = 0
    executor: str = "serial"

    @property
    def complete(self) -> bool:
        """True when every sweep point has a row."""
        return self.pending_points == 0

    def to_table(self) -> Table:
        """Render the rows as the experiment's historical plain-text table."""
        return table_from_records(self.title, self.columns, self.rows)

    def to_json_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable representation of the result."""
        return {
            "schema": RESULT_SCHEMA,
            "experiment": self.experiment_id,
            "title": self.title,
            "preset": self.preset,
            "params": jsonable(self.params),
            "columns": list(self.columns),
            "rows": jsonable(self.rows),
            "wall_seconds": round(self.wall_seconds, 4),
            "invocation_seconds": round(self.invocation_seconds, 4),
            "pending_points": self.pending_points,
            "executor": self.executor,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_json_dict(), indent=indent) + "\n"

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json_dict` output.

        Accepts the current schema (2) and the legacy schema 1, whose
        ``wall_seconds`` doubles as ``invocation_seconds``.

        Raises:
            ValueError: on an unknown schema version.
        """
        if data.get("schema") not in _LOADABLE_SCHEMAS:
            raise ValueError(f"unsupported result schema: {data.get('schema')!r}")
        wall = data.get("wall_seconds", 0.0)
        return cls(
            experiment_id=data["experiment"],
            title=data["title"],
            columns=tuple(data["columns"]),
            rows=[dict(row) for row in data["rows"]],
            params=dict(data.get("params", {})),
            preset=data.get("preset", DEFAULT_PRESET),
            wall_seconds=wall,
            invocation_seconds=data.get("invocation_seconds", wall),
            pending_points=data.get("pending_points", 0),
            executor=data.get("executor", "serial"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from a JSON string."""
        return cls.from_json_dict(json.loads(text))


def _resolve(experiment: Union[str, ExperimentSpec]) -> ExperimentSpec:
    if isinstance(experiment, ExperimentSpec):
        return experiment
    return get_experiment(experiment)


def run_experiment(
    experiment: Union[str, ExperimentSpec],
    preset: str = DEFAULT_PRESET,
    overrides: Optional[Mapping[str, Any]] = None,
    processes: int = 0,
    executor: Optional[Union[str, Executor]] = None,
    shard: Optional[Tuple[int, int]] = None,
    resume: bool = False,
    run_dir: Optional[Path] = None,
    max_shards: int = 0,
    workers: int = 0,
    lease_timeout: float = 0.0,
) -> ExperimentResult:
    """Run one experiment sweep and return its structured result.

    Args:
        experiment: a spec id (``"e7"``) or the spec itself.
        preset: parameter preset (``quick``/``default``/``hot``/…).
        overrides: parameter overrides on top of the preset (e.g.
            ``{"topology": "ad_hoc", "sizes": (64, 128)}``).
        processes: when > 1 (and no explicit ``executor`` is given), execute
            sweep points in a process pool of this many workers; rows come
            back in sweep order and are bit-identical to a serial run (every
            point is independently seeded).  Pool workers re-resolve the spec
            by id, so parallel execution needs a *registered* spec; serial
            execution runs any spec object as-is.
        executor: execution backend — an :class:`~repro.experiments.executors.Executor`
            instance, or one of the registered names (``serial``/``process``/
            ``sharded``/``distributed``).  Defaults to ``process`` when
            ``processes > 1``, ``distributed`` when ``workers > 0``, and
            ``serial`` otherwise, preserving the historical signature.
        shard: 0-based ``(index, count)`` pair selecting one shard of a
            ``sharded`` run (the CLI's ``--shard K/N``).
        resume: reuse completed shard checkpoints (``sharded`` and
            ``distributed``).
        run_dir: shard checkpoint directory override (``sharded`` and
            ``distributed``).
        max_shards: compute at most this many shards in this invocation
            (``sharded`` only; 0 means no limit).
        workers: worker processes for the ``distributed`` backend; > 0
            implies ``distributed`` when no explicit ``executor`` is given.
        lease_timeout: seconds a distributed shard lease survives without a
            heartbeat (``distributed`` only; 0 uses the backend default).

    Raises:
        KeyError: on an unknown experiment id or preset.
        ValueError: on unsupported parameter overrides, an unknown executor
            name, or backend options combined with a backend that does not
            understand them.
    """
    spec = _resolve(experiment)
    params = spec.params_for(preset, overrides)
    points = spec.points(params)
    sharded_requested = (
        shard is not None or max_shards != 0
    )
    distributed_requested = workers > 0 or lease_timeout > 0
    checkpoint_requested = resume or run_dir is not None
    if isinstance(executor, str):
        backend: Executor = make_executor(
            executor,
            processes=processes,
            shard=shard,
            resume=resume,
            run_dir=run_dir,
            max_shards=max_shards,
            workers=workers,
            lease_timeout=lease_timeout,
        )
    elif executor is not None:
        if (
            sharded_requested
            or distributed_requested
            or checkpoint_requested
            or processes > 0
        ):
            raise ValueError(
                "processes/shard/resume/run_dir/max_shards/workers/"
                "lease_timeout cannot be combined with an executor "
                "instance — configure the instance itself, or pass the "
                "executor by name"
            )
        backend = executor
    elif distributed_requested:
        # worker options imply the distributed backend, mirroring how
        # sharded options imply sharded below (sharded-only options are
        # forwarded so the unsupported combination is rejected)
        backend = make_executor(
            "distributed", processes=processes, shard=shard, resume=resume,
            run_dir=run_dir, max_shards=max_shards, workers=workers,
            lease_timeout=lease_timeout,
        )
    elif sharded_requested or checkpoint_requested:
        # sharded options imply the sharded backend, so `--resume` alone
        # does the expected thing without repeating `--executor sharded`
        # (processes is forwarded so the unsupported combination is
        # rejected rather than silently dropped)
        backend = make_executor(
            "sharded", processes=processes, shard=shard, resume=resume,
            run_dir=run_dir, max_shards=max_shards,
        )
    elif processes > 1:
        backend = ProcessExecutor(processes=processes)
    else:
        backend = SerialExecutor()
    start = time.perf_counter()
    outcome = backend.execute(spec, preset, params, points)
    elapsed = time.perf_counter() - start
    return ExperimentResult(
        experiment_id=spec.id,
        title=spec.render_title(params),
        columns=spec.columns,
        rows=outcome.rows,
        params=dict(params),
        preset=preset,
        wall_seconds=outcome.compute_seconds,
        invocation_seconds=elapsed,
        pending_points=outcome.pending_points,
        executor=backend.name,
    )
