"""Distributed sweep execution: a shard-leasing coordinator plus workers.

The ``distributed`` backend farms the sharded executor's deterministic
shards out to worker *processes* (local or across a LAN) instead of
executing them inline.  A :class:`ShardCoordinator` owns the shard queue and
leases shards over a tiny JSON-over-TCP protocol; :class:`ShardWorker`
processes lease, compute, and submit shards back, heartbeating while they
work and reconnecting with exponential backoff when the coordinator is
briefly unreachable.  :class:`DistributedExecutor` wires the two together
behind the unchanged :class:`~repro.experiments.executors.Executor`
protocol, so ``run_experiment(..., executor="distributed")`` is all it takes.

Fault model
-----------
Workers are assumed to fail arbitrarily: they may be SIGKILLed mid-shard,
hang past their lease, partition away from the coordinator, or submit stale
or corrupt payloads.  The design holds the merged result bit-identical to a
serial run through three mechanisms:

* **Leases + heartbeats.**  A leased shard must be heartbeat within
  ``lease_timeout`` seconds or the lease expires and the shard returns to
  the pending queue (*at-least-once* reassignment).  A worker whose lease
  was reassigned learns so from its next heartbeat reply.
* **Digest-checked submissions.**  Every submission must carry the sweep
  digest, the shard's exact point indices, and rows matching the spec's
  column schema — the same validation
  :func:`~repro.experiments.executors.load_checkpoint` applies to files on
  disk — before the coordinator writes the checkpoint.  A stale submission
  from a differently-parameterised sweep (or a worker running drifted code)
  is rejected and the shard re-queued.
* **Deterministic rows.**  Every sweep point carries its own seeds, so a
  shard computed twice (the at-least-once case) yields byte-identical rows;
  duplicate submissions of a completed shard are acknowledged and discarded.

Because accepted shards land as the *same* digest-checked checkpoint files
the sharded executor writes (and the merge reads every row back through the
JSON decoder), a distributed run directory is interchangeable with a
sharded one: ``--resume`` works across backends and the merged rows equal a
serial run bit-for-bit.  ``tests/test_distributed.py`` holds the
worker-fault harness proving all of this under SIGKILL, hangs, and corrupt
submissions.

Wire protocol
-------------
One JSON object per connection, newline-terminated, reply in kind
(connection-per-request keeps a partitioned or killed peer from wedging
either side).  Resolved sweep parameters cross the wire under the
tuple-preserving encoding of
:func:`~repro.experiments.serialization.encode_wire`, and workers recompute
the sweep digest from the decoded parameters — a codec or code-version skew
is refused before any shard runs.

=============  ==========================================================
request op     reply op
=============  ==========================================================
``describe``   ``sweep`` — experiment id, preset, wire-encoded params,
               point/shard counts, digest, lease timeout
``lease``      ``assign`` (shard + indices) / ``wait`` / ``done``
``heartbeat``  ``ok`` with ``valid`` false once the lease was reassigned
``submit``     ``accepted`` (``duplicate`` true when already complete) /
               ``rejected`` with a reason, shard re-queued
=============  ==========================================================
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import socketserver
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.experiments.executors import (
    ExecutionOutcome,
    ExecutorConfigError,
    _manifest_shard_count,
    ensure_manifest,
    execute_point,
    load_checkpoint,
    merge_checkpoints,
    resolve_run_dir,
    shard_indices,
    sweep_digest,
    write_checkpoint,
)
from repro.experiments.registry import (
    ExperimentSpec,
    PointParams,
    get_experiment,
)
from repro.experiments.serialization import decode_wire, encode_wire

#: wire protocol version; bumped on incompatible message changes
PROTOCOL = 1

#: hard cap on one wire message (a quick-preset shard is a few KiB)
MAX_MESSAGE_BYTES = 32 * 1024 * 1024


class DistributedProtocolError(RuntimeError):
    """A worker/coordinator exchange failed in a way retries cannot fix.

    Raised for version or digest skew between the two sides, malformed
    replies, and a coordinator that stays unreachable past the backoff
    budget — conditions where continuing could only waste compute or
    (worse) submit rows for the wrong sweep.
    """


def send_request(
    address: Tuple[str, int],
    payload: Mapping[str, Any],
    timeout: float = 10.0,
) -> Dict[str, Any]:
    """Send one JSON request to ``address`` and return the JSON reply.

    One connection per request: connect, write a single newline-terminated
    JSON object, read a single reply line, close.  Raises ``OSError`` on
    connection/timeout trouble (the worker's backoff loop retries those)
    and :class:`DistributedProtocolError` on a malformed or oversized reply.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        with sock.makefile("rb") as stream:
            line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        raise ConnectionError("peer closed the connection without replying")
    if len(line) > MAX_MESSAGE_BYTES:
        raise DistributedProtocolError("oversized reply from coordinator")
    try:
        reply = json.loads(line.decode("utf-8"))
    except ValueError as error:
        raise DistributedProtocolError(f"malformed reply: {error}") from None
    if not isinstance(reply, dict):
        raise DistributedProtocolError("reply is not a JSON object")
    return reply


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
@dataclass
class _Lease:
    """One outstanding shard lease: who holds it and until when."""

    worker: str
    deadline: float


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server dispatching wire messages to the coordinator."""

    allow_reuse_address = True
    daemon_threads = True
    coordinator: "ShardCoordinator"


class _CoordinatorHandler(socketserver.StreamRequestHandler):
    """One request: read a JSON line, dispatch, write the JSON reply."""

    def setup(self) -> None:
        """Bound the read so a partitioned client cannot pin the thread."""
        self.request.settimeout(10.0)
        super().setup()

    def handle(self) -> None:
        """Dispatch one wire message to :meth:`ShardCoordinator.handle`."""
        try:
            line = self.rfile.readline(MAX_MESSAGE_BYTES + 1)
            if not line or len(line) > MAX_MESSAGE_BYTES:
                raise ValueError("missing or oversized request")
            message = json.loads(line.decode("utf-8"))
            if not isinstance(message, dict):
                raise ValueError("request is not a JSON object")
        except (OSError, ValueError, UnicodeDecodeError) as error:
            reply: Dict[str, Any] = {"op": "error", "reason": str(error)}
        else:
            reply = self.server.coordinator.handle(message)
        try:
            self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
        except OSError:
            pass  # client vanished mid-reply; its retry will re-ask


class ShardCoordinator:
    """Leases one sweep's shards to workers and checkpoints their results.

    The coordinator owns the pending-shard queue, the outstanding leases,
    and the completed set; every state transition happens under one lock
    inside :meth:`handle`, which is plain-callable (the fault-harness and
    property tests drive it directly, with an injected clock) and is what
    the TCP server invokes per request.  Completed shards are written
    through :func:`~repro.experiments.executors.write_checkpoint` into the
    standard run-directory layout, so everything downstream (resume, merge,
    ``repro serve``) is backend-agnostic.

    Attributes:
        stats: monotonic counters — ``leases_granted``, ``reassigned``,
            ``accepted``, ``rejected``, ``duplicates``, ``heartbeats`` —
            exposed for tests and operational logging.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        preset: str,
        params: Mapping[str, Any],
        points: List[PointParams],
        shard_count: int,
        digest: str,
        run_dir: Path,
        completed: Tuple[int, ...] = (),
        lease_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        """Set up coordinator state; call :meth:`start` to serve.

        Raises:
            ValueError: on a non-positive ``lease_timeout``.
        """
        if lease_timeout <= 0:
            raise ValueError(
                f"lease timeout must be positive, got {lease_timeout}"
            )
        self._spec = spec
        self._preset = preset
        self._params = dict(params)
        self._points = points
        self._shard_count = shard_count
        self._digest = digest
        self._run_dir = Path(run_dir)
        self._plan = shard_indices(len(points), shard_count)
        self._lease_timeout = lease_timeout
        self._clock = clock
        self._host = host
        self._port = port
        done = set(completed)
        self._pending = deque(
            shard for shard in range(shard_count) if shard not in done
        )
        self._leases: Dict[int, _Lease] = {}
        self._completed = done
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "leases_granted": 0,
            "reassigned": 0,
            "accepted": 0,
            "rejected": 0,
            "duplicates": 0,
            "heartbeats": 0,
        }
        self._server: Optional[_CoordinatorServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        """Bind the TCP server (without serving yet) and return the address.

        Split from :meth:`start` so callers can learn the ephemeral port —
        and fork worker processes — *before* any server thread exists.
        """
        if self._server is None:
            self._server = _CoordinatorServer(
                (self._host, self._port), _CoordinatorHandler
            )
            self._server.coordinator = self
        return self.address

    def start(self) -> Tuple[str, int]:
        """Bind (if needed) and serve requests on a daemon thread."""
        self.bind()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-coordinator",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._server is not None:
            if self._thread is not None:
                self._server.shutdown()
                self._thread.join(timeout=5.0)
                self._thread = None
            self._server.server_close()
            self._server = None

    def __enter__(self) -> "ShardCoordinator":
        """Start serving on context entry."""
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Stop serving on context exit."""
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; binds the server if needed."""
        if self._server is None:
            self.bind()
        host, port = self._server.server_address[:2]
        return host, port

    # -- observability --------------------------------------------------
    @property
    def finished(self) -> bool:
        """True when every shard has a validated checkpoint."""
        with self._lock:
            return len(self._completed) == self._shard_count

    @property
    def progress(self) -> Tuple[int, int, int]:
        """Return ``(completed, leased, pending)`` shard counts."""
        with self._lock:
            return len(self._completed), len(self._leases), len(self._pending)

    # -- the protocol ---------------------------------------------------
    def handle(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Process one wire message and return the reply object.

        Unknown or malformed operations yield an ``error`` reply instead of
        raising: a confused (or malicious) client must never take the
        coordinator down with it.
        """
        op = message.get("op")
        try:
            if op == "describe":
                return self._describe()
            if op == "lease":
                return self._lease(str(message.get("worker", "?")))
            if op == "heartbeat":
                return self._heartbeat(
                    str(message.get("worker", "?")), message.get("shard")
                )
            if op == "submit":
                return self._submit(message)
        except (TypeError, ValueError, KeyError) as error:
            return {"op": "error", "reason": f"malformed {op}: {error}"}
        return {"op": "error", "reason": f"unknown op {op!r}"}

    def _describe(self) -> Dict[str, Any]:
        """The sweep identity a (possibly remote) worker needs to join."""
        return {
            "op": "sweep",
            "protocol": PROTOCOL,
            "experiment": self._spec.id,
            "preset": self._preset,
            "params": encode_wire(self._params),
            "num_points": len(self._points),
            "shard_count": self._shard_count,
            "digest": self._digest,
            "lease_timeout": self._lease_timeout,
        }

    def _reap_expired(self, now: float) -> None:
        """Re-queue every lease whose deadline passed (lock held)."""
        for shard, lease in list(self._leases.items()):
            if lease.deadline < now:
                del self._leases[shard]
                self._pending.append(shard)
                self.stats["reassigned"] += 1

    def reap(self) -> None:
        """Expire overdue leases now (the executor's wait loop calls this)."""
        with self._lock:
            self._reap_expired(self._clock())

    def _lease(self, worker: str) -> Dict[str, Any]:
        """Grant the next pending shard, or say wait/done."""
        with self._lock:
            now = self._clock()
            self._reap_expired(now)
            if len(self._completed) == self._shard_count:
                return {"op": "done"}
            if not self._pending:
                # everything is leased out: poll again within the lease
                # window so an expiry is picked up promptly
                return {
                    "op": "wait",
                    "seconds": min(1.0, self._lease_timeout / 4),
                }
            shard = self._pending.popleft()
            self._leases[shard] = _Lease(worker, now + self._lease_timeout)
            self.stats["leases_granted"] += 1
            return {
                "op": "assign",
                "shard": shard,
                "indices": list(self._plan[shard]),
                "digest": self._digest,
            }

    def _heartbeat(self, worker: str, shard: Any) -> Dict[str, Any]:
        """Extend a live lease; tell a superseded worker to stand down."""
        with self._lock:
            now = self._clock()
            self._reap_expired(now)
            self.stats["heartbeats"] += 1
            lease = self._leases.get(shard) if isinstance(shard, int) else None
            valid = lease is not None and lease.worker == worker
            if valid:
                lease.deadline = now + self._lease_timeout
            return {"op": "ok", "valid": valid}

    def _submit(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate a shard submission and persist it as a checkpoint."""
        worker = str(message.get("worker", "?"))
        shard = message.get("shard")
        with self._lock:
            now = self._clock()
            self._reap_expired(now)
            if not isinstance(shard, int) or not 0 <= shard < self._shard_count:
                return self._reject(worker, shard, "shard index out of range")
            if shard in self._completed:
                # at-least-once: a reassigned worker finishing late submits
                # rows identical to the accepted ones — acknowledge, discard
                self.stats["duplicates"] += 1
                return {"op": "accepted", "duplicate": True}
            if message.get("digest") != self._digest:
                return self._reject(worker, shard, "stale sweep digest")
            if message.get("indices") != list(self._plan[shard]):
                return self._reject(worker, shard, "shard indices mismatch")
            rows = decode_wire(message.get("rows"))
            expected = len(self._plan[shard])
            if not isinstance(rows, list) or len(rows) != expected:
                return self._reject(worker, shard, "row count mismatch")
            if any(
                not isinstance(row, dict) or set(self._spec.columns) - set(row)
                for row in rows
            ):
                return self._reject(worker, shard, "row schema mismatch")
            try:
                compute_seconds = float(message.get("compute_seconds", 0.0))
            except (TypeError, ValueError):
                compute_seconds = 0.0
            write_checkpoint(
                self._run_dir,
                shard,
                self._shard_count,
                self._plan[shard],
                rows,
                compute_seconds,
                self._digest,
            )
            self._completed.add(shard)
            self._leases.pop(shard, None)
            self.stats["accepted"] += 1
            return {"op": "accepted", "duplicate": False}

    def _reject(self, worker: str, shard: Any, reason: str) -> Dict[str, Any]:
        """Refuse a submission; re-queue the shard if this worker held it.

        Lock held by the caller.  Only the lease holder's rejection
        re-queues — a rejected submission from a worker whose lease was
        already reassigned must not duplicate the shard in the queue.
        """
        self.stats["rejected"] += 1
        if isinstance(shard, int):
            lease = self._leases.get(shard)
            if lease is not None and lease.worker == worker:
                del self._leases[shard]
                self._pending.append(shard)
        return {"op": "rejected", "reason": reason}


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
class ShardWorker:
    """One worker process's lease→compute→submit loop.

    The worker is stateless between shards and trusts nothing it cannot
    verify: it fetches the sweep description, re-resolves the spec from its
    own registry, decodes the parameters, and *recomputes the sweep digest*
    — refusing to compute anything when the two sides disagree (version
    skew).  While computing it heartbeats from a daemon thread; every
    request reconnects with exponential backoff so a briefly unreachable
    coordinator (restart, network blip) is ridden out, and a permanently
    gone one terminates the worker with
    :class:`DistributedProtocolError` after ``max_attempts`` tries.

    Subclasses may override :meth:`on_leased` (called between winning a
    lease and computing it) — the seam the fault-harness's ``FaultyWorker``
    doubles use to die, hang, or corrupt at the worst possible moment.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: Optional[str] = None,
        request_timeout: float = 10.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_attempts: int = 8,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        """Configure the worker; :meth:`run` does the work."""
        self.address = (address[0], int(address[1]))
        self.worker_id = worker_id or (
            f"worker-{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.request_timeout = request_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_attempts = max_attempts
        self.heartbeat_interval = heartbeat_interval
        self.shards_computed = 0

    # -- overridable seams ---------------------------------------------
    def on_leased(self, shard: int) -> None:
        """Called after a lease is granted, before computing it (test seam)."""

    def resolve_spec(self, experiment_id: str) -> ExperimentSpec:
        """Resolve the sweep's spec from this worker's own registry."""
        return get_experiment(experiment_id)

    # -- the loop -------------------------------------------------------
    def run(self) -> int:
        """Serve the coordinator until the sweep is done.

        Returns the number of shards this worker computed and had accepted.

        Raises:
            DistributedProtocolError: on digest/protocol skew, a malformed
                reply, or a coordinator unreachable past the backoff budget.
        """
        description = self._request({"op": "describe"})
        if description.get("op") != "sweep":
            raise DistributedProtocolError(
                f"unexpected describe reply: {description!r}"
            )
        if description.get("protocol") != PROTOCOL:
            raise DistributedProtocolError(
                f"coordinator speaks protocol {description.get('protocol')!r}, "
                f"this worker speaks {PROTOCOL}"
            )
        spec = self.resolve_spec(description["experiment"])
        params = decode_wire(description["params"])
        points = spec.points(params)
        shard_count = int(description["shard_count"])
        digest = sweep_digest(
            spec.id, description["preset"], params, len(points), shard_count
        )
        if digest != description["digest"] or len(points) != int(
            description["num_points"]
        ):
            raise DistributedProtocolError(
                "sweep digest mismatch between coordinator and worker — "
                "mismatched code versions or a wire-codec fault; refusing "
                "to compute shards that could never be accepted"
            )
        plan = shard_indices(len(points), shard_count)
        interval = self.heartbeat_interval
        if interval is None:
            interval = max(float(description["lease_timeout"]) / 4.0, 0.05)

        while True:
            reply = self._request({"op": "lease", "worker": self.worker_id})
            op = reply.get("op")
            if op == "done":
                return self.shards_computed
            if op == "wait":
                time.sleep(float(reply.get("seconds", 0.1)))
                continue
            if op != "assign":
                raise DistributedProtocolError(
                    f"unexpected lease reply: {reply!r}"
                )
            shard = int(reply["shard"])
            self.on_leased(shard)
            rows, elapsed = self._compute(spec, points, plan[shard], shard, interval)
            outcome = self._request(
                {
                    "op": "submit",
                    "worker": self.worker_id,
                    "shard": shard,
                    "digest": digest,
                    "indices": list(plan[shard]),
                    "rows": encode_wire(rows),
                    "compute_seconds": round(elapsed, 6),
                }
            )
            if outcome.get("op") == "accepted":
                if not outcome.get("duplicate"):
                    self.shards_computed += 1
            # a rejected submission is not fatal: the coordinator re-queued
            # the shard (or already has it); keep leasing

    def _compute(
        self,
        spec: ExperimentSpec,
        points: List[PointParams],
        indices: List[int],
        shard: int,
        interval: float,
    ) -> Tuple[List[Dict[str, Any]], float]:
        """Execute one shard's points under a background heartbeat."""
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(shard, interval, stop),
            name=f"heartbeat-{shard}",
            daemon=True,
        )
        beat.start()
        try:
            start = time.perf_counter()
            rows = [execute_point(spec, points[index]) for index in indices]
            return rows, time.perf_counter() - start
        finally:
            stop.set()
            beat.join(timeout=self.request_timeout + 1.0)

    def _heartbeat_loop(
        self, shard: int, interval: float, stop: threading.Event
    ) -> None:
        """Heartbeat ``shard`` every ``interval`` seconds until stopped."""
        while not stop.wait(interval):
            try:
                send_request(
                    self.address,
                    {
                        "op": "heartbeat",
                        "worker": self.worker_id,
                        "shard": shard,
                    },
                    timeout=self.request_timeout,
                )
            except (OSError, DistributedProtocolError):
                # a missed heartbeat is survivable: the next one (or the
                # submit itself) may land before the lease expires, and an
                # expiry only costs a duplicate computation
                pass

    def _request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one request, reconnecting with exponential backoff."""
        delay = self.backoff_base
        last: Optional[BaseException] = None
        for _ in range(self.max_attempts):
            try:
                return send_request(
                    self.address, payload, timeout=self.request_timeout
                )
            except OSError as error:
                last = error
            time.sleep(delay)
            delay = min(delay * 2, self.backoff_cap)
        raise DistributedProtocolError(
            f"coordinator at {self.address[0]}:{self.address[1]} unreachable "
            f"after {self.max_attempts} attempts ({last})"
        )


def run_worker(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    **kwargs: Any,
) -> int:
    """Run one :class:`ShardWorker` to completion (process entry point).

    This is what ``repro worker --connect HOST:PORT`` executes, and the
    target :class:`DistributedExecutor` spawns its local worker processes
    on; extra keyword arguments forward to :class:`ShardWorker`.
    """
    return ShardWorker((host, port), worker_id=worker_id, **kwargs).run()


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
@dataclass
class DistributedExecutor:
    """Coordinator-backed executor: shards leased to worker processes.

    Attributes:
        workers: local worker processes to spawn (when ``spawn_workers``).
        run_dir: checkpoint directory (same default naming as the sharded
            backend, so the two are interchangeable on one directory).
        shard_count: shard layout; defaults to an existing manifest's count,
            else one shard per sweep point.
        resume: treat valid pre-existing checkpoints as completed shards
            instead of recomputing them.
        lease_timeout: seconds a shard lease survives without a heartbeat.
        host: coordinator bind address; ``0.0.0.0`` admits LAN workers
            (``repro worker --connect``), the default stays loopback-only.
        port: coordinator port (0 picks an ephemeral one).
        spawn_workers: when false, spawn nothing and rely on external
            workers connecting to the coordinator (``wall_timeout`` then
            bounds the wait).
        wall_timeout: optional overall deadline in seconds; on expiry the
            merged partial result is returned (``pending_points`` > 0),
            exactly like an interrupted sharded run — ``--resume`` finishes.
        poll_interval: coordinator wait-loop poll period.
    """

    workers: int = 2
    run_dir: Optional[Path] = None
    shard_count: Optional[int] = None
    resume: bool = False
    lease_timeout: float = 30.0
    host: str = "127.0.0.1"
    port: int = 0
    spawn_workers: bool = True
    wall_timeout: Optional[float] = None
    poll_interval: float = 0.05
    name: str = field(default="distributed", init=False)

    def execute(
        self,
        spec: ExperimentSpec,
        preset: str,
        params: Mapping[str, Any],
        points: List[PointParams],
    ) -> ExecutionOutcome:
        """Coordinate workers over the sweep and merge their checkpoints.

        Raises:
            ExecutorConfigError: on a nonsensical configuration (no
                workers and nothing external to wait for, bad lease
                timeout) or a run directory belonging to a different sweep.
        """
        if self.spawn_workers and self.workers < 1:
            raise ExecutorConfigError(
                f"distributed executor needs at least one worker, got "
                f"{self.workers}"
            )
        if self.lease_timeout <= 0:
            raise ExecutorConfigError(
                f"lease timeout must be positive, got {self.lease_timeout}"
            )
        if not self.spawn_workers and self.wall_timeout is None:
            raise ExecutorConfigError(
                "spawn_workers=False needs a wall_timeout: with no local "
                "workers and no deadline the coordinator could wait forever"
            )
        run_dir = resolve_run_dir(
            spec.id, preset, params, len(points), self.run_dir
        )
        count = self.shard_count
        if count is None:
            count = _manifest_shard_count(run_dir)
        if count is None:
            count = max(1, len(points))
        if count < 1:
            raise ExecutorConfigError(
                f"shard count must be positive, got {count}"
            )
        digest = sweep_digest(spec.id, preset, params, len(points), count)
        run_dir.mkdir(parents=True, exist_ok=True)
        ensure_manifest(
            run_dir, spec.id, preset, params, len(points), count, digest
        )
        plan = shard_indices(len(points), count)
        completed = tuple(
            shard
            for shard in range(count)
            if self.resume
            and load_checkpoint(run_dir, shard, plan[shard], spec.columns, digest)
            is not None
        )
        coordinator = ShardCoordinator(
            spec,
            preset,
            params,
            points,
            count,
            digest,
            run_dir,
            completed=completed,
            lease_timeout=self.lease_timeout,
            host=self.host,
            port=self.port,
        )
        # bind before spawning so (a) workers know the ephemeral port and
        # (b) local workers fork while this process is still single-threaded
        host, port = coordinator.bind()
        procs: List[multiprocessing.process.BaseProcess] = []
        try:
            if self.spawn_workers and not coordinator.finished:
                context = multiprocessing.get_context()
                for _ in range(self.workers):
                    proc = context.Process(
                        target=run_worker, args=(host, port), daemon=True
                    )
                    proc.start()
                    procs.append(proc)
            coordinator.start()
            deadline = (
                None
                if self.wall_timeout is None
                else time.monotonic() + self.wall_timeout
            )
            while not coordinator.finished:
                coordinator.reap()
                if deadline is not None and time.monotonic() > deadline:
                    break
                if procs and not any(proc.is_alive() for proc in procs):
                    # every local worker is gone (a worker exits only after
                    # its final submit round-trip): nothing will finish the
                    # remaining shards — return the partial result honestly
                    break
                time.sleep(self.poll_interval)
        finally:
            coordinator.stop()
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)

        rows_by_index, compute_seconds = merge_checkpoints(
            run_dir, plan, spec.columns, digest
        )
        rows = [rows_by_index[i] for i in sorted(rows_by_index)]
        return ExecutionOutcome(
            rows=rows,
            compute_seconds=compute_seconds,
            pending_points=len(points) - len(rows_by_index),
        )
