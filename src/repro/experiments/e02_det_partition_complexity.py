"""E2 — deterministic partition complexity (Section 3).

Claims reproduced: the deterministic partitioning algorithm runs in
O(√n log* n) time and sends O(m + n log n log* n) messages.  The table
reports the measured rounds and messages together with their ratios to the
bound formulas; a successful reproduction shows ratios that stay within a
constant band as n grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.complexity import (
    det_partition_message_bound,
    det_partition_time_bound,
)
from repro.analysis.reporting import Table
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 144, 256, 400, 625)


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "grid") -> Table:
    """Run the sweep and return the E2 table."""
    table = Table(
        title="E2  Deterministic partition complexity "
        "(bounds: time O(√n log* n), messages O(m + n log n log* n))",
        columns=[
            "n", "m", "rounds", "busy_rounds", "time_bound",
            "rounds/bound", "messages", "message_bound", "messages/bound",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        result = DeterministicPartitioner(graph).run()
        time_bound = det_partition_time_bound(graph.num_nodes())
        message_bound = det_partition_message_bound(graph.num_nodes(), graph.num_edges())
        table.add_row(
            graph.num_nodes(),
            graph.num_edges(),
            result.metrics.rounds,
            result.busy_rounds,
            round(time_bound, 1),
            result.metrics.rounds / time_bound,
            result.metrics.point_to_point_messages,
            round(message_bound, 1),
            result.metrics.point_to_point_messages / message_bound,
        )
    return table


if __name__ == "__main__":
    print(run().render())
