"""E2 — deterministic partition complexity (Section 3).

Claims reproduced: the deterministic partitioning algorithm runs in
O(√n log* n) time and sends O(m + n log n log* n) messages.  The table
reports the measured rounds and messages together with their ratios to the
bound formulas; a successful reproduction shows ratios that stay within a
constant band as n grows.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.complexity import (
    det_partition_message_bound,
    det_partition_time_bound,
)
from repro.analysis.reporting import Table
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment

DEFAULT_SIZES = (64, 144, 256, 400, 625)


@register_experiment(
    id="e2",
    title="E2  Deterministic partition complexity "
    "(bounds: time O(√n log* n), messages O(m + n log n log* n))",
    description="deterministic partition time/message complexity (Section 3)",
    columns=(
        "n", "m", "rounds", "busy_rounds", "time_bound",
        "rounds/bound", "messages", "message_bound", "messages/bound",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    presets={
        "quick": {"sizes": (16, 36), "topology": "grid"},
        "default": {"sizes": (64, 144, 256), "topology": "grid"},
        "hot": {"sizes": (1024, 4096, 16384), "topology": "grid"},
        # single-instance scale probe past n = 10^5 (PR 5's partition-loop
        # round 2); one point, so a sharded/checkpointed run resumes cleanly
        "xhot": {"sizes": (102400,), "topology": "grid"},
        # single instance at n = 10^6 (PR 8's CSR graph core); ~70 s/run —
        # bench-only, never part of the CI smoke suite
        "xxhot": {"sizes": (1000000,), "topology": "grid"},
    },
    bench_extras=(
        ("e2_hot", "hot", {}),
        ("e2_xhot", "xhot", {}),
        ("e2_xxhot", "xxhot", {}),
    ),
)
def sweep_point(n: int, topology: str = "grid") -> Dict[str, object]:
    """Partition one topology and compare its cost to the Section 3 bounds."""
    graph = make_topology(topology, n, seed=11)
    result = DeterministicPartitioner(graph).run()
    time_bound = det_partition_time_bound(graph.num_nodes())
    message_bound = det_partition_message_bound(graph.num_nodes(), graph.num_edges())
    return {
        "n": graph.num_nodes(),
        "m": graph.num_edges(),
        "rounds": result.metrics.rounds,
        "busy_rounds": result.busy_rounds,
        "time_bound": round(time_bound, 1),
        "rounds/bound": result.metrics.rounds / time_bound,
        "messages": result.metrics.point_to_point_messages,
        "message_bound": round(message_bound, 1),
        "messages/bound": result.metrics.point_to_point_messages / message_bound,
    }


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "grid") -> Table:
    """Run the sweep and return the E2 table (registry-backed)."""
    result = run_experiment(
        "e2", overrides={"sizes": tuple(sizes), "topology": topology}
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
