"""Shared configuration and topology sweeps for the experiments."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.topology.generators import (
    ad_hoc_affectance_graph,
    barabasi_albert_graph,
    grid_graph,
    random_geometric_graph,
    ring_graph,
)
from repro.topology.graph import WeightedGraph
from repro.topology.properties import approximate_diameter, diameter
from repro.topology.weights import assign_distinct_weights

# above this size, exact diameter (n BFS passes) costs more than the whole
# experiment on the low-diameter topologies; fall back to the double sweep
EXACT_DIAMETER_MAX_N = 1024


@dataclass
class ExperimentConfig:
    """Instance sizes and seeds shared by the experiment sweeps.

    .. deprecated::
        Superseded by the declarative spec layer: experiments now declare
        their parameter presets via
        :func:`repro.experiments.registry.register_experiment` and run
        through :func:`repro.experiments.runner.run_experiment`.  This class
        remains only for callers that built ad-hoc sweeps on top of it.

    Attributes:
        sizes: instance sizes, one graph per entry.
        seeds: algorithm seeds (the randomized algorithms consume these).
        topology: a :func:`make_topology` kind.
        topology_seed: seed the topologies are generated with.  Historically
            :meth:`graphs` silently hardcoded ``seed=11`` whatever was
            configured; the seed is now an explicit, honoured field (with the
            old value as its default).
    """

    sizes: Sequence[int] = (64, 144, 256, 400)
    seeds: Sequence[int] = (1, 2, 3)
    topology: str = "grid"
    topology_seed: int = 11

    def graphs(self) -> List[WeightedGraph]:
        """Return one weighted graph per configured size."""
        warnings.warn(
            "ExperimentConfig is deprecated; declare an ExperimentSpec via "
            "repro.experiments.registry and run it with "
            "repro.experiments.runner.run_experiment instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return [
            make_topology(self.topology, n, seed=self.topology_seed)
            for n in self.sizes
        ]


def make_topology(kind: str, n: int, seed: int = 0) -> WeightedGraph:
    """Return a connected weighted topology of ``kind`` with ≈``n`` nodes.

    Supported kinds: ``grid`` (⌊√n⌋ × ⌊√n⌋), ``ring``, ``geometric``,
    ``scale_free`` (Barabási–Albert preferential attachment), and ``ad_hoc``
    (heterogeneous-range wireless placement).

    Raises:
        ValueError: on an unknown kind.
    """
    if kind == "grid":
        side = max(2, round(n ** 0.5))
        graph = grid_graph(side, side)
    elif kind == "ring":
        graph = ring_graph(max(3, n))
    elif kind == "geometric":
        graph = random_geometric_graph(n, seed=seed)
    elif kind == "scale_free":
        graph = barabasi_albert_graph(n, attachment=2, seed=seed)
    elif kind == "ad_hoc":
        graph = ad_hoc_affectance_graph(n, seed=seed)
    else:
        raise ValueError(f"unknown topology kind {kind!r}")
    return assign_distinct_weights(graph, seed=seed)


def topology_diameter(kind: str, graph: WeightedGraph) -> int:
    """Return the hop diameter of a :func:`make_topology` graph, cheaply.

    The regular kinds have closed forms (a ring on ``n`` nodes has diameter
    ``⌊n/2⌋``; a ``side × side`` grid has ``2(side − 1)``), so the experiment
    sweeps do not pay ``n`` BFS passes just to label their rows.  Irregular
    kinds fall back to the exact scan up to ``EXACT_DIAMETER_MAX_N`` nodes
    and to the deterministic double-sweep bound beyond it (exact on trees,
    empirically tight on the small-world topologies used at that scale).
    """
    n = graph.num_nodes()
    if kind == "ring":
        return n // 2
    if kind == "grid":
        side = round(n ** 0.5)
        if side * side == n:
            return 2 * (side - 1)
    if n <= EXACT_DIAMETER_MAX_N:
        return diameter(graph)
    return approximate_diameter(graph)


def sweep_sizes(
    sizes: Sequence[int],
    runner: Callable[[WeightedGraph], Dict[str, float]],
    topology: str = "grid",
    seed: int = 11,
) -> List[Dict[str, float]]:
    """Run ``runner`` on one topology per size and collect its row dictionaries."""
    rows: List[Dict[str, float]] = []
    for n in sizes:
        graph = make_topology(topology, n, seed=seed)
        row = {"n": graph.num_nodes(), "m": graph.num_edges()}
        row.update(runner(graph))
        rows.append(row)
    return rows
