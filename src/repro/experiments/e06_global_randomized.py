"""E6 — randomized global-sensitive-function computation (Section 5.1).

Claims reproduced: the randomized two-stage algorithm computes a global
sensitive function in O(√n log* n) expected time with O(m + n log* n)
messages; the global stage needs only O(1) expected slots per fragment root.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.complexity import global_rand_time_bound, rand_partition_message_bound
from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION, INTEGER_MINIMUM, XOR
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort

DEFAULT_SIZES = (64, 144, 256, 400)
DEFAULT_SEEDS = (1, 2, 3)

_FUNCTIONS = (INTEGER_ADDITION, INTEGER_MINIMUM, XOR)


@register_experiment(
    id="e6",
    title="E6  Randomized global sensitive functions (sum/min/xor) "
    "(bounds: E[time] O(√n log* n), messages O(m + n log* n), "
    "O(1) expected slots per root)",
    description="randomized global sensitive functions (Section 5.1)",
    columns=(
        "n", "mean_rounds", "time_bound", "rounds/bound",
        "mean_messages", "messages/bound", "slots_per_root", "values_correct",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    adversities=ADVERSITY_KINDS,
    presets={
        "quick": {"sizes": (16, 36), "seeds": (1,), "topology": "grid"},
        "default": {"sizes": (64, 144, 256), "seeds": (1, 2, 3), "topology": "grid"},
        "hot": {"sizes": (1024, 4096), "seeds": (1, 2), "topology": "grid"},
    },
    bench_extras=(("e6_hot", "hot", {}),),
)
def sweep_point(
    n: int,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
    adversity: object = None,
) -> Dict[str, object]:
    """Aggregate sum/min/xor across seeds and compare to the Section 5.1 bounds.

    Under adversity, seeds whose run aborts are excluded from the means; a
    point where every seed aborts reports an ``"abort"`` row.
    """
    graph = make_topology(topology, n, seed=11)
    inputs = {node: int(node) + 1 for node in graph.nodes()}
    rounds, messages, slots_per_root = [], [], []
    correct = True
    for seed in seeds:
        function = _FUNCTIONS[seed % len(_FUNCTIONS)]
        expected = function.evaluate(list(inputs.values()))
        state = adversity_state(adversity, "e6", n, topology, seed)
        try:
            result = compute_global_function(
                graph, function, inputs, method="randomized", seed=seed,
                adversity=state,
            )
        except AdversityAbort:
            continue
        correct = correct and result.value == expected
        rounds.append(result.total_rounds)
        messages.append(result.metrics.point_to_point_messages)
        slots_per_root.append(result.global_slots / max(1, result.num_fragments))
    time_bound = global_rand_time_bound(graph.num_nodes())
    message_bound = rand_partition_message_bound(graph.num_nodes(), graph.num_edges())
    if not rounds:
        return {
            "n": graph.num_nodes(),
            "mean_rounds": ABORTED,
            "time_bound": round(time_bound, 1),
            "rounds/bound": "-",
            "mean_messages": ABORTED,
            "messages/bound": "-",
            "slots_per_root": "-",
            "values_correct": "-",
        }
    return {
        "n": graph.num_nodes(),
        "mean_rounds": mean(rounds),
        "time_bound": round(time_bound, 1),
        "rounds/bound": mean(rounds) / time_bound,
        "mean_messages": mean(messages),
        "messages/bound": mean(messages) / message_bound,
        "slots_per_root": mean(slots_per_root),
        "values_correct": correct,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E6 table (registry-backed)."""
    result = run_experiment(
        "e6",
        overrides={"sizes": tuple(sizes), "seeds": tuple(seeds), "topology": topology},
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
