"""E6 — randomized global-sensitive-function computation (Section 5.1).

Claims reproduced: the randomized two-stage algorithm computes a global
sensitive function in O(√n log* n) expected time with O(m + n log* n)
messages; the global stage needs only O(1) expected slots per fragment root.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.complexity import global_rand_time_bound, rand_partition_message_bound
from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION, INTEGER_MINIMUM, XOR
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 144, 256, 400)
DEFAULT_SEEDS = (1, 2, 3)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E6 table."""
    table = Table(
        title="E6  Randomized global sensitive functions (sum/min/xor) "
        "(bounds: E[time] O(√n log* n), messages O(m + n log* n), "
        "O(1) expected slots per root)",
        columns=[
            "n", "mean_rounds", "time_bound", "rounds/bound",
            "mean_messages", "messages/bound", "slots_per_root", "values_correct",
        ],
    )
    functions = (INTEGER_ADDITION, INTEGER_MINIMUM, XOR)
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        inputs = {node: int(node) + 1 for node in graph.nodes()}
        rounds, messages, slots_per_root = [], [], []
        correct = True
        for seed in seeds:
            function = functions[seed % len(functions)]
            expected = function.evaluate(list(inputs.values()))
            result = compute_global_function(
                graph, function, inputs, method="randomized", seed=seed
            )
            correct = correct and result.value == expected
            rounds.append(result.total_rounds)
            messages.append(result.metrics.point_to_point_messages)
            slots_per_root.append(result.global_slots / max(1, result.num_fragments))
        time_bound = global_rand_time_bound(graph.num_nodes())
        message_bound = rand_partition_message_bound(graph.num_nodes(), graph.num_edges())
        table.add_row(
            graph.num_nodes(),
            mean(rounds),
            round(time_bound, 1),
            mean(rounds) / time_bound,
            mean(messages),
            mean(messages) / message_bound,
            mean(slots_per_root),
            correct,
        )
    return table


if __name__ == "__main__":
    print(run().render())
