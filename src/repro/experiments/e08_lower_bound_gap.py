"""E8 — the multimedia lower bound and the upper/lower gap (Section 5.2).

Claims reproduced: on ray graphs of diameter d the computation of a global
sensitive function needs Ω(min{d, √n}) time in a multimedia network
(Claim 4's adversary keeps the function sensitive for min{d, √n}/4 steps),
while the paper's randomized algorithm achieves O(√n log* n) — leaving only a
log* n-factor gap (plus constants).  The table reports, for ray graphs of
increasing diameter, the adversary horizon, the analytic bounds and the
measured multimedia time, confirming measured ≥ lower bound and
measured = Õ(upper bound).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.analysis.complexity import global_rand_time_bound
from repro.analysis.reporting import Table
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.core.lower_bounds import claim4_sensitivity_trace, multimedia_lower_bound
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import ABORTED, ADVERSITY_KINDS, adversity_state
from repro.sim.errors import AdversityAbort
from repro.topology.generators import ray_graph
from repro.topology.properties import diameter
from repro.topology.weights import assign_distinct_weights

DEFAULT_PARAMS = ((8, 8), (16, 8), (16, 16), (32, 16))
"""(num_rays, ray_length) pairs — n = rays·length + 1, d = 2·length."""


def _ray_points(params: Mapping[str, object]) -> List[Dict[str, object]]:
    """One sweep point per (num_rays, ray_length) pair."""
    shared = {
        key: value for key, value in params.items() if key not in ("params",)
    }
    return [
        dict(shared, num_rays=num_rays, ray_length=ray_length)
        for num_rays, ray_length in params["params"]
    ]


@register_experiment(
    id="e8",
    title="E8  Multimedia lower bound on ray graphs "
    "(Ω(min{d,√n}) ≤ measured ≤ O(√n log* n))",
    description="Ω(min{d,√n}) lower bound vs measured time on ray graphs (§5.2)",
    columns=(
        "n", "diameter", "adversary_horizon", "lower_bound",
        "t_multimedia", "upper_bound", "lb ≤ measured", "measured/upper",
    ),
    # the sweep is over ray-graph shapes, not make_topology kinds
    topologies=(),
    adversities=ADVERSITY_KINDS,
    points=_ray_points,
    presets={
        "quick": {"params": ((4, 4), (8, 4))},
        "default": {"params": ((8, 8), (16, 8), (16, 16))},
        "hot": {"params": ((32, 32), (64, 32))},
    },
    bench_extras=(("e8_hot", "hot", {}),),
)
def sweep_point(
    num_rays: int, ray_length: int, adversity: object = None
) -> Dict[str, object]:
    """Run the multimedia algorithm on one ray graph against Claim 4's bound."""
    graph = assign_distinct_weights(ray_graph(num_rays, ray_length), seed=11)
    n = graph.num_nodes()
    d = diameter(graph)
    trace = claim4_sensitivity_trace(n, d)
    inputs = {node: int(node) for node in graph.nodes()}
    state = adversity_state(adversity, "e8", num_rays, ray_length)
    lower = multimedia_lower_bound(n, d)
    upper = global_rand_time_bound(n)
    try:
        result = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5,
            adversity=state,
        )
    except AdversityAbort:
        return {
            "n": n,
            "diameter": d,
            "adversary_horizon": trace.horizon,
            "lower_bound": lower,
            "t_multimedia": ABORTED,
            "upper_bound": round(upper, 1),
            "lb ≤ measured": "-",
            "measured/upper": "-",
        }
    return {
        "n": n,
        "diameter": d,
        "adversary_horizon": trace.horizon,
        "lower_bound": lower,
        "t_multimedia": result.total_rounds,
        "upper_bound": round(upper, 1),
        "lb ≤ measured": result.total_rounds >= lower,
        "measured/upper": result.total_rounds / upper,
    }


def run(params: Sequence = DEFAULT_PARAMS) -> Table:
    """Run the sweep and return the E8 table (registry-backed)."""
    result = run_experiment(
        "e8", overrides={"params": tuple(tuple(pair) for pair in params)}
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
