"""E8 — the multimedia lower bound and the upper/lower gap (Section 5.2).

Claims reproduced: on ray graphs of diameter d the computation of a global
sensitive function needs Ω(min{d, √n}) time in a multimedia network
(Claim 4's adversary keeps the function sensitive for min{d, √n}/4 steps),
while the paper's randomized algorithm achieves O(√n log* n) — leaving only a
log* n-factor gap (plus constants).  The table reports, for ray graphs of
increasing diameter, the adversary horizon, the analytic bounds and the
measured multimedia time, confirming measured ≥ lower bound and
measured = Õ(upper bound).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.complexity import global_rand_time_bound
from repro.analysis.reporting import Table
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.core.lower_bounds import claim4_sensitivity_trace, multimedia_lower_bound
from repro.topology.generators import ray_graph
from repro.topology.properties import diameter
from repro.topology.weights import assign_distinct_weights

DEFAULT_PARAMS = ((8, 8), (16, 8), (16, 16), (32, 16))
"""(num_rays, ray_length) pairs — n = rays·length + 1, d = 2·length."""


def run(params: Sequence = DEFAULT_PARAMS) -> Table:
    """Run the sweep and return the E8 table."""
    table = Table(
        title="E8  Multimedia lower bound on ray graphs "
        "(Ω(min{d,√n}) ≤ measured ≤ O(√n log* n))",
        columns=[
            "n", "diameter", "adversary_horizon", "lower_bound",
            "t_multimedia", "upper_bound", "lb ≤ measured", "measured/upper",
        ],
    )
    for num_rays, ray_length in params:
        graph = assign_distinct_weights(ray_graph(num_rays, ray_length), seed=11)
        n = graph.num_nodes()
        d = diameter(graph)
        trace = claim4_sensitivity_trace(n, d)
        inputs = {node: int(node) for node in graph.nodes()}
        result = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5
        )
        lower = multimedia_lower_bound(n, d)
        upper = global_rand_time_bound(n)
        table.add_row(
            n,
            d,
            trace.horizon,
            lower,
            result.total_rounds,
            round(upper, 1),
            result.total_rounds >= lower,
            result.total_rounds / upper,
        )
    return table


if __name__ == "__main__":
    print(run().render())
