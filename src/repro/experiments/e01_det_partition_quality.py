"""E1 — deterministic partition quality (Section 3, Claims 1 and 2).

Claim reproduced: the deterministic partitioning algorithm outputs a spanning
forest in which every tree is a subtree of the MST, every tree has at least
√n nodes, the radius of every tree is at most 8√n, and consequently there are
at most √n trees.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.reporting import Table
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.core.partition.validation import validate_partition
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 144, 256, 400, 625)


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "grid") -> Table:
    """Run the sweep and return the E1 table."""
    table = Table(
        title="E1  Deterministic partition quality (bounds: #trees ≤ √n, "
        "min size ≥ √n, radius ≤ 8√n, trees ⊆ MST)",
        columns=[
            "n", "m", "sqrt_n", "fragments", "min_size", "max_radius",
            "radius/sqrt_n", "subtrees_of_MST", "all_bounds_hold",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        result = DeterministicPartitioner(graph).run()
        sqrt_n = math.sqrt(graph.num_nodes())
        report = validate_partition(
            result.forest,
            graph,
            check_mst_subtrees=True,
            min_size_bound=sqrt_n,
            max_radius_bound=8 * sqrt_n,
            max_fragments_bound=sqrt_n,
        )
        table.add_row(
            report.n,
            graph.num_edges(),
            round(sqrt_n, 1),
            report.num_fragments,
            report.min_size,
            report.max_radius,
            report.radius_ratio,
            bool(report.subtrees_of_mst),
            report.ok,
        )
    return table


if __name__ == "__main__":
    print(run().render())
