"""E1 — deterministic partition quality (Section 3, Claims 1 and 2).

Claim reproduced: the deterministic partitioning algorithm outputs a spanning
forest in which every tree is a subtree of the MST, every tree has at least
√n nodes, the radius of every tree is at most 8√n, and consequently there are
at most √n trees.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.analysis.reporting import Table
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.core.partition.validation import validate_partition
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment

DEFAULT_SIZES = (64, 144, 256, 400, 625)


@register_experiment(
    id="e1",
    title="E1  Deterministic partition quality (bounds: #trees ≤ √n, "
    "min size ≥ √n, radius ≤ 8√n, trees ⊆ MST)",
    description="deterministic partition quality bounds (Section 3, Claims 1–2)",
    columns=(
        "n", "m", "sqrt_n", "fragments", "min_size", "max_radius",
        "radius/sqrt_n", "subtrees_of_MST", "all_bounds_hold",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    presets={
        "quick": {"sizes": (16, 36), "topology": "grid"},
        "default": {"sizes": (64, 144, 256), "topology": "grid"},
        "hot": {"sizes": (4096, 16384), "topology": "grid"},
    },
    bench_extras=(("e1_hot", "hot", {}),),
)
def sweep_point(n: int, topology: str = "grid") -> Dict[str, object]:
    """Partition one topology and validate every Section 3 bound."""
    graph = make_topology(topology, n, seed=11)
    result = DeterministicPartitioner(graph).run()
    sqrt_n = math.sqrt(graph.num_nodes())
    report = validate_partition(
        result.forest,
        graph,
        check_mst_subtrees=True,
        min_size_bound=sqrt_n,
        max_radius_bound=8 * sqrt_n,
        max_fragments_bound=sqrt_n,
    )
    return {
        "n": report.n,
        "m": graph.num_edges(),
        "sqrt_n": round(sqrt_n, 1),
        "fragments": report.num_fragments,
        "min_size": report.min_size,
        "max_radius": report.max_radius,
        "radius/sqrt_n": report.radius_ratio,
        "subtrees_of_MST": bool(report.subtrees_of_mst),
        "all_bounds_hold": report.ok,
    }


def run(sizes: Sequence[int] = DEFAULT_SIZES, topology: str = "grid") -> Table:
    """Run the sweep and return the E1 table (registry-backed)."""
    result = run_experiment(
        "e1", overrides={"sizes": tuple(sizes), "topology": topology}
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
