"""Experiment harness: one module per quantitative claim of the paper.

The paper is a theory paper without measured tables, so its "evaluation" is
the set of complexity claims and model-separation results listed in
DESIGN.md §4.  Each ``eNN_*`` module reproduces one of them: it sweeps the
instance sizes, runs the relevant algorithms on the simulator, and returns a
:class:`repro.analysis.reporting.Table` whose rows are recorded in
EXPERIMENTS.md.  The ``benchmarks/`` directory contains one pytest-benchmark
target per experiment that calls the corresponding ``run`` function.
"""

from repro.experiments.harness import ExperimentConfig, sweep_sizes

__all__ = ["ExperimentConfig", "sweep_sizes"]
