"""Experiment harness: one registered spec per quantitative claim of the paper.

The paper is a theory paper without measured tables, so its "evaluation" is
the set of complexity claims and model-separation results listed in
DESIGN.md §4.  Each ``eNN_*`` module reproduces one of them by declaring an
:class:`~repro.experiments.registry.ExperimentSpec`: the parameter presets
(``quick``/``default``/``hot``), the supported topology kinds, the row
schema, and a per-point sweep function returning structured row
dictionaries.  The unified runner (:mod:`repro.experiments.runner`) executes
any spec at any preset through a pluggable execution backend
(:mod:`repro.experiments.executors` — serial, process-pool, or
sharded/checkpointed with resume) and its results render to the historical
plain-text tables recorded in EXPERIMENTS.md and serialize to JSON.
``python -m repro`` (see :mod:`repro.cli`) is the command-line entry point;
the benchmark trajectory (:mod:`repro.experiments.trajectory`) and the
pytest benches under ``benchmarks/`` drive the same registry.
"""

from repro.experiments.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
)
from repro.experiments.harness import ExperimentConfig, make_topology, sweep_sizes
from repro.experiments.registry import (
    ExperimentSpec,
    all_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "Executor",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSpec",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardedExecutor",
    "all_experiments",
    "get_experiment",
    "make_executor",
    "make_topology",
    "register_experiment",
    "run_experiment",
    "sweep_sizes",
]
