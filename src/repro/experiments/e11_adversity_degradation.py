"""E11 — graceful degradation of the multimedia advantage under adversity.

The paper's separation results (Theorem 2, Corollary 3) are proved for
fault-free networks.  This experiment measures how the multimedia-vs-
point-to-point gap erodes as deterministic fault schedules intensify: for
each fault kind (crash windows, message loss, channel jamming, link churn)
and each intensity, both media run the global-sum computation against
independently-seeded instances of the same schedule, and the table reports
the measured gap next to the number of faults injected and the node-rounds
lost to crash recovery.

The qualitative claims the table supports:

* message **loss** hurts both media alike (the aggregation stalls on a lost
  convergecast message regardless of the medium), so at high loss both
  columns abort;
* **jamming** touches only the channel stage, so it slows the multimedia
  algorithm while leaving the point-to-point baseline untouched — the
  multimedia advantage measurably shrinks as ``jam_rate`` grows;
* **crash** windows cost whole recovery periods on both media, visible in
  the ``rounds_lost`` column;
* runs that cannot terminate are cut off by the adversity round budget and
  report a bounded ``abort`` status — never a hang.

Unlike e5–e10, this sweep owns its fault grid (``kinds`` × ``intensities``
are sweep parameters), so it declares no ``adversities`` axis.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.analysis.reporting import Table
from repro.core.global_function.baselines import compute_on_point_to_point_only
from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import ABORTED, adversity_state
from repro.sim.errors import AdversityAbort

DEFAULT_SIZES = (64, 144)
DEFAULT_KINDS = ("crash", "loss", "jam", "churn")
DEFAULT_INTENSITIES = (0.05, 0.2)

#: how one scalar intensity maps onto each kind's rate field; the window
#: geometry (crash/churn lengths and periods) comes from the named preset
_KIND_FIELDS = {
    "crash": "crash_rate",
    "loss": "loss_rate",
    "jam": "jam_rate",
    "churn": "churn_rate",
}


def _schedule(kind: str, intensity: float) -> Dict[str, object]:
    """Return the adversity mapping for one (kind, intensity) grid cell."""
    try:
        field = _KIND_FIELDS[kind]
    except KeyError:
        known = ", ".join(sorted(_KIND_FIELDS))
        raise ValueError(
            f"e11 does not sweep adversity kind {kind!r} (known: {known})"
        ) from None
    schedule: Dict[str, object] = {"name": kind, field: intensity}
    if kind == "loss":
        # the loss preset also delays; scale both from the one intensity
        schedule["delay_rate"] = intensity
    return schedule


def _grid_points(params: Mapping[str, object]) -> List[Dict[str, object]]:
    """One sweep point per (n, kind, intensity) grid cell."""
    shared = {
        key: value
        for key, value in params.items()
        if key not in ("sizes", "kinds", "intensities")
    }
    return [
        dict(shared, n=n, kind=kind, intensity=intensity)
        for n in params["sizes"]
        for kind in params["kinds"]
        for intensity in params["intensities"]
    ]


@register_experiment(
    id="e11",
    title="E11  Degradation of the multimedia advantage under deterministic "
    "adversity (crash / loss / jam / churn vs fault intensity)",
    description="multimedia-vs-p2p gap vs fault kind and intensity (robustness)",
    columns=(
        "n", "adversity", "intensity", "t_multimedia", "t_p2p_only",
        "mm_vs_p2p", "faults_injected", "rounds_lost", "status",
    ),
    topologies=("ring", "grid", "geometric", "scale_free", "ad_hoc"),
    points=_grid_points,
    presets={
        "quick": {
            "sizes": (16,), "kinds": ("loss", "jam"),
            "intensities": (0.1,), "topology": "ring",
        },
        "default": {
            "sizes": DEFAULT_SIZES, "kinds": DEFAULT_KINDS,
            "intensities": DEFAULT_INTENSITIES, "topology": "ring",
        },
        "hot": {
            "sizes": (1024,), "kinds": ("loss", "jam"),
            "intensities": (0.1,), "topology": "ring",
        },
    },
    bench_extras=(("e11_hot", "hot", {}),),
)
def sweep_point(
    n: int, kind: str, intensity: float, topology: str = "ring"
) -> Dict[str, object]:
    """Race both media against one fault schedule and report the gap.

    Each medium gets an independently-seeded :class:`AdversityState` for the
    same schedule, so the adversary is equally unkind to both without the
    two runs sharing random draws.  A medium whose run aborts (round budget,
    stall, or deadlock) contributes an ``"abort"`` cell; the ``status``
    column records which side(s) survived.
    """
    graph = make_topology(topology, n, seed=11)
    inputs = {node: int(node) for node in graph.nodes()}
    schedule = _schedule(kind, intensity)
    mm_state = adversity_state(
        schedule, "e11", n, topology, kind, intensity, "multimedia"
    )
    p2p_state = adversity_state(
        schedule, "e11", n, topology, kind, intensity, "p2p"
    )
    try:
        multimedia = compute_global_function(
            graph, INTEGER_ADDITION, inputs, method="randomized", seed=5,
            adversity=mm_state,
        )
    except AdversityAbort:
        multimedia = None
    try:
        p2p = compute_on_point_to_point_only(
            graph, INTEGER_ADDITION, inputs, seed=5, adversity=p2p_state
        )
    except AdversityAbort:
        p2p = None
    faults = rounds_lost = 0
    for state in (mm_state, p2p_state):
        if state is not None:
            faults += state.faults_injected
            rounds_lost += state.crash_node_rounds
    if multimedia and p2p:
        status = "ok"
    elif multimedia:
        status = "abort:p2p"
    elif p2p:
        status = "abort:multimedia"
    else:
        status = "abort:both"
    return {
        "n": graph.num_nodes(),
        "adversity": kind,
        "intensity": intensity,
        "t_multimedia": multimedia.total_rounds if multimedia else ABORTED,
        "t_p2p_only": p2p.rounds if p2p else ABORTED,
        "mm_vs_p2p": (
            p2p.rounds / multimedia.total_rounds if multimedia and p2p else "-"
        ),
        "faults_injected": faults,
        "rounds_lost": rounds_lost,
        "status": status,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    kinds: Sequence[str] = DEFAULT_KINDS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    topology: str = "ring",
) -> Table:
    """Run the sweep and return the E11 table (registry-backed)."""
    result = run_experiment(
        "e11",
        overrides={
            "sizes": tuple(sizes),
            "kinds": tuple(kinds),
            "intensities": tuple(intensities),
            "topology": topology,
        },
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
