"""E4 — randomized partition complexity and the Las-Vegas variant (Section 4).

Claims reproduced: the randomized partitioning algorithm runs in
O(√n log* n) time and sends O(m + n log* n) messages; the Las-Vegas wrapper
verifies the forest with probability well above 1/2, so restarts are rare and
the expected cost matches the Monte-Carlo cost.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.complexity import (
    rand_partition_message_bound,
    rand_partition_time_bound,
)
from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.partition.randomized import RandomizedPartitioner
from repro.experiments.harness import make_topology
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment

DEFAULT_SIZES = (64, 144, 256, 400)
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


@register_experiment(
    id="e4",
    title="E4  Randomized partition complexity "
    "(bounds: time O(√n log* n), messages O(m + n log* n); Las-Vegas restarts rare)",
    description="randomized partition complexity + Las-Vegas restarts (Section 4)",
    columns=(
        "n", "m", "mean_rounds", "time_bound", "rounds/bound",
        "mean_messages", "message_bound", "messages/bound", "total_restarts",
    ),
    topologies=("grid", "ring", "geometric", "scale_free", "ad_hoc"),
    presets={
        "quick": {"sizes": (16, 36), "seeds": (1,), "topology": "grid"},
        "default": {"sizes": (64, 144, 256), "seeds": (1, 2, 3), "topology": "grid"},
        "hot": {"sizes": (1024, 4096, 16384), "seeds": (1, 2), "topology": "grid"},
        # single-instance scale probe past n = 10^5 (PR 5's partition-loop
        # round 2); one seed keeps the Las-Vegas run within the 10 s budget
        "xhot": {"sizes": (102400,), "seeds": (1,), "topology": "grid"},
        # single instance at n = 10^6 (PR 8's CSR graph core); ~75 s/run —
        # bench-only, never part of the CI smoke suite
        "xxhot": {"sizes": (1000000,), "seeds": (1,), "topology": "grid"},
    },
    bench_extras=(
        ("e4_hot", "hot", {}),
        ("e4_xhot", "xhot", {}),
        ("e4_xxhot", "xxhot", {}),
    ),
)
def sweep_point(
    n: int, seeds: Sequence[int] = DEFAULT_SEEDS, topology: str = "grid"
) -> Dict[str, object]:
    """Run the Las-Vegas partitioner across seeds and compare to the bounds."""
    graph = make_topology(topology, n, seed=11)
    rounds, messages, restarts = [], [], 0
    for seed in seeds:
        result = RandomizedPartitioner(graph, seed=seed, las_vegas=True).run()
        rounds.append(result.metrics.rounds)
        messages.append(result.metrics.point_to_point_messages)
        restarts += result.restarts
    time_bound = rand_partition_time_bound(graph.num_nodes())
    message_bound = rand_partition_message_bound(graph.num_nodes(), graph.num_edges())
    return {
        "n": graph.num_nodes(),
        "m": graph.num_edges(),
        "mean_rounds": mean(rounds),
        "time_bound": round(time_bound, 1),
        "rounds/bound": mean(rounds) / time_bound,
        "mean_messages": mean(messages),
        "message_bound": round(message_bound, 1),
        "messages/bound": mean(messages) / message_bound,
        "total_restarts": restarts,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E4 table (registry-backed)."""
    result = run_experiment(
        "e4",
        overrides={"sizes": tuple(sizes), "seeds": tuple(seeds), "topology": topology},
    )
    return result.to_table()


if __name__ == "__main__":
    print(run().render())
