"""E4 — randomized partition complexity and the Las-Vegas variant (Section 4).

Claims reproduced: the randomized partitioning algorithm runs in
O(√n log* n) time and sends O(m + n log* n) messages; the Las-Vegas wrapper
verifies the forest with probability well above 1/2, so restarts are rare and
the expected cost matches the Monte-Carlo cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.complexity import (
    rand_partition_message_bound,
    rand_partition_time_bound,
)
from repro.analysis.reporting import Table
from repro.analysis.statistics import mean
from repro.core.partition.randomized import RandomizedPartitioner
from repro.experiments.harness import make_topology

DEFAULT_SIZES = (64, 144, 256, 400)
DEFAULT_SEEDS = (1, 2, 3, 4, 5)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    topology: str = "grid",
) -> Table:
    """Run the sweep and return the E4 table."""
    table = Table(
        title="E4  Randomized partition complexity "
        "(bounds: time O(√n log* n), messages O(m + n log* n); Las-Vegas restarts rare)",
        columns=[
            "n", "m", "mean_rounds", "time_bound", "rounds/bound",
            "mean_messages", "message_bound", "messages/bound", "total_restarts",
        ],
    )
    for n in sizes:
        graph = make_topology(topology, n, seed=11)
        rounds, messages, restarts = [], [], 0
        for seed in seeds:
            result = RandomizedPartitioner(graph, seed=seed, las_vegas=True).run()
            rounds.append(result.metrics.rounds)
            messages.append(result.metrics.point_to_point_messages)
            restarts += result.restarts
        time_bound = rand_partition_time_bound(graph.num_nodes())
        message_bound = rand_partition_message_bound(graph.num_nodes(), graph.num_edges())
        table.add_row(
            graph.num_nodes(),
            graph.num_edges(),
            mean(rounds),
            round(time_bound, 1),
            mean(rounds) / time_bound,
            mean(messages),
            round(message_bound, 1),
            mean(messages) / message_bound,
            restarts,
        )
    return table


if __name__ == "__main__":
    print(run().render())
