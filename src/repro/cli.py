"""The ``repro`` command line: list, run, and benchmark the experiments.

Everything goes through the declarative registry
(:mod:`repro.experiments.registry`) and the unified runner
(:mod:`repro.experiments.runner`), so the CLI exposes exactly the sweeps the
pytest benches and the benchmark trajectory execute::

    python -m repro list
    python -m repro run e7 --topology ad_hoc --preset hot --json out.json
    python -m repro run e3 --sizes 64 144 --seeds 1 2 -j 4
    python -m repro run e7 --executor sharded --preset hot --run-dir runs/e7
    python -m repro run e7 --shard 2/8 --run-dir runs/e7   # farm out one shard
    python -m repro run e7 --resume --run-dir runs/e7      # finish what's left
    python -m repro run e7 --workers 4                     # coordinator + workers
    python -m repro worker --connect 127.0.0.1:8036        # join a coordinator
    python -m repro serve --port 8035                      # read-side JSON API
    python -m repro bench --quick
    python -m repro docs --check

Installed as a ``repro`` console script by ``setup.py``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.executors import (
    EXECUTOR_NAMES,
    ExecutorConfigError,
    make_executor,
    parse_shard,
)
from repro.experiments.registry import DEFAULT_PRESET, all_experiments, get_experiment
from repro.experiments.runner import run_experiment


def _build_parser() -> argparse.ArgumentParser:
    """Build the top-level ``repro`` argument parser and its subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction driver for the multimedia-network experiments "
        "(Afek, Landau, Schieber, Yung 1988).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list the registered experiments and their presets"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit the registry as JSON"
    )

    run_parser = sub.add_parser(
        "run", help="run one experiment sweep and print its table"
    )
    run_parser.add_argument("experiment", help="experiment id (e1 … e11)")
    run_parser.add_argument(
        "--preset", default=DEFAULT_PRESET,
        help="parameter preset: quick, default, or hot (default: default)",
    )
    run_parser.add_argument(
        "--topology", default=None, help="topology kind override (e.g. ad_hoc)"
    )
    run_parser.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="instance sizes override"
    )
    run_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, help="algorithm seeds override"
    )
    run_parser.add_argument(
        "--adversity", default=None, metavar="NAME",
        help="adversity schedule preset (crash, loss, jam, churn); refine "
        "individual fields with --set adversity.FIELD=VALUE "
        "(e.g. --adversity loss --set adversity.loss_rate=0.2)",
    )
    run_parser.add_argument(
        "--set", dest="assignments", action="append", default=[],
        metavar="KEY=VALUE",
        help="extra parameter override; VALUE is parsed as a Python literal "
        "(e.g. --set channel_baseline=False); dotted adversity.FIELD keys "
        "build the adversity schedule",
    )
    run_parser.add_argument(
        "--processes", "-j", type=int, default=0,
        help="run sweep points in a process pool of this many workers "
        "(rows are bit-identical to a serial run)",
    )
    run_parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="execution backend: serial, process (-j pool), sharded "
        "(deterministic checkpointed shards under --run-dir; defaults to "
        "sharded when any sharded option below is given), or distributed "
        "(a coordinator leasing shards to worker processes; implied by "
        "--workers)",
    )
    run_parser.add_argument(
        "--shard", type=str, default=None, metavar="K/N",
        help="execute only shard K of N (1-based) of a sharded run; "
        "shards striped over a shared --run-dir merge into one result",
    )
    run_parser.add_argument(
        "--resume", action="store_true",
        help="reuse completed shard checkpoints in the run directory and "
        "compute only what is missing",
    )
    run_parser.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="shard checkpoint directory (default: .repro_runs/<id>-<preset>-"
        "<digest> at the repository root)",
    )
    run_parser.add_argument(
        "--max-shards", type=int, default=0, metavar="M",
        help="compute at most M shards this invocation and leave the rest "
        "pending (resume later with --resume)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="distributed backend: spawn W local worker processes and lease "
        "shards to them (remote workers join with `repro worker`)",
    )
    run_parser.add_argument(
        "--lease-timeout", type=float, default=0.0, metavar="SECONDS",
        help="distributed backend: seconds a shard lease survives without a "
        "heartbeat before it is reassigned (default: 30)",
    )
    run_parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the structured result (rows + params) to this JSON file",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress the rendered table"
    )

    worker_parser = sub.add_parser(
        "worker",
        help="join a distributed coordinator and compute leased shards",
    )
    worker_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's address (printed by `repro run --workers` "
        "with --executor distributed, or your farm tooling)",
    )
    worker_parser.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity in coordinator logs (default: host/pid based)",
    )
    worker_parser.add_argument(
        "--max-attempts", type=int, default=8, metavar="N",
        help="reconnect attempts (with exponential backoff) before giving up",
    )

    # `bench` and `serve` are dispatched before this parser runs
    # (argparse.REMAINDER cannot forward leading --options); the subparsers
    # exist so the commands show up in `repro --help`.
    sub.add_parser(
        "bench",
        help="time the benchmark suite and merge into BENCH_core.json "
        "(see `repro bench --help`)",
    )
    sub.add_parser(
        "serve",
        help="serve the experiment/run/benchmark corpus as a JSON API "
        "(see `repro serve --help`)",
    )

    docs_parser = sub.add_parser(
        "docs",
        help="regenerate docs/experiments.md from the experiment registry",
    )
    docs_parser.add_argument(
        "--output-dir", type=Path, default=None, metavar="DIR",
        help="directory to write the generated files into "
        "(default: docs/ at the repository root)",
    )
    docs_parser.add_argument(
        "--check", action="store_true",
        help="write nothing; exit 1 when any generated file is stale "
        "(the CI docs-freshness job)",
    )
    return parser


def _parse_assignment(text: str) -> tuple:
    """Split one ``KEY=VALUE`` override; the value parses as a Python literal.

    Raises:
        ValueError: when the text carries no ``=`` or no key.
    """
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise ValueError(f"expected KEY=VALUE, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _overrides_from(args: argparse.Namespace) -> Dict[str, Any]:
    """Collect the ``run`` subcommand's parameter overrides from its flags.

    ``--adversity NAME`` and dotted ``--set adversity.FIELD=VALUE``
    assignments merge into one ``adversity`` override mapping (the flag
    supplies the base preset name, the dotted keys refine fields on top of
    it); validation of the merged schedule happens in
    :meth:`~repro.experiments.registry.ExperimentSpec.params_for`.

    Raises:
        ValueError: on a malformed assignment (no ``=``, empty key, or an
            empty adversity field name).
    """
    overrides: Dict[str, Any] = {}
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.sizes is not None:
        overrides["sizes"] = tuple(args.sizes)
    if args.seeds is not None:
        overrides["seeds"] = tuple(args.seeds)
    adversity_fields: Dict[str, Any] = {}
    for assignment in args.assignments:
        key, value = _parse_assignment(assignment)
        if key.startswith("adversity."):
            field = key[len("adversity."):]
            if not field:
                raise ValueError(
                    f"expected adversity.FIELD=VALUE, got {assignment!r}"
                )
            adversity_fields[field] = value
        else:
            overrides[key] = value
    if args.adversity is not None:
        adversity_fields.setdefault("name", args.adversity)
    if adversity_fields:
        base = overrides.get("adversity")
        if isinstance(base, str):
            # --set adversity=loss supplies the base preset for dotted keys
            adversity_fields.setdefault("name", base)
        overrides["adversity"] = adversity_fields
    return overrides


def _command_list(args: argparse.Namespace) -> int:
    """``repro list``: print every registered spec (optionally as JSON)."""
    specs = all_experiments()
    if args.json:
        payload = [
            {
                "id": spec.id,
                "description": spec.description,
                "columns": list(spec.columns),
                "topologies": list(spec.topologies),
                "adversities": list(spec.adversities),
                "presets": {name: dict(params) for name, params in spec.presets.items()},
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    from repro.experiments.catalog import preset_names

    for spec in specs:
        print(f"{spec.id:>4}  {spec.description}")
        for name in preset_names(spec):
            params = spec.presets[name]
            summary = ", ".join(f"{key}={value}" for key, value in params.items())
            print(f"      {name:<8} {summary}")
        if spec.topologies:
            print(f"      topologies: {', '.join(spec.topologies)}")
        if spec.adversities:
            print(f"      adversities: {', '.join(spec.adversities)}")
    return 0


def _command_docs(args: argparse.Namespace) -> int:
    """``repro docs``: (re)generate the registry-derived documentation.

    With ``--check`` nothing is written; the exit status reports whether the
    committed files match what the registry would generate now.
    """
    from repro.experiments.catalog import default_docs_dir, stale_docs, write_docs

    docs_dir = args.output_dir if args.output_dir is not None else default_docs_dir()
    if args.check:
        stale = stale_docs(docs_dir)
        if stale:
            for path in stale:
                print(f"stale: {path} (regenerate with `python -m repro docs`)",
                      file=sys.stderr)
            return 1
        print(f"docs under {docs_dir} are up to date")
        return 0
    for path in write_docs(docs_dir):
        print(f"wrote {path}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    """``repro run``: execute one sweep, print its table, optionally dump JSON."""
    # validate the user's inputs up front so a bad id/preset/override exits
    # cleanly with a usage error, while a genuine failure *inside* a sweep
    # keeps its traceback instead of masquerading as operator error
    try:
        overrides = _overrides_from(args)
        spec = get_experiment(args.experiment)
        spec.params_for(args.preset, overrides)
        shard = parse_shard(args.shard) if args.shard is not None else None
        executor_name = args.executor
        if executor_name is None and (args.workers or args.lease_timeout):
            executor_name = "distributed"
        if executor_name is None and (
            shard is not None or args.resume or args.run_dir is not None
            or args.max_shards
        ):
            executor_name = "sharded"
        backend = (
            make_executor(
                executor_name,
                processes=args.processes,
                shard=shard,
                resume=args.resume,
                run_dir=args.run_dir,
                max_shards=args.max_shards,
                workers=args.workers,
                lease_timeout=args.lease_timeout,
            )
            if executor_name is not None
            else None
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    try:
        # when a backend was built above it already carries the worker
        # count; forwarding processes too would trip the instance guard
        result = run_experiment(
            spec,
            preset=args.preset,
            overrides=overrides,
            processes=args.processes if backend is None else 0,
            executor=backend,
        )
    except ExecutorConfigError as error:
        # execution-time operator errors (foreign run directory, shard index
        # outside the layout) render as usage errors; genuine failures
        # inside a sweep keep their tracebacks
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(result.to_table().render())
    if result.pending_points:
        print(
            f"partial: {result.pending_points} sweep point(s) pending — "
            "re-run with --resume to finish",
            file=sys.stderr,
        )
    if args.json is not None:
        args.json.write_text(result.to_json())
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    """``repro worker``: serve a distributed coordinator until its sweep ends."""
    from repro.experiments.distributed import (
        DistributedProtocolError,
        run_worker,
    )

    host, sep, port_text = args.connect.rpartition(":")
    try:
        if not sep or not host:
            raise ValueError("no colon")
        port = int(port_text)
    except ValueError:
        print(f"error: expected HOST:PORT, got {args.connect!r}", file=sys.stderr)
        return 2
    try:
        computed = run_worker(
            host, port, worker_id=args.id, max_attempts=args.max_attempts
        )
    except DistributedProtocolError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"sweep complete: this worker computed {computed} shard(s)",
          file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["bench"]:
        # delegate to the trajectory CLI, which owns the bench options
        from repro.experiments.trajectory import main as bench_main

        return bench_main(argv[1:])
    if argv[:1] == ["serve"]:
        # delegate to the serve CLI, which owns the service options
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list(args)
    if args.command == "docs":
        return _command_docs(args)
    if args.command == "worker":
        return _command_worker(args)
    return _command_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
