"""Complexity reference curves, summary statistics and report formatting."""

from repro.analysis.complexity import (
    det_partition_message_bound,
    det_partition_time_bound,
    log_star,
    ln_star,
    mst_time_bound,
    rand_partition_message_bound,
    rand_partition_time_bound,
    ratio_to_bound,
)
from repro.analysis.statistics import mean, population_std, summarize
from repro.analysis.reporting import Table, format_table

__all__ = [
    "det_partition_message_bound",
    "det_partition_time_bound",
    "log_star",
    "ln_star",
    "mst_time_bound",
    "rand_partition_message_bound",
    "rand_partition_time_bound",
    "ratio_to_bound",
    "mean",
    "population_std",
    "summarize",
    "Table",
    "format_table",
]
