"""Plain-text table formatting for the experiment reports.

Every experiment prints its results in the same tabular shape that
EXPERIMENTS.md records, so re-running a benchmark reproduces the documented
rows verbatim (up to randomness noted per experiment).  The experiment
sweeps themselves produce structured row dictionaries (see
:mod:`repro.experiments.runner`); :func:`table_from_records` lays those out
as a :class:`Table` in the declared column order, and
:meth:`Table.render`/:func:`format_table` produce the final aligned text.

The rendering is deliberately dumb and stable — title line, dashed rule,
headers, dashed rule, rows; floats formatted to two decimals, everything
else through ``str`` — because the golden-equivalence story depends on it:
two runs that compute identical rows must print byte-identical tables, and
several tests diff rendered tables directly.  Anything smarter (locale
awareness, unit scaling, column elision) belongs in a consumer, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence


@dataclass
class Table:
    """A simple column-aligned table.

    Attributes:
        title: printed above the table.
        columns: column headers; every row must supply exactly one cell per
            header, in the same order.
        rows: one list of cell values per row (floats render to two
            decimals, everything else through ``str``).
    """

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row.

        Raises:
            ValueError: if the number of cells does not match the headers.
        """
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Return the table as aligned plain text."""
        return format_table(self.title, self.columns, self.rows)


def table_from_records(
    title: str,
    columns: Sequence[str],
    records: Sequence[Mapping[str, object]],
) -> Table:
    """Build a :class:`Table` from row dictionaries keyed by ``columns``.

    This is how :meth:`~repro.experiments.runner.ExperimentResult.to_table`
    turns structured sweep rows back into the historical table: the record
    keys may hold extra entries, but every declared column must be present,
    and the column order — not the record order — decides the layout.

    Args:
        title: printed above the table.
        columns: the declared column order.
        records: one mapping per row, keyed by (at least) ``columns``.

    Raises:
        KeyError: when a record lacks one of the declared columns.
    """
    table = Table(title=title, columns=list(columns))
    for record in records:
        table.add_row(*(record[column] for column in columns))
    return table


def _format_cell(value: object) -> str:
    """Render one cell: floats to two decimals, everything else via ``str``."""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render ``rows`` under ``columns`` with a title line and a rule.

    Column widths grow to the widest formatted cell (headers included);
    cells are left-justified and joined with two spaces.
    """
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)
