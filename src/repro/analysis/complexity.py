"""The paper's complexity bound formulas, used as reference curves.

Each function evaluates one of the paper's asymptotic claims at a concrete
instance size — e.g. :func:`det_partition_time_bound` is the Section 3
``O(√n log* n)`` running-time bound — dropping the hidden constant (every
bound is reported with an implicit constant of 1).  The experiment sweeps
divide their *measured* round and message counts by these curves and report
the ratio as a table column (``rounds/bound``, ``messages/bound``): a claim
"the algorithm runs in O(f(n))" is reproduced when the ratios stay within a
constant band as ``n`` grows — they may oscillate, but must not trend
upward.  :func:`ratio_to_bound` computes those ratio sequences.

The iterated-logarithm helpers come from the modules that own them
(:func:`~repro.protocols.symmetry.cole_vishkin.log_star` for base-2,
:func:`~repro.core.partition.randomized.ln_star` for base-e) and are
re-exported here so analysis code has one import surface.

All bounds guard their domains: sub-logarithmic expressions are clamped at
small ``n`` (where ``log log n`` would vanish or go negative) so sweeps that
include tiny smoke sizes never divide by zero.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

from repro.protocols.symmetry.cole_vishkin import log_star
from repro.core.partition.randomized import ln_star

__all__ = [
    "log_star",
    "ln_star",
    "det_partition_time_bound",
    "det_partition_message_bound",
    "rand_partition_time_bound",
    "rand_partition_message_bound",
    "global_det_time_bound",
    "global_rand_time_bound",
    "mst_time_bound",
    "mst_message_bound",
    "ratio_to_bound",
    "PowerLawFit",
    "fit_power_law",
]


def det_partition_time_bound(n: int) -> float:
    """O(√n · log* n) — deterministic partition running time (Section 3).

    Args:
        n: number of network nodes.

    Raises:
        ValueError: when ``n`` is not positive.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return math.sqrt(n) * max(1, log_star(max(2, n)))


def det_partition_message_bound(n: int, m: int) -> float:
    """O(m + n · log n · log* n) — deterministic partition messages (Section 3).

    Args:
        n: number of network nodes.
        m: number of point-to-point links.

    Raises:
        ValueError: when ``n`` is not positive or ``m`` is negative.
    """
    if n < 1 or m < 0:
        raise ValueError("invalid n or m")
    return m + n * max(1.0, math.log2(max(2, n))) * max(1, log_star(max(2, n)))


def rand_partition_time_bound(n: int) -> float:
    """O(√n · log* n) — randomized partition running time (Section 4).

    Identical in form to :func:`det_partition_time_bound`; kept as its own
    name so the e3/e4 tables state which claim they divide by.
    """
    return det_partition_time_bound(n)


def rand_partition_message_bound(n: int, m: int) -> float:
    """O(m + n · log* n) — randomized partition messages (Section 4).

    A ``log n`` factor cheaper than the deterministic bound: a message over
    a link either attaches the link to a BFS tree or removes it forever.

    Args:
        n: number of network nodes.
        m: number of point-to-point links.

    Raises:
        ValueError: when ``n`` is not positive or ``m`` is negative.
    """
    if n < 1 or m < 0:
        raise ValueError("invalid n or m")
    return m + n * max(1, log_star(max(2, n)))


def global_det_time_bound(n: int) -> float:
    """O(√(n log n log* n)) — deterministic global function time (Section 5.1).

    The balanced form: Section 5.1 re-runs the partition to target size
    ``√(n / (log n log* n))`` so the tree and channel stages cost the same.
    Returns 1.0 below ``n = 2`` (smoke sizes) to keep ratios finite.
    """
    if n < 2:
        return 1.0
    return math.sqrt(n * math.log2(n) * max(1, log_star(n)))


def global_rand_time_bound(n: int) -> float:
    """O(√n log* n) — randomized global function expected time (Section 5.1).

    Returns 1.0 below ``n = 2`` (smoke sizes) to keep ratios finite.
    """
    if n < 2:
        return 1.0
    return math.sqrt(n) * max(1, log_star(n))


def mst_time_bound(n: int) -> float:
    """O(√n · log n) — multimedia MST running time (Section 6).

    Returns 1.0 below ``n = 2`` (smoke sizes) to keep ratios finite.
    """
    if n < 2:
        return 1.0
    return math.sqrt(n) * math.log2(n)


def mst_message_bound(n: int, m: int) -> float:
    """O(m + n log n log* n) — multimedia MST messages (Section 6).

    Identical in form to :func:`det_partition_message_bound` (the MST's
    message cost is dominated by its partition stage); kept as its own name
    so the e9 table states which claim it divides by.
    """
    return det_partition_message_bound(n, m)


def ratio_to_bound(measured: Sequence[float], bound: Sequence[float]) -> list:
    """Return the element-wise ratios measured[i] / bound[i].

    A reproduction of an O(f(n)) claim succeeds when these ratios do not grow
    with ``n`` (they may oscillate within a constant band).

    Raises:
        ValueError: if the sequences have different lengths or a bound is zero.
    """
    if len(measured) != len(bound):
        raise ValueError("sequences must have the same length")
    ratios = []
    for value, reference in zip(measured, bound):
        if reference == 0:
            raise ValueError("bound values must be non-zero")
        ratios.append(value / reference)
    return ratios


class PowerLawFit(NamedTuple):
    """A least-squares power law ``value ≈ coefficient · n^exponent``.

    Attributes:
        exponent: the fitted scaling exponent (the slope in log–log space).
        coefficient: the fitted prefactor.
        residual: root-mean-square residual of ``log(value)`` around the
            fit — small residuals mean the data really does follow a power
            law over the fitted range.
    """

    exponent: float
    coefficient: float
    residual: float


def fit_power_law(
    sizes: Sequence[float], values: Sequence[float]
) -> PowerLawFit:
    """Fit ``value ≈ c · n^θ`` by least squares in log–log space.

    The fit the scaling experiments report: a measured quantity (e.g. the
    mean first-passage time of e12) follows a power law when the log–log
    points fall on a line, and the slope of that line *is* the scaling
    exponent the claim is about.  Two data sets sharing sizes but yielding
    distinct exponents (beyond the residuals) scale differently — the
    "distinct scalings, same degree sequence" effect of arXiv:0908.0976.

    Args:
        sizes: instance sizes, all positive, at least two distinct.
        values: measured quantities, parallel to ``sizes``, all positive.

    Raises:
        ValueError: on mismatched lengths, fewer than two points,
            non-positive entries, or all-equal sizes.
    """
    if len(sizes) != len(values):
        raise ValueError("sizes and values must have the same length")
    if len(sizes) < 2:
        raise ValueError("a power-law fit needs at least two points")
    if any(s <= 0 for s in sizes) or any(v <= 0 for v in values):
        raise ValueError("power-law fits need positive sizes and values")
    xs = [math.log(s) for s in sizes]
    ys = [math.log(v) for v in values]
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        raise ValueError("a power-law fit needs at least two distinct sizes")
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / sxx
    intercept = mean_y - slope * mean_x
    residual = math.sqrt(
        sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
        / count
    )
    return PowerLawFit(
        exponent=slope, coefficient=math.exp(intercept), residual=residual
    )
