"""The paper's complexity bound formulas, used as reference curves.

Each function evaluates one of the paper's asymptotic claims at a concrete
instance size — e.g. :func:`det_partition_time_bound` is the Section 3
``O(√n log* n)`` running-time bound — dropping the hidden constant (every
bound is reported with an implicit constant of 1).  The experiment sweeps
divide their *measured* round and message counts by these curves and report
the ratio as a table column (``rounds/bound``, ``messages/bound``): a claim
"the algorithm runs in O(f(n))" is reproduced when the ratios stay within a
constant band as ``n`` grows — they may oscillate, but must not trend
upward.  :func:`ratio_to_bound` computes those ratio sequences.

The iterated-logarithm helpers come from the modules that own them
(:func:`~repro.protocols.symmetry.cole_vishkin.log_star` for base-2,
:func:`~repro.core.partition.randomized.ln_star` for base-e) and are
re-exported here so analysis code has one import surface.

All bounds guard their domains: sub-logarithmic expressions are clamped at
small ``n`` (where ``log log n`` would vanish or go negative) so sweeps that
include tiny smoke sizes never divide by zero.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.protocols.symmetry.cole_vishkin import log_star
from repro.core.partition.randomized import ln_star

__all__ = [
    "log_star",
    "ln_star",
    "det_partition_time_bound",
    "det_partition_message_bound",
    "rand_partition_time_bound",
    "rand_partition_message_bound",
    "global_det_time_bound",
    "global_rand_time_bound",
    "mst_time_bound",
    "mst_message_bound",
    "ratio_to_bound",
]


def det_partition_time_bound(n: int) -> float:
    """O(√n · log* n) — deterministic partition running time (Section 3).

    Args:
        n: number of network nodes.

    Raises:
        ValueError: when ``n`` is not positive.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return math.sqrt(n) * max(1, log_star(max(2, n)))


def det_partition_message_bound(n: int, m: int) -> float:
    """O(m + n · log n · log* n) — deterministic partition messages (Section 3).

    Args:
        n: number of network nodes.
        m: number of point-to-point links.

    Raises:
        ValueError: when ``n`` is not positive or ``m`` is negative.
    """
    if n < 1 or m < 0:
        raise ValueError("invalid n or m")
    return m + n * max(1.0, math.log2(max(2, n))) * max(1, log_star(max(2, n)))


def rand_partition_time_bound(n: int) -> float:
    """O(√n · log* n) — randomized partition running time (Section 4).

    Identical in form to :func:`det_partition_time_bound`; kept as its own
    name so the e3/e4 tables state which claim they divide by.
    """
    return det_partition_time_bound(n)


def rand_partition_message_bound(n: int, m: int) -> float:
    """O(m + n · log* n) — randomized partition messages (Section 4).

    A ``log n`` factor cheaper than the deterministic bound: a message over
    a link either attaches the link to a BFS tree or removes it forever.

    Args:
        n: number of network nodes.
        m: number of point-to-point links.

    Raises:
        ValueError: when ``n`` is not positive or ``m`` is negative.
    """
    if n < 1 or m < 0:
        raise ValueError("invalid n or m")
    return m + n * max(1, log_star(max(2, n)))


def global_det_time_bound(n: int) -> float:
    """O(√(n log n log* n)) — deterministic global function time (Section 5.1).

    The balanced form: Section 5.1 re-runs the partition to target size
    ``√(n / (log n log* n))`` so the tree and channel stages cost the same.
    Returns 1.0 below ``n = 2`` (smoke sizes) to keep ratios finite.
    """
    if n < 2:
        return 1.0
    return math.sqrt(n * math.log2(n) * max(1, log_star(n)))


def global_rand_time_bound(n: int) -> float:
    """O(√n log* n) — randomized global function expected time (Section 5.1).

    Returns 1.0 below ``n = 2`` (smoke sizes) to keep ratios finite.
    """
    if n < 2:
        return 1.0
    return math.sqrt(n) * max(1, log_star(n))


def mst_time_bound(n: int) -> float:
    """O(√n · log n) — multimedia MST running time (Section 6).

    Returns 1.0 below ``n = 2`` (smoke sizes) to keep ratios finite.
    """
    if n < 2:
        return 1.0
    return math.sqrt(n) * math.log2(n)


def mst_message_bound(n: int, m: int) -> float:
    """O(m + n log n log* n) — multimedia MST messages (Section 6).

    Identical in form to :func:`det_partition_message_bound` (the MST's
    message cost is dominated by its partition stage); kept as its own name
    so the e9 table states which claim it divides by.
    """
    return det_partition_message_bound(n, m)


def ratio_to_bound(measured: Sequence[float], bound: Sequence[float]) -> list:
    """Return the element-wise ratios measured[i] / bound[i].

    A reproduction of an O(f(n)) claim succeeds when these ratios do not grow
    with ``n`` (they may oscillate within a constant band).

    Raises:
        ValueError: if the sequences have different lengths or a bound is zero.
    """
    if len(measured) != len(bound):
        raise ValueError("sequences must have the same length")
    ratios = []
    for value, reference in zip(measured, bound):
        if reference == 0:
            raise ValueError("bound values must be non-zero")
        ratios.append(value / reference)
    return ratios
