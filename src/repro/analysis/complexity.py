"""The paper's complexity bound formulas, used as reference curves.

Experiments fit measured round and message counts against these functions; a
claim "the algorithm runs in O(f(n))" is reproduced by showing that the ratio
measured / f(n) stays bounded (and roughly constant) as ``n`` grows.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.protocols.symmetry.cole_vishkin import log_star
from repro.core.partition.randomized import ln_star

__all__ = [
    "log_star",
    "ln_star",
    "det_partition_time_bound",
    "det_partition_message_bound",
    "rand_partition_time_bound",
    "rand_partition_message_bound",
    "global_det_time_bound",
    "global_rand_time_bound",
    "mst_time_bound",
    "mst_message_bound",
    "ratio_to_bound",
]


def det_partition_time_bound(n: int) -> float:
    """O(√n · log* n) — deterministic partition running time (Section 3)."""
    if n < 1:
        raise ValueError("n must be positive")
    return math.sqrt(n) * max(1, log_star(max(2, n)))


def det_partition_message_bound(n: int, m: int) -> float:
    """O(m + n · log n · log* n) — deterministic partition messages (Section 3)."""
    if n < 1 or m < 0:
        raise ValueError("invalid n or m")
    return m + n * max(1.0, math.log2(max(2, n))) * max(1, log_star(max(2, n)))


def rand_partition_time_bound(n: int) -> float:
    """O(√n · log* n) — randomized partition running time (Section 4)."""
    return det_partition_time_bound(n)


def rand_partition_message_bound(n: int, m: int) -> float:
    """O(m + n · log* n) — randomized partition messages (Section 4)."""
    if n < 1 or m < 0:
        raise ValueError("invalid n or m")
    return m + n * max(1, log_star(max(2, n)))


def global_det_time_bound(n: int) -> float:
    """O(√(n log n log* n)) — deterministic global function time (Section 5.1)."""
    if n < 2:
        return 1.0
    return math.sqrt(n * math.log2(n) * max(1, log_star(n)))


def global_rand_time_bound(n: int) -> float:
    """O(√n log* n) — randomized global function expected time (Section 5.1)."""
    if n < 2:
        return 1.0
    return math.sqrt(n) * max(1, log_star(n))


def mst_time_bound(n: int) -> float:
    """O(√n · log n) — multimedia MST running time (Section 6)."""
    if n < 2:
        return 1.0
    return math.sqrt(n) * math.log2(n)


def mst_message_bound(n: int, m: int) -> float:
    """O(m + n log n log* n) — multimedia MST messages (Section 6)."""
    return det_partition_message_bound(n, m)


def ratio_to_bound(measured: Sequence[float], bound: Sequence[float]) -> list:
    """Return the element-wise ratios measured[i] / bound[i].

    A reproduction of an O(f(n)) claim succeeds when these ratios do not grow
    with ``n`` (they may oscillate within a constant band).

    Raises:
        ValueError: if the sequences have different lengths or a bound is zero.
    """
    if len(measured) != len(bound):
        raise ValueError("sequences must have the same length")
    ratios = []
    for value, reference in zip(measured, bound):
        if reference == 0:
            raise ValueError("bound values must be non-zero")
        ratios.append(value / reference)
    return ratios
