"""Small summary-statistics helpers used by the experiment harness.

Kept dependency-free (no numpy) so the core library stays pure-stdlib; the
tests cross-check these against numpy where it is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Return the arithmetic mean.

    Raises:
        ValueError: if ``values`` is empty.
    """
    if not values:
        raise ValueError("cannot average zero values")
    return sum(values) / len(values)


def population_std(values: Sequence[float]) -> float:
    """Return the population standard deviation (zero for a single value)."""
    if not values:
        raise ValueError("cannot take the deviation of zero values")
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of ``values``.

    Raises:
        ValueError: if ``values`` is empty.
    """
    if not values:
        raise ValueError("cannot summarise zero values")
    return Summary(
        count=len(values),
        mean=mean(values),
        std=population_std(values),
        minimum=min(values),
        maximum=max(values),
    )
