"""Small summary-statistics helpers used by the experiment harness.

The randomized experiment sweeps (e3/e4/e6) run each instance across several
seeds and report per-size aggregates; these helpers compute them.  Kept
dependency-free (no numpy) so the core library stays pure-stdlib — a
constraint the repository holds everywhere (see ROADMAP.md) — and the tests
cross-check the results against numpy where it happens to be available.

Every function rejects empty input with :class:`ValueError` rather than
returning a quiet ``nan``: an empty sample reaching an experiment aggregate
means a sweep produced no rows, which should fail loudly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Return the arithmetic mean of ``values``.

    Args:
        values: a non-empty sample.

    Raises:
        ValueError: if ``values`` is empty.
    """
    if not values:
        raise ValueError("cannot average zero values")
    return sum(values) / len(values)


def population_std(values: Sequence[float]) -> float:
    """Return the population standard deviation (zero for a single value).

    The *population* form (divide by ``len(values)``, not ``len - 1``) is
    deliberate: a sweep's seed set is the entire population the table row
    describes, not a sample from a larger one.

    Args:
        values: a non-empty sample.

    Raises:
        ValueError: if ``values`` is empty.
    """
    if not values:
        raise ValueError("cannot take the deviation of zero values")
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes:
        count: number of observations.
        mean: arithmetic mean.
        std: population standard deviation (see :func:`population_std`).
        minimum: smallest observation.
        maximum: largest observation.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of ``values``.

    Args:
        values: a non-empty sample.

    Raises:
        ValueError: if ``values`` is empty.
    """
    if not values:
        raise ValueError("cannot summarise zero values")
    return Summary(
        count=len(values),
        mean=mean(values),
        std=population_std(values),
        minimum=min(values),
        maximum=max(values),
    )
