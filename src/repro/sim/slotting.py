"""Slotted channel from an unslotted channel (Section 7.2).

The paper notes that an unslotted collision channel can be made slotted when
(1) a second channel is available (e.g. via frequency-division multiple
access, FDMA) and (2) an idle period can be detected asynchronously by every
node.  The mechanism mirrors the channel synchronizer: every node that is
active in the current slot transmits a busy tone on the auxiliary channel; an
idle period on the auxiliary channel marks the slot boundary.

This module simulates the mechanism.  Transmissions on the unslotted primary
channel start at arbitrary real-valued times and last one time unit; the
conversion layer groups them into logical slots delimited by auxiliary-channel
idle periods and reports, per logical slot, the same idle/success/collision
outcome a natively slotted channel would have produced for the same writers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.sim.events import ChannelEvent, SlotState

NodeId = Hashable


@dataclass(frozen=True)
class UnslottedTransmission:
    """One transmission attempt on the unslotted primary channel.

    Attributes:
        writer: the transmitting node.
        payload: the broadcast payload.
        start_time: real-valued transmission start; the transmission occupies
            ``[start_time, start_time + 1)``.
    """

    writer: NodeId
    payload: object
    start_time: float


class UnslottedChannel:
    """Collects transmissions with arbitrary start times."""

    def __init__(self) -> None:
        """Create an empty transmission log."""
        self._transmissions: List[UnslottedTransmission] = []

    def transmit(self, writer: NodeId, payload: object, start_time: float) -> None:
        """Record a transmission starting at ``start_time``.

        Raises:
            ValueError: if ``start_time`` is negative.
        """
        if start_time < 0:
            raise ValueError("transmissions cannot start before time zero")
        self._transmissions.append(UnslottedTransmission(writer, payload, start_time))

    @property
    def transmissions(self) -> Tuple[UnslottedTransmission, ...]:
        """Return every recorded transmission."""
        return tuple(self._transmissions)


def slotted_from_unslotted(
    channel: UnslottedChannel,
    guard_time: float = 0.0,
    number_by_time: bool = False,
) -> List[ChannelEvent]:
    """Convert the transmissions of an unslotted channel into logical slots.

    Transmissions are grouped into maximal "busy periods": a new transmission
    joins the current busy period when it starts before the period's end plus
    ``guard_time`` (the auxiliary busy tone has not yet gone idle), and opens
    a new logical slot otherwise.  Each busy period resolves exactly like a
    native slot: one writer → success, several → collision.

    Args:
        channel: the unslotted channel whose transmissions to convert.
        guard_time: extra idle time required on the auxiliary channel before
            a slot boundary is declared.
        number_by_time: when ``False`` (the historical behaviour) busy
            periods are numbered densely ``0, 1, 2, …``.  When ``True`` the
            slot indices additionally account for the whole unit-length idle
            slots that fit between consecutive busy periods (and before the
            first one), via one O(1) arithmetic fast-forward per gap — the
            unslotted analogue of the contention scheduler's idle-run skip:
            empty slots are *counted* without ever being materialised, so
            ``events[-1].slot + 1 − len(events)`` is the number of idle slots
            the conversion fast-forwarded over.

    Returns:
        One :class:`ChannelEvent` per busy period, in slot order.  Idle slots
        are never materialised as events (an unslotted channel has no notion
        of an empty slot between busy periods).
    """
    if guard_time < 0:
        raise ValueError("guard_time cannot be negative")
    ordered = sorted(channel.transmissions, key=lambda t: (t.start_time, repr(t.writer)))
    events: List[ChannelEvent] = []
    current: List[UnslottedTransmission] = []
    current_end: Optional[float] = None
    slot_index = 0

    def flush() -> None:
        """Resolve the currently open slot into a channel event."""
        nonlocal slot_index
        if not current:
            return
        writers = tuple(t.writer for t in current)
        if len(current) == 1:
            events.append(
                ChannelEvent(
                    slot=slot_index,
                    state=SlotState.SUCCESS,
                    payload=current[0].payload,
                    writer=current[0].writer,
                    writers=writers,
                )
            )
        else:
            events.append(
                ChannelEvent(slot=slot_index, state=SlotState.COLLISION, writers=writers)
            )
        slot_index += 1

    for transmission in ordered:
        if current_end is None or transmission.start_time >= current_end + guard_time:
            flush()
            if number_by_time:
                # fast-forward the slot counter over the idle gap in O(1):
                # every whole time unit with no busy tone is one idle slot
                reference = 0.0 if current_end is None else current_end
                slot_index += int(transmission.start_time - reference)
            current = [transmission]
            current_end = transmission.start_time + 1.0
        else:
            current.append(transmission)
            current_end = max(current_end, transmission.start_time + 1.0)
    flush()
    return events


def verify_slot_semantics(events: Sequence[ChannelEvent]) -> bool:
    """Check that a slot sequence obeys the model's success/collision semantics.

    Returns ``True`` when every SUCCESS slot has exactly one writer recorded,
    every COLLISION slot at least two, and every IDLE slot none.
    """
    for event in events:
        writers = len(event.writers)
        if event.state is SlotState.SUCCESS and writers not in (0, 1):
            return False
        if event.state is SlotState.COLLISION and writers < 2:
            return False
        if event.state is SlotState.IDLE and writers != 0:
            return False
    return True
