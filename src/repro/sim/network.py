"""The synchronous point-to-point message-passing network.

The network delivers every message exactly one round after it was sent
(synchronous model, Section 2).  It validates that messages travel only over
existing links and charges every delivery to the shared
:class:`~repro.sim.metrics.MetricsRecorder`.

Delivery is batched: inboxes are preallocated per node at construction, a
round's sends are appended to the receivers' standing inboxes, and
:meth:`PointToPointNetwork.deliver` hands the non-empty inboxes over in one
swap when every in-flight message is ready (which in the synchronous round
loop is always — sends happen strictly before the next round's delivery).
The per-message filtering the old implementation did per round survives only
as a slow path for callers that pre-load future rounds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.sim.errors import ProtocolError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.adversity import AdversityState
from repro.sim.events import Message
from repro.sim.metrics import MetricsRecorder
from repro.topology.graph import WeightedGraph
from repro.topology.properties import is_connected

NodeId = Hashable


class PointToPointNetwork:
    """Synchronous store-and-forward delivery over a fixed topology."""

    def __init__(
        self,
        graph: WeightedGraph,
        metrics: Optional[MetricsRecorder] = None,
        require_connected: bool = True,
        adversity: Optional["AdversityState"] = None,
    ) -> None:
        """Create a network over ``graph``.

        Args:
            graph: the point-to-point topology.
            metrics: shared complexity accountant; when omitted a private one
                is created (accessible via :attr:`metrics`).
            require_connected: the paper's model assumes a connected network;
                set to ``False`` only for targeted unit tests.
            adversity: optional adversity state; when attached, delivery
                applies the schedule's crash, churn, loss and delay faults
                (see :meth:`deliver`).

        Raises:
            TopologyError: if the graph is empty or (when required) not
                connected.
        """
        if graph.num_nodes() == 0:
            raise TopologyError("cannot build a network over an empty graph")
        if require_connected and not is_connected(graph):
            raise TopologyError("the point-to-point topology must be connected")
        self._graph = graph
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        # live adjacency view for O(1) link validation without method dispatch
        self._adjacency = graph.adjacency()
        # preallocated per-node inboxes; _pending lists the receivers whose
        # inbox is currently non-empty so a round touches only active nodes
        self._inboxes: Dict[NodeId, List[Message]] = {
            node: [] for node in self._adjacency
        }
        self._pending: List[NodeId] = []
        self._latest_round_sent = -1
        self._delivered_total = 0
        self._adversity = adversity
        if adversity is not None:
            adversity.bind_topology(graph)
            self._fault_rng = adversity.spawn_rng()
        else:
            self._fault_rng = None

    @property
    def graph(self) -> WeightedGraph:
        """Return the underlying topology."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Return the number of processors ``n``."""
        return self._graph.num_nodes()

    @property
    def num_links(self) -> int:
        """Return the number of point-to-point links ``m``."""
        return self._graph.num_edges()

    @property
    def delivered_total(self) -> int:
        """Return the number of messages delivered since construction."""
        return self._delivered_total

    def accept_sends(
        self,
        sender: NodeId,
        sends: Sequence[Tuple[NodeId, object]],
        round_index: int,
    ) -> None:
        """Accept the messages ``sender`` emits in ``round_index``.

        The messages will be delivered at the start of round
        ``round_index + 1``.

        Raises:
            ProtocolError: if a destination is not adjacent to ``sender``.
        """
        links = self._adjacency.get(sender)
        inboxes = self._inboxes
        pending = self._pending
        count = 0
        for receiver, payload in sends:
            if links is None or receiver not in links:
                # keep the partially queued batch consistent: its messages
                # are recorded and stamped so a caller that catches the error
                # still sees the one-round delivery delay
                if count:
                    self.metrics.record_messages(count)
                    if round_index > self._latest_round_sent:
                        self._latest_round_sent = round_index
                raise ProtocolError(
                    f"node {sender!r} attempted to send over a non-existent "
                    f"link to {receiver!r}"
                )
            inbox = inboxes[receiver]
            if not inbox:
                pending.append(receiver)
            inbox.append(Message(sender, receiver, payload, round_index))
            count += 1
        if count:
            self.metrics.record_messages(count)
            if round_index > self._latest_round_sent:
                self._latest_round_sent = round_index

    def deliver(self, round_index: int) -> Dict[NodeId, List[Message]]:
        """Return and clear the inboxes for the start of ``round_index``.

        Only messages sent in earlier rounds are delivered; in the
        synchronous model that is every in-flight message, so the common case
        hands the standing inboxes over wholesale instead of filtering each
        message by its send round.

        With an adversity state attached, every due message runs the fault
        gauntlet instead: dropped when the receiver is crashed this round,
        when the link is inside a churn window, or on an independent loss
        draw; surviving messages may be deferred one round on an independent
        delay draw (re-drawn each round, so delays are geometric).  The
        fault-free path is untouched — zero adversity means the exact
        pre-adversity delivery semantics and randomness.
        """
        pending = self._pending
        if not pending:
            return {}
        if self._adversity is not None:
            return self._deliver_under_adversity(round_index)
        inboxes = self._inboxes
        delivered: Dict[NodeId, List[Message]] = {}
        count = 0
        if self._latest_round_sent < round_index:
            # fast path: every queued message was sent in an earlier round
            for receiver in pending:
                inbox = inboxes[receiver]
                delivered[receiver] = inbox
                inboxes[receiver] = []
                count += len(inbox)
            pending.clear()
        else:
            # slow path: some messages are stamped for this round or later
            # (only reachable by driving the network by hand in tests)
            still_pending: List[NodeId] = []
            for receiver in pending:
                inbox = inboxes[receiver]
                ready = [msg for msg in inbox if msg.round_sent < round_index]
                if ready:
                    if len(ready) == len(inbox):
                        inboxes[receiver] = []
                    else:
                        inboxes[receiver] = [
                            msg for msg in inbox if msg.round_sent >= round_index
                        ]
                        still_pending.append(receiver)
                    delivered[receiver] = ready
                    count += len(ready)
                else:
                    still_pending.append(receiver)
            self._pending = still_pending
        self._delivered_total += count
        return delivered

    def _deliver_under_adversity(self, round_index: int) -> Dict[NodeId, List[Message]]:
        """Delivery slow path applying the attached adversity schedule.

        Draw order is fixed — receivers in pending order, messages in inbox
        order, loss before delay — so a given substream seed always produces
        the same fault trace.
        """
        state = self._adversity
        spec = state.spec
        rng = self._fault_rng
        loss_rate = spec.loss_rate
        delay_rate = spec.delay_rate
        inboxes = self._inboxes
        delivered: Dict[NodeId, List[Message]] = {}
        still_pending: List[NodeId] = []
        count = 0
        for receiver in self._pending:
            inbox = inboxes[receiver]
            ready: List[Message] = []
            kept: List[Message] = []
            receiver_crashed = state.node_crashed(receiver, round_index)
            for msg in inbox:
                if msg.round_sent >= round_index:
                    kept.append(msg)
                    continue
                if receiver_crashed:
                    state.count_drop()
                    continue
                if state.link_down(msg.sender, receiver, round_index):
                    state.count_drop()
                    continue
                if loss_rate and rng.random() < loss_rate:
                    state.count_drop()
                    continue
                if delay_rate and rng.random() < delay_rate:
                    state.count_delay()
                    kept.append(msg)
                    continue
                ready.append(msg)
            inboxes[receiver] = kept
            if kept:
                still_pending.append(receiver)
            if ready:
                delivered[receiver] = ready
                count += len(ready)
        self._pending = still_pending
        self._delivered_total += count
        return delivered

    def has_in_flight(self) -> bool:
        """Return ``True`` when undelivered messages remain in the network."""
        return bool(self._pending)
