"""The synchronous point-to-point message-passing network.

The network delivers every message exactly one round after it was sent
(synchronous model, Section 2).  It validates that messages travel only over
existing links and charges every delivery to the shared
:class:`~repro.sim.metrics.MetricsRecorder`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.sim.errors import ProtocolError, TopologyError
from repro.sim.events import Message
from repro.sim.metrics import MetricsRecorder
from repro.topology.graph import WeightedGraph
from repro.topology.properties import is_connected

NodeId = Hashable


class PointToPointNetwork:
    """Synchronous store-and-forward delivery over a fixed topology."""

    def __init__(
        self,
        graph: WeightedGraph,
        metrics: Optional[MetricsRecorder] = None,
        require_connected: bool = True,
    ) -> None:
        """Create a network over ``graph``.

        Args:
            graph: the point-to-point topology.
            metrics: shared complexity accountant; when omitted a private one
                is created (accessible via :attr:`metrics`).
            require_connected: the paper's model assumes a connected network;
                set to ``False`` only for targeted unit tests.

        Raises:
            TopologyError: if the graph is empty or (when required) not
                connected.
        """
        if graph.num_nodes() == 0:
            raise TopologyError("cannot build a network over an empty graph")
        if require_connected and not is_connected(graph):
            raise TopologyError("the point-to-point topology must be connected")
        self._graph = graph
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._in_flight: Dict[NodeId, List[Message]] = defaultdict(list)
        self._delivered_total = 0

    @property
    def graph(self) -> WeightedGraph:
        """Return the underlying topology."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Return the number of processors ``n``."""
        return self._graph.num_nodes()

    @property
    def num_links(self) -> int:
        """Return the number of point-to-point links ``m``."""
        return self._graph.num_edges()

    @property
    def delivered_total(self) -> int:
        """Return the number of messages delivered since construction."""
        return self._delivered_total

    def accept_sends(
        self,
        sender: NodeId,
        sends: Sequence[Tuple[NodeId, object]],
        round_index: int,
    ) -> None:
        """Accept the messages ``sender`` emits in ``round_index``.

        The messages will be delivered at the start of round
        ``round_index + 1``.

        Raises:
            ProtocolError: if a destination is not adjacent to ``sender``.
        """
        for receiver, payload in sends:
            if not self._graph.has_edge(sender, receiver):
                raise ProtocolError(
                    f"node {sender!r} attempted to send over a non-existent "
                    f"link to {receiver!r}"
                )
            message = Message(
                sender=sender,
                receiver=receiver,
                payload=payload,
                round_sent=round_index,
            )
            self._in_flight[receiver].append(message)
            self.metrics.record_messages(1)

    def deliver(self, round_index: int) -> Dict[NodeId, List[Message]]:
        """Return and clear the inboxes for the start of ``round_index``.

        Only messages sent in earlier rounds are delivered; in the
        synchronous model that is every in-flight message.
        """
        inboxes: Dict[NodeId, List[Message]] = {}
        for receiver, queue in list(self._in_flight.items()):
            ready = [msg for msg in queue if msg.round_sent < round_index]
            if not ready:
                continue
            remaining = [msg for msg in queue if msg.round_sent >= round_index]
            if remaining:
                self._in_flight[receiver] = remaining
            else:
                del self._in_flight[receiver]
            inboxes[receiver] = ready
            self._delivered_total += len(ready)
        return inboxes

    def has_in_flight(self) -> bool:
        """Return ``True`` when undelivered messages remain in the network."""
        return any(self._in_flight.values())
