"""Flyweight protocols: one shared instance drives every node via state slots.

The classic :class:`~repro.sim.node.NodeProtocol` API allocates one protocol
object (plus context, outbox and random source) per node per run.  At
n = 10⁵ that allocation — not the algorithm — dominated the sim-bound sweep
points (ROADMAP Open item 1): building 10⁵ objects to exchange 3 × 10⁵
messages.  A *flyweight* protocol inverts the layout:

* **one** instance per run holds all per-node state in columnar slots —
  ``bytearray``/``array``/list columns indexed by a dense slot id assigned
  in node order — instead of n objects holding one attribute each;
* the simulator calls ``on_start(slot)`` / ``on_round(slot, inbox, event)``
  with the slot index; helpers (:meth:`FlyweightProtocol.send`,
  :meth:`FlyweightProtocol.halt_slot`) update the shared columns;
* sends accumulate in one contiguous per-round buffer; the simulator slices
  each acting node's segment off the tail, preserving the exact per-node
  message grouping (and therefore delivery order) of the classic loop;
* per-node randomness comes from the :mod:`repro.sim.substreams` family on
  the environment — derived on demand, never pre-built.

A flyweight may additionally declare ``MESSAGE_DRIVEN = True``: its
``on_round`` with an empty inbox is a no-op (it reacts to mail only, never
to channel feedback or the passage of rounds).  The fault-free simulator
loops then dispatch **only slots with mail** — on a 10⁵-node aggregation
whose waves keep most nodes quiet this removes ~99% of all dispatch calls,
which profiling showed to be the real wall (≈2 × 10⁸ empty-inbox calls per
e10 sweep point at n = 102400).

Equivalence contract: driving a flyweight must be indistinguishable — same
messages in the same order, same channel writes, same metrics, same results
— from driving n classic instances of the protocol it mirrors.  The
adversity loops keep the classic full-scan dispatch so fault draws stay in
the same order; ``tests/test_flyweight.py`` pins both paths against the
classic protocols and the v3 goldens pin the adversity fingerprints.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.sim.events import ChannelEvent, Message
from repro.sim.substreams import NodeStreams

NodeId = Hashable


class FlyweightEnvironment:
    """Everything a flyweight run needs to know about the network, built once.

    The environment is the flyweight counterpart of n
    :class:`~repro.sim.node.NodeContext` objects: one object holding the
    topology columns in slot order.  A simulator builds it once per network
    object (the topology rows are cached on the graph) and mutates only
    ``inputs`` between runs, so repeated runs on one sweep point reuse every
    materialised structure.

    Attributes:
        nodes: node ids in slot order (``nodes[slot]`` is the id of ``slot``).
        slot_of: inverse mapping, node id → slot index.
        neighbors: per-slot neighbour-id tuples.
        link_weights: per-slot ``{neighbour: weight}`` dicts (shared with the
            simulator's cached rows — read-only).
        n: the number of nodes when the protocol is told it, else ``None``.
        streams: the per-node random substream family
            (:class:`~repro.sim.substreams.NodeStreams`).
        inputs: per-node input mapping for the current run (the ``extra``
            dicts of the classic API); reassigned by the simulator per run.
    """

    __slots__ = ("nodes", "slot_of", "neighbors", "link_weights", "n",
                 "streams", "inputs")

    def __init__(
        self,
        nodes: Tuple[NodeId, ...],
        neighbors: Tuple[Tuple[NodeId, ...], ...],
        link_weights: Tuple[Dict[NodeId, float], ...],
        n: Optional[int],
        streams: NodeStreams,
    ) -> None:
        """Assemble the columnar environment from topology rows."""
        self.nodes = nodes
        self.slot_of: Dict[NodeId, int] = {
            node: slot for slot, node in enumerate(nodes)
        }
        self.neighbors = neighbors
        self.link_weights = link_weights
        self.n = n
        self.streams = streams
        self.inputs: Mapping[NodeId, Dict[str, Any]] = {}

    @property
    def num_slots(self) -> int:
        """Return the number of node slots."""
        return len(self.nodes)


class FlyweightProtocol:
    """Base class for slot-indexed shared-instance protocols.

    Subclasses override :meth:`on_start` and :meth:`on_round` (both take a
    slot index) and keep all per-node state in columns sized
    ``env.num_slots``.  Within the callbacks they may call :meth:`send`,
    :meth:`channel_write` and :meth:`halt_slot`.

    Contract differences from the classic per-node API, by design:

    * the one-message-per-link-per-round rule is **not** re-validated here
      (the classic ``send`` guard); flyweight protocols are library-internal
      and their send patterns are structurally duplicate-free.  Link
      adjacency is still validated by the network's ``accept_sends``.
    * ``stop_when`` predicates (which receive a protocol map) are not
      supported — flyweight runs have no per-node protocol objects.
    """

    #: Set by subclasses whose ``on_round`` ignores empty inboxes entirely;
    #: lets the fault-free simulator loops dispatch only slots with mail.
    MESSAGE_DRIVEN = False

    def __init__(self, env: FlyweightEnvironment) -> None:
        """Allocate the sim-facing columns for ``env.num_slots`` slots."""
        self.env = env
        num_slots = env.num_slots
        #: 1 once the slot's node has halted (sim skips its dispatch).
        self.halted = bytearray(num_slots)
        #: per-slot declared local outputs.
        self.results: List[Any] = [None] * num_slots
        #: number of slots that have not halted yet.
        self.active_count = num_slots
        # contiguous per-round action buffers; the simulator slices each
        # acting slot's tail segment and clears them once per round
        self._sends: List[Tuple[NodeId, Any]] = []
        self._writes: List[Tuple[NodeId, Any]] = []

    # ------------------------------------------------------------------
    # API for subclasses
    # ------------------------------------------------------------------
    def send(self, neighbor: NodeId, payload: Any) -> None:
        """Queue ``payload`` for the current slot's node to ``neighbor``."""
        self._sends.append((neighbor, payload))

    def channel_write(self, node: NodeId, payload: Any) -> None:
        """Attempt to broadcast ``payload`` as ``node`` in the current slot."""
        self._writes.append((node, payload))

    def halt_slot(self, slot: int, result: Any = None) -> None:
        """Declare ``slot``'s local algorithm finished with ``result``."""
        if not self.halted[slot]:
            self.halted[slot] = 1
            self.active_count -= 1
        self.results[slot] = result

    # ------------------------------------------------------------------
    # callbacks to override
    # ------------------------------------------------------------------
    def on_start(self, slot: int) -> None:
        """Called once per slot before round 0's sends are collected."""

    def on_round(self, slot: int, inbox: Sequence[Message],
                 channel: ChannelEvent) -> None:
        """Called with a slot's newly delivered messages and slot feedback.

        A ``MESSAGE_DRIVEN`` subclass is never called with an empty inbox by
        the fault-free loops; the adversity loops may still pass one (the
        classic full-scan dispatch), and the subclass must treat it as a
        no-op to honour its declaration.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # simulator-facing plumbing
    # ------------------------------------------------------------------
    def results_by_node(self) -> Dict[NodeId, Any]:
        """Return the per-node results keyed by node id (slot order)."""
        results = self.results
        return {node: results[slot] for slot, node in enumerate(self.env.nodes)}


def is_flyweight_factory(protocol_factory: object) -> bool:
    """Return ``True`` when a run() factory is a flyweight protocol class."""
    return isinstance(protocol_factory, type) and issubclass(
        protocol_factory, FlyweightProtocol
    )
