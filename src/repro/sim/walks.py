"""Columnar random-walk engine: batched first-passage walks over the CSR core.

The mean-first-passage-time experiment (e12, after arXiv:0908.0976) measures
how long an unbiased random walk takes to first hit a distinguished *hub*
node, as a function of instance size, on scale-free families sharing one
degree sequence.  This module supplies the three pieces that workload needs:

* :func:`hub_node` — the canonical trap: the maximum-degree slot (ties break
  to the smallest slot, so the choice is deterministic);
* :func:`mean_first_passage_time` — the Monte-Carlo engine: a batch of
  walkers stepped synchronously over the :class:`~repro.topology.graph.CSRView`
  columns (``targets[offsets[u] + rng.randrange(degree)]`` per step — no
  adjacency dicts, no per-step allocation), each walker driven by its own
  hash-derived substream (:func:`~repro.sim.substreams.substream_seed`, scope
  ``"sim.walks"``) so the result is independent of batching order, process
  and executor;
* :func:`exact_mfpt` — the absorbing-chain reference solve
  ``(I − Q)·t = 1`` by Gaussian elimination (stdlib floats, no third-party
  linear algebra), against which the statistical tests calibrate the engine
  on small graphs.

Walks are unbiased (uniform over neighbours) and ignore edge weights; the
graphs the experiment walks carry unit weights anyway.

The per-walker streams were introduced after golden eras v1–v4 were frozen
and touch none of the streams those eras pin; their own fixed-seed
fingerprints live in era v5 (``tests/test_perf_equivalence.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.substreams import substream_seed
from repro.topology.graph import WeightedGraph

#: substream scope of the per-walker generators (one layer, one scope —
#: see :mod:`repro.sim.substreams`)
WALK_SCOPE = "sim.walks"


def hub_node(graph: WeightedGraph) -> int:
    """Return the slot index of the maximum-degree node.

    Ties break to the smallest slot, so the hub of a given graph is a pure
    function of its structure — every consumer (the walk engine, the exact
    solve, the dissemination source pick) agrees on it.

    Raises:
        ValueError: on an empty graph.
    """
    csr = graph.csr()
    if csr.n == 0:
        raise ValueError("an empty graph has no hub")
    offsets = csr.offsets
    best = 0
    best_degree = -1
    for i in range(csr.n):
        degree = offsets[i + 1] - offsets[i]
        if degree > best_degree:
            best = i
            best_degree = degree
    return best


@dataclass(frozen=True)
class WalkSummary:
    """Aggregate outcome of one batch of first-passage walks.

    Attributes:
        walkers: number of walkers in the batch.
        target: the absorbing slot every walker runs to.
        steps: per-walker first-passage step counts, in walker order (a
            capped walker contributes ``max_steps``).
        mean_steps: arithmetic mean of ``steps`` — the MFPT estimate.
        max_steps: the step cap each walker ran under.
        capped: walkers that hit the cap without reaching the target (their
            contribution biases ``mean_steps`` low; a non-zero count flags
            the estimate).
    """

    walkers: int
    target: int
    steps: Tuple[int, ...]
    mean_steps: float
    max_steps: int
    capped: int


def mean_first_passage_time(
    graph: WeightedGraph,
    target: Optional[int] = None,
    walkers: int = 32,
    seed: object = 0,
    max_steps: Optional[int] = None,
) -> WalkSummary:
    """Estimate the MFPT to ``target`` over uniformly random start nodes.

    Walker ``i`` derives its private generator from
    ``substream_seed(seed, "sim.walks", i)``, draws a uniform start slot
    distinct from the target, and performs an unbiased walk over the CSR
    columns until it hits the target (or the step cap).  Walkers step
    synchronously in one batch loop, but since every walker owns its stream
    the step counts are identical to running them one at a time — and to
    running them in any other process.

    Args:
        graph: the (connected) graph to walk; node labels must be the
            identity enumeration ``0..n-1`` (all e12 generators' are).
        target: absorbing slot; ``None`` means :func:`hub_node`.
        walkers: batch size (more walkers, tighter estimate).
        seed: master seed of the walker substream family — any repr-stable
            value (experiments pass a tuple keying the sweep point).
        max_steps: per-walker step cap; ``None`` means ``500 · n``, far
            above the MFPT of every family e12 sweeps, so fault-free runs
            cap only on pathological inputs.

    Raises:
        ValueError: on a graph with fewer than two nodes, a walker count
            below one, a target outside the slot range, or an isolated node
            (a walker standing on it could never move).
    """
    csr = graph.csr()
    n = csr.n
    if n < 2:
        raise ValueError("first-passage walks need at least two nodes")
    if walkers < 1:
        raise ValueError("need at least one walker")
    if target is None:
        target = hub_node(graph)
    elif not 0 <= target < n:
        raise ValueError(f"target slot {target} outside 0..{n - 1}")
    if max_steps is None:
        max_steps = 500 * n
    offsets = csr.offsets
    neighbours = csr.targets
    rngs: List[random.Random] = []
    positions: List[int] = []
    for i in range(walkers):
        rng = random.Random(substream_seed(seed, WALK_SCOPE, i))
        start = rng.randrange(n)
        while start == target:
            start = rng.randrange(n)
        rngs.append(rng)
        positions.append(start)
    steps = [0] * walkers
    active = list(range(walkers))
    step = 0
    while active and step < max_steps:
        step += 1
        still_walking = []
        for i in active:
            u = positions[i]
            lo = offsets[u]
            degree = offsets[u + 1] - lo
            if degree == 0:
                raise ValueError(f"walker stranded on isolated slot {u}")
            nxt = neighbours[lo + rngs[i].randrange(degree)]
            if nxt == target:
                steps[i] = step
            else:
                positions[i] = nxt
                still_walking.append(i)
        active = still_walking
    for i in active:
        steps[i] = max_steps
    return WalkSummary(
        walkers=walkers,
        target=target,
        steps=tuple(steps),
        mean_steps=sum(steps) / walkers,
        max_steps=max_steps,
        capped=len(active),
    )


def exact_mfpt(graph: WeightedGraph, target: int) -> List[float]:
    """Solve the absorbing-chain system ``(I − Q)·t = 1`` exactly.

    ``Q`` is the walk's transition matrix restricted to the transient
    (non-target) nodes; the solution ``t[u]`` is the expected number of
    steps an unbiased walk starting at slot ``u`` needs to first reach
    ``target``.  Plain Gaussian elimination with partial pivoting over
    stdlib floats — O(n³), intended as the reference the statistical tests
    hold the Monte-Carlo engine to on small graphs, not as a production
    path.

    Returns:
        A list indexed by slot; ``t[target] == 0.0``.

    Raises:
        ValueError: on a target outside the slot range, a graph with fewer
            than two nodes, an isolated transient node, or a transient node
            with no path to the target (singular system).
    """
    csr = graph.csr()
    n = csr.n
    if n < 2:
        raise ValueError("the absorbing chain needs at least two nodes")
    if not 0 <= target < n:
        raise ValueError(f"target slot {target} outside 0..{n - 1}")
    offsets = csr.offsets
    neighbours = csr.targets
    transient = [u for u in range(n) if u != target]
    column = {u: r for r, u in enumerate(transient)}
    size = n - 1
    # dense augmented rows [I - Q | 1]
    rows = [[0.0] * (size + 1) for _ in range(size)]
    for r, u in enumerate(transient):
        lo = offsets[u]
        degree = offsets[u + 1] - lo
        if degree == 0:
            raise ValueError(f"isolated slot {u} can never reach the target")
        row = rows[r]
        row[r] += 1.0
        row[size] = 1.0
        p = 1.0 / degree
        for k in range(lo, lo + degree):
            v = neighbours[k]
            if v != target:
                row[column[v]] -= p
    # Gaussian elimination with partial pivoting
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(rows[r][col]))
        if abs(rows[pivot][col]) < 1e-12:
            raise ValueError(
                "singular absorbing chain: some node cannot reach the target"
            )
        if pivot != col:
            rows[col], rows[pivot] = rows[pivot], rows[col]
        pivot_row = rows[col]
        inv = 1.0 / pivot_row[col]
        for r in range(col + 1, size):
            factor = rows[r][col] * inv
            if factor == 0.0:
                continue
            row = rows[r]
            for c in range(col, size + 1):
                row[c] -= factor * pivot_row[c]
    solution = [0.0] * size
    for r in range(size - 1, -1, -1):
        row = rows[r]
        acc = row[size]
        for c in range(r + 1, size):
            acc -= row[c] * solution[c]
        solution[r] = acc / row[r]
    result = [0.0] * n
    for r, u in enumerate(transient):
        result[u] = solution[r]
    return result
