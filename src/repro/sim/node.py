"""Per-node protocol base class and the context the simulator hands to it.

Every distributed algorithm in this library is written as a subclass of
:class:`NodeProtocol`: one instance per processor, holding only that
processor's local state.  The simulator drives all instances in lock-step
rounds.  In each round a node

1. observes the messages delivered to it (sent by neighbours in the previous
   round) and the resolution of the previous channel slot,
2. updates its local state,
3. queues at most one message per incident link and at most one channel write
   for the current slot, and
4. optionally declares itself finished via :meth:`NodeProtocol.halt`.

The node may consult only the information the model grants it: its own
identifier, its list of incident links (with weights), the total number of
nodes ``n`` (the paper assumes ``n`` is known; Section 7 shows how to remove
that assumption, and the size-estimation protocols take ``n_known=False``),
and a private random source.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.sim.errors import ProtocolError
from repro.sim.events import ChannelEvent, Message

NodeId = Hashable

# The inbox handed to every node without mail.  Immutable on purpose: the
# simulators share one instance across all quiet nodes and rounds, so a
# protocol that tried to mutate its inbox (never part of the contract) fails
# loudly instead of silently corrupting other nodes' observations.
NO_MESSAGES: Sequence[Message] = ()


class NodeContext:
    """Everything a node is allowed to know about its environment.

    Attributes:
        node_id: this processor's unique identifier (O(log n) bits).
        neighbors: identifiers of the processors adjacent in the
            point-to-point topology, in a fixed (but arbitrary) local order.
        link_weights: weight of the link to each neighbour.  Algorithms that
            do not use weights simply ignore this.  Shared with the
            simulator's cached topology rows — protocols must treat it as
            read-only.
        n: the number of processors in the network, when known.
        rng: a private seeded random source for randomized protocols.  When
            the context was built with an ``rng_factory`` (the per-node
            substream derivation of :mod:`repro.sim.substreams`), the
            generator is materialised on first access — protocols that never
            draw (the common case) cost no ``random.Random`` construction.
        extra: free-form per-node inputs (e.g. the local operand of a global
            sensitive function).
    """

    __slots__ = ("node_id", "neighbors", "link_weights", "n", "extra",
                 "_rng", "_rng_factory")

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Tuple[NodeId, ...],
        link_weights: Dict[NodeId, float],
        n: Optional[int],
        rng: Optional[random.Random] = None,
        extra: Optional[Dict[str, Any]] = None,
        rng_factory: Optional[Callable[[NodeId], random.Random]] = None,
    ) -> None:
        """Create a context; supply either a concrete ``rng`` or a factory."""
        self.node_id = node_id
        self.neighbors = neighbors
        self.link_weights = link_weights
        self.n = n
        self.extra = {} if extra is None else extra
        self._rng = rng
        self._rng_factory = rng_factory

    @property
    def rng(self) -> random.Random:
        """Return the node's private generator, materialising it lazily."""
        rng = self._rng
        if rng is None:
            factory = self._rng_factory
            if factory is None:
                raise ProtocolError(
                    f"node {self.node_id!r} has no random source: the context "
                    "was built without an rng or rng_factory"
                )
            rng = self._rng = factory(self.node_id)
        return rng

    @rng.setter
    def rng(self, value: random.Random) -> None:
        """Install an explicit random source (tests pin streams this way)."""
        self._rng = value

    def degree(self) -> int:
        """Return the number of incident point-to-point links."""
        return len(self.neighbors)

    def sorted_incident_links(self) -> List[Tuple[float, NodeId]]:
        """Return ``(weight, neighbour)`` pairs sorted by weight then id.

        This is the "ordered list of links" each node scans in Step 2 of the
        deterministic partitioning algorithm.
        """
        return sorted(
            ((self.link_weights[v], v) for v in self.neighbors),
            key=lambda pair: (pair[0], repr(pair[1])),
        )


class NodeProtocol:
    """Base class for one processor's side of a distributed algorithm.

    Subclasses override :meth:`on_start` (called once, before round 0's
    sends are collected) and :meth:`on_round` (called every round with the
    newly delivered messages and the previous slot's outcome).  Within those
    callbacks they may call :meth:`send`, :meth:`send_to_all_neighbors`,
    :meth:`channel_write` and :meth:`halt`.

    A node that has halted is no longer scheduled, but messages addressed to
    it are still delivered and retained; this mirrors a processor that has
    terminated its algorithm while its network interface keeps absorbing
    late traffic.
    """

    def __init__(self, ctx: NodeContext) -> None:
        """Bind the protocol instance to its node's context."""
        self.ctx = ctx
        self._outbox: List[Tuple[NodeId, Any]] = []
        # destinations already used this round, kept in sync with _outbox so
        # the one-message-per-link check is O(1) per send instead of a scan
        # of the outbox (O(deg²) for a hub that messages every neighbour);
        # None means "rebuild from _outbox on next send"
        self._outbox_dests: Optional[Set[NodeId]] = set()
        self._channel_payload: Optional[Any] = None
        self._channel_write_pending = False
        # set by send()/channel_write(), cleared by _collect_actions(): lets
        # the simulator skip the collection call for nodes that did nothing
        # this round (the common case in large sparse rounds)
        self._acted = False
        self._halted = False
        self._result: Any = None

    # ------------------------------------------------------------------
    # API for subclasses
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        """Return this processor's identifier."""
        return self.ctx.node_id

    @property
    def neighbors(self) -> Tuple[NodeId, ...]:
        """Return the identifiers of this processor's neighbours."""
        return self.ctx.neighbors

    def send(self, neighbor: NodeId, payload: Any) -> None:
        """Queue ``payload`` for delivery to ``neighbor`` next round.

        Raises:
            ProtocolError: if ``neighbor`` is not adjacent, or a message has
                already been queued on that link this round (the model allows
                one message per link per round).
        """
        if neighbor not in self.ctx.link_weights:
            raise ProtocolError(
                f"node {self.node_id!r} tried to send to non-neighbour {neighbor!r}"
            )
        dests = self._outbox_dests
        if dests is None:
            dests = self._outbox_dests = {dest for dest, _ in self._outbox}
        if neighbor in dests:
            raise ProtocolError(
                f"node {self.node_id!r} queued two messages to {neighbor!r} "
                "in the same round"
            )
        dests.add(neighbor)
        self._outbox.append((neighbor, payload))
        self._acted = True

    def send_to_all_neighbors(self, payload: Any) -> None:
        """Queue ``payload`` on every incident link."""
        if self._outbox:
            # a message is already queued on some link; go through send() so
            # the one-message-per-link rule is enforced per neighbour
            for neighbor in self.ctx.neighbors:
                self.send(neighbor, payload)
            return
        # empty outbox: neighbours are unique, so no duplicate check is needed
        # (this keeps a high-degree hub's broadcast O(deg) instead of O(deg²));
        # the dest set is marked stale and only rebuilt if send() runs later
        self._outbox = [(neighbor, payload) for neighbor in self.ctx.neighbors]
        self._outbox_dests = None
        if self._outbox:
            self._acted = True

    def channel_write(self, payload: Any) -> None:
        """Attempt to broadcast ``payload`` in the current channel slot.

        Raises:
            ProtocolError: if a write has already been queued for this slot.
        """
        if self._channel_write_pending:
            raise ProtocolError(
                f"node {self.node_id!r} attempted two channel writes in one slot"
            )
        self._channel_write_pending = True
        self._channel_payload = payload
        self._acted = True

    def halt(self, result: Any = None) -> None:
        """Declare the local algorithm finished with an optional ``result``."""
        self._halted = True
        self._result = result

    def set_result(self, result: Any) -> None:
        """Record the local output without halting (used by multi-stage runs)."""
        self._result = result

    # ------------------------------------------------------------------
    # callbacks to override
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once before the first round; queue initial sends here."""

    def on_round(self, inbox: Sequence[Message], channel: ChannelEvent) -> None:
        """Called each round with newly delivered messages and slot feedback.

        ``inbox`` must be treated as read-only: nodes without mail all share
        one immutable empty sequence (:data:`NO_MESSAGES`).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # simulator-facing plumbing
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        """Return ``True`` once the node has called :meth:`halt`."""
        return self._halted

    @property
    def result(self) -> Any:
        """Return the node's declared local output (``None`` until set)."""
        return self._result

    def _collect_actions(self) -> Tuple[List[Tuple[NodeId, Any]], Optional[Any], bool]:
        """Return and clear the queued sends and channel write for this round.

        Runs once per node per round; an empty outbox is handed back without
        being replaced (the caller only reads it), so quiet rounds allocate
        nothing.
        """
        self._acted = False
        outbox = self._outbox
        if outbox:
            self._outbox = []
            dests = self._outbox_dests
            if dests:
                dests.clear()
            # a stale (None) marker stays stale: send() rebuilds from the
            # now-empty outbox, which is the empty set anyway
        wrote = self._channel_write_pending
        if not wrote:
            return outbox, None, False
        payload = self._channel_payload
        self._channel_payload = None
        self._channel_write_pending = False
        return outbox, payload, wrote
