"""The slotted multiaccess (collision) channel.

Section 2 of the paper: every node can write to and read from each slot; a
slot is *idle* when no node writes, *success* when exactly one node writes
(its message is then heard by all nodes), and *collision* when two or more
nodes write (detected by all nodes, contents lost).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence, Tuple

from repro.sim.events import ChannelEvent, SlotState
from repro.sim.metrics import MetricsRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.adversity import AdversityState

NodeId = Hashable


class SlottedChannel:
    """Resolves one slot at a time and keeps a history of slot outcomes.

    When an :class:`~repro.sim.adversity.AdversityState` with a positive jam
    rate is attached, each resolved slot is independently forced to read
    COLLISION with that rate — the jamming adversary of the adversity layer.
    Jam draws come from a channel-private substream so several channels in
    one run jam independently but deterministically.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRecorder] = None,
        adversity: Optional["AdversityState"] = None,
    ) -> None:
        """Create a channel, optionally metered and under a jam schedule."""
        self._metrics = metrics
        self._history: List[ChannelEvent] = []
        self._idle_skipped = 0
        self._adversity = adversity
        self._jam_rng = adversity.spawn_rng() if adversity is not None else None

    @property
    def adversity(self) -> Optional["AdversityState"]:
        """Return the attached adversity state, if any (jamming only)."""
        return self._adversity

    @property
    def slots_elapsed(self) -> int:
        """Return how many slots have been resolved so far.

        Includes idle slots fast-forwarded over by :meth:`skip_idle_slots`,
        which are accounted but never materialised as events.
        """
        return len(self._history) + self._idle_skipped

    @property
    def idle_slots_skipped(self) -> int:
        """Return how many idle slots were accounted without an event."""
        return self._idle_skipped

    def skip_idle_slots(self, count: int) -> None:
        """Charge ``count`` idle slots in one O(1) batch.

        The skip-ahead contention scheduler
        (:mod:`repro.protocols.collision.geometric`) knows an idle run's
        length without resolving its slots one by one; this records the run
        in the slot accounting (and the metrics, when attached) without
        appending ``count`` idle events to the history.

        Raises:
            ValueError: if ``count`` is negative.
        """
        if count < 0:
            raise ValueError("cannot skip a negative number of slots")
        self._idle_skipped += count
        if self._metrics is not None and count:
            self._metrics.record_idle_slots(count)

    @property
    def history(self) -> Tuple[ChannelEvent, ...]:
        """Return every resolved slot, oldest first."""
        return tuple(self._history)

    def resolve_slot(
        self,
        slot: int,
        writes: Sequence[Tuple[NodeId, object]],
    ) -> ChannelEvent:
        """Resolve slot ``slot`` given the attempted ``(writer, payload)`` writes.

        Returns the full (non-public) :class:`ChannelEvent`; the simulator
        hands nodes the :meth:`ChannelEvent.public_view`.

        The idle and success outcomes are the fast path (they are what the
        round loop resolves almost every slot), so they avoid the generic
        writer-tuple construction the collision branch pays.
        """
        attempts = len(writes)
        if self._adversity is not None and self._adversity.jam_slot(self._jam_rng):
            # a jammed slot reads COLLISION to every node regardless of the
            # actual writes; any written payloads are lost
            event = ChannelEvent(
                slot=slot,
                state=SlotState.COLLISION,
                writers=tuple(writer for writer, _ in writes),
            )
            self._history.append(event)
            if self._metrics is not None:
                self._metrics.record_slot(event.state, attempts, jammed=True)
            return event
        if attempts == 0:
            event = ChannelEvent(slot=slot, state=SlotState.IDLE)
        elif attempts == 1:
            writer, payload = writes[0]
            event = ChannelEvent(
                slot=slot,
                state=SlotState.SUCCESS,
                payload=payload,
                writer=writer,
                writers=(writer,),
            )
        else:
            event = ChannelEvent(
                slot=slot,
                state=SlotState.COLLISION,
                writers=tuple(writer for writer, _ in writes),
            )
        self._history.append(event)
        if self._metrics is not None:
            self._metrics.record_slot(event.state, attempts)
        return event

    def successes(self) -> List[ChannelEvent]:
        """Return the slots that resolved to SUCCESS, oldest first."""
        return [event for event in self._history if event.is_success()]

    def utilisation(self) -> float:
        """Return the fraction of elapsed slots that carried a successful broadcast."""
        elapsed = self.slots_elapsed
        if not elapsed:
            return 0.0
        return len(self.successes()) / elapsed
