"""The slotted multiaccess (collision) channel.

Section 2 of the paper: every node can write to and read from each slot; a
slot is *idle* when no node writes, *success* when exactly one node writes
(its message is then heard by all nodes), and *collision* when two or more
nodes write (detected by all nodes, contents lost).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.sim.events import ChannelEvent, SlotState
from repro.sim.metrics import MetricsRecorder

NodeId = Hashable


class SlottedChannel:
    """Resolves one slot at a time and keeps a history of slot outcomes."""

    def __init__(self, metrics: Optional[MetricsRecorder] = None) -> None:
        self._metrics = metrics
        self._history: List[ChannelEvent] = []

    @property
    def slots_elapsed(self) -> int:
        """Return how many slots have been resolved so far."""
        return len(self._history)

    @property
    def history(self) -> Tuple[ChannelEvent, ...]:
        """Return every resolved slot, oldest first."""
        return tuple(self._history)

    def resolve_slot(
        self,
        slot: int,
        writes: Sequence[Tuple[NodeId, object]],
    ) -> ChannelEvent:
        """Resolve slot ``slot`` given the attempted ``(writer, payload)`` writes.

        Returns the full (non-public) :class:`ChannelEvent`; the simulator
        hands nodes the :meth:`ChannelEvent.public_view`.

        The idle and success outcomes are the fast path (they are what the
        round loop resolves almost every slot), so they avoid the generic
        writer-tuple construction the collision branch pays.
        """
        attempts = len(writes)
        if attempts == 0:
            event = ChannelEvent(slot=slot, state=SlotState.IDLE)
        elif attempts == 1:
            writer, payload = writes[0]
            event = ChannelEvent(
                slot=slot,
                state=SlotState.SUCCESS,
                payload=payload,
                writer=writer,
                writers=(writer,),
            )
        else:
            event = ChannelEvent(
                slot=slot,
                state=SlotState.COLLISION,
                writers=tuple(writer for writer, _ in writes),
            )
        self._history.append(event)
        if self._metrics is not None:
            self._metrics.record_slot(event.state, attempts)
        return event

    def successes(self) -> List[ChannelEvent]:
        """Return the slots that resolved to SUCCESS, oldest first."""
        return [event for event in self._history if event.is_success()]

    def utilisation(self) -> float:
        """Return the fraction of elapsed slots that carried a successful broadcast."""
        if not self._history:
            return 0.0
        return len(self.successes()) / len(self._history)
