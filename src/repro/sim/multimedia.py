"""The multimedia network: synchronous point-to-point network + slotted channel.

This module contains the simulation driver used by every algorithm in the
library.  One *time unit* advances both media: each node may send one message
per incident link (delivered next round) and may attempt one write to the
current channel slot (whose idle/success/collision outcome every node
observes at the start of the next round).

Round semantics (batched delivery)
----------------------------------

Each round of :meth:`MultimediaNetwork.run` is one pass over the *active*
(non-halted) nodes:

1. the network hands over every inbox in one batch — all messages sent in
   round ``r − 1`` are delivered together at the start of round ``r``
   (:meth:`~repro.sim.network.PointToPointNetwork.deliver` swaps the standing
   per-node inboxes out rather than filtering message by message);
2. every active node observes its batch plus the public view of the previous
   channel slot via :meth:`~repro.sim.node.NodeProtocol.on_round` (in round 0
   :meth:`~repro.sim.node.NodeProtocol.on_start` runs first, and ``on_round``
   only if the node already has mail);
3. the node's queued sends are accepted for round ``r + 1`` and its channel
   write, if any, joins the current slot;
4. the slot resolves once after every node has acted, so no node sees the
   current slot's outcome early.

Nodes that halt leave the dispatch list but keep receiving (and dropping)
late traffic; the loop keeps running — resolving idle slots — until the last
in-flight message has drained, exactly as the per-node-scan loop did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.sim.adversity import AdversityState
from repro.sim.channel import SlottedChannel
from repro.sim.errors import AdversityAbort, SimulationTimeout
from repro.sim.events import ChannelEvent, idle_event
from repro.sim.flyweight import (
    FlyweightEnvironment,
    FlyweightProtocol,
    is_flyweight_factory,
)
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.sim.network import PointToPointNetwork
from repro.sim.node import NO_MESSAGES, NodeContext, NodeProtocol
from repro.sim.substreams import NodeStreams
from repro.topology.graph import WeightedGraph

NodeId = Hashable
ProtocolFactory = Callable[[NodeContext], NodeProtocol]

DEFAULT_MAX_ROUNDS = 1_000_000

#: Substream scope for per-node random sources in synchronous runs (the
#: synchronizer uses its own scope so the two sims never correlate).
STREAM_SCOPE = "sim.multimedia"

TopologyRows = List[Tuple[NodeId, Tuple[NodeId, ...], Dict[NodeId, float]]]


def shared_topology_rows(graph: WeightedGraph) -> TopologyRows:
    """Return per-node ``(node, neighbours, weights)`` rows, cached on the graph.

    The rows are the materialised form every simulation layer consumes
    (multimedia rounds, the synchronizer, flyweight environments).  They are
    cached on the graph object keyed by its mutation version, so the several
    simulations one sweep point runs over the same topology (e.g. e7's
    multimedia run and its point-to-point baseline) build them exactly once.
    The neighbour tuples and weight dicts are shared — consumers must treat
    them as read-only.
    """
    version = getattr(graph, "_version", None)
    cache = getattr(graph, "_sim_topology_rows", None)
    if cache is not None and cache[0] == version:
        return cache[1]
    rows: TopologyRows = [
        (node, tuple(graph.iter_neighbors(node)), dict(graph.neighbor_items(node)))
        for node in graph.nodes()
    ]
    try:
        graph._sim_topology_rows = (version, rows)
    except AttributeError:  # graphs with __slots__: fall back to uncached
        pass
    return rows


@dataclass
class SimulationResult:
    """The outcome of one simulation run.

    Attributes:
        rounds: number of time units elapsed until every node halted.
        metrics: snapshot of the shared complexity accountant.
        results: each node's declared local output.
        protocols: the protocol instances themselves, for tests that want to
            inspect internal state after the run.
        channel_history: every resolved channel slot, oldest first.
    """

    rounds: int
    metrics: MetricsSnapshot
    results: Dict[NodeId, Any]
    protocols: Dict[NodeId, NodeProtocol]
    channel_history: Tuple[ChannelEvent, ...]

    def result_values(self) -> List[Any]:
        """Return the node outputs in node-id order (for convenience)."""
        return [self.results[node] for node in sorted(self.results, key=repr)]


class MultimediaNetwork:
    """A multimedia network over a fixed point-to-point topology.

    The object can be reused for several runs; each run gets fresh protocol
    instances and (unless a shared recorder is supplied per run) charges the
    network-level :class:`MetricsRecorder` owned by this object.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        seed: Optional[int] = None,
        n_known: bool = True,
    ) -> None:
        """Create a multimedia network.

        Args:
            graph: the point-to-point topology; all its nodes are also
                attached to the multiaccess channel.
            seed: master seed from which per-node private random sources are
                derived (deterministic given the seed).
            n_known: whether nodes are told ``n``.  The paper assumes ``n``
                is known (Section 2) and Section 7 removes the assumption;
                the size-estimation protocols run with ``n_known=False``.
        """
        self._graph = graph
        self._seed = seed
        self._n_known = n_known
        # the per-node substream family: cheap, stateless, shared by every
        # run on this object (see repro.sim.substreams)
        self._streams = NodeStreams(seed, STREAM_SCOPE)
        # the flyweight environment is built on first flyweight run and
        # mutated in place (inputs only) across runs
        self._flyweight_env: Optional[FlyweightEnvironment] = None
        self._flyweight_env_version: Optional[int] = None

    @property
    def graph(self) -> WeightedGraph:
        """Return the point-to-point topology."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Return ``n``."""
        return self._graph.num_nodes()

    @property
    def num_links(self) -> int:
        """Return ``m``."""
        return self._graph.num_edges()

    # ------------------------------------------------------------------
    # running protocols
    # ------------------------------------------------------------------
    def _topology_rows(self) -> TopologyRows:
        """Return the cached per-node (node, neighbours, weights) rows."""
        return shared_topology_rows(self._graph)

    def build_contexts(
        self,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]] = None,
    ) -> Dict[NodeId, NodeContext]:
        """Build one :class:`NodeContext` per node.

        The topology-derived rows (neighbour tuples, link-weight dicts) are
        materialised once per graph and shared across runs and contexts —
        protocols must treat them as read-only.  A node's private random
        source is derived from the master seed via the hashed per-node
        substream family (:mod:`repro.sim.substreams`) and materialised only
        on first use, so protocols that never draw construct no generators
        at all; the ``extra`` input dicts are fresh per run.

        Args:
            inputs: optional per-node ``extra`` dictionaries (e.g. the local
                operand of a global sensitive function).
        """
        rng_factory = self._streams.rng_for
        contexts: Dict[NodeId, NodeContext] = {}
        n = self.num_nodes if self._n_known else None
        for node, neighbors, weights in self._topology_rows():
            contexts[node] = NodeContext(
                node_id=node,
                neighbors=neighbors,
                link_weights=weights,
                n=n,
                extra=dict(inputs.get(node, {})) if inputs else {},
                rng_factory=rng_factory,
            )
        return contexts

    def run(
        self,
        protocol_factory: ProtocolFactory,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        metrics: Optional[MetricsRecorder] = None,
        stop_when: Optional[Callable[[Dict[NodeId, NodeProtocol]], bool]] = None,
        adversity: Optional[AdversityState] = None,
    ) -> SimulationResult:
        """Run one protocol instance on every node until all of them halt.

        Args:
            protocol_factory: callable building a node's protocol from its
                :class:`NodeContext`.
            inputs: optional per-node ``extra`` input dictionaries.
            max_rounds: safety bound; exceeded means a protocol bug.
            metrics: an externally owned recorder to charge (used when an
                algorithm composes several runs); a fresh one is created
                otherwise.
            stop_when: optional predicate over the protocol map that ends the
                run early (used by open-ended protocols such as estimation
                loops driven from outside).
            adversity: optional adversity state; faults are applied at the
                network/channel layer and crashed nodes skip their rounds,
                with the run bounded by the schedule's round budget and
                stall detector instead of ``max_rounds``.

        Returns:
            A :class:`SimulationResult`.

        Raises:
            SimulationTimeout: if the protocols do not all halt in time.
            AdversityAbort: if an adversity schedule keeps the run from
                terminating within its budget (or it stalls).
        """
        recorder = metrics if metrics is not None else MetricsRecorder()
        network = PointToPointNetwork(
            self._graph, metrics=recorder, adversity=adversity
        )
        channel = SlottedChannel(
            metrics=recorder,
            adversity=adversity.channel_adversity() if adversity is not None else None,
        )

        if is_flyweight_factory(protocol_factory):
            if stop_when is not None:
                raise ValueError(
                    "stop_when predicates receive a per-node protocol map and "
                    "are not supported by flyweight runs"
                )
            return self._run_flyweight(
                protocol_factory,
                inputs=inputs,
                recorder=recorder,
                network=network,
                channel=channel,
                max_rounds=max_rounds,
                adversity=adversity,
            )

        contexts = self.build_contexts(inputs)
        protocols: Dict[NodeId, NodeProtocol] = {
            node: protocol_factory(ctx) for node, ctx in contexts.items()
        }

        # the dispatch list holds only non-halted nodes (in protocol-map
        # order) and shrinks as nodes halt, so a round is one pass over the
        # active nodes rather than a scan of the whole network; each entry
        # pre-binds the two methods that run every round
        active: List[Tuple[NodeId, NodeProtocol, Callable, Callable]] = [
            (node, protocol, protocol.on_round, protocol._collect_actions)
            for node, protocol in protocols.items()
            if not protocol._halted
        ]

        if adversity is not None:
            return self._run_under_adversity(
                adversity=adversity,
                recorder=recorder,
                network=network,
                channel=channel,
                protocols=protocols,
                active=active,
                max_rounds=max_rounds,
                stop_when=stop_when,
            )

        deliver = network.deliver
        accept_sends = network.accept_sends
        resolve_slot = channel.resolve_slot
        record_round = recorder.record_round

        last_event: ChannelEvent = idle_event(-1)
        rounds_used = 0
        for round_index in range(max_rounds):
            if not active and not network.has_in_flight():
                break
            if stop_when is not None and stop_when(protocols):
                break

            inboxes = deliver(round_index)
            get_inbox = inboxes.get
            writes: List[Tuple[NodeId, Any]] = []
            public_event = last_event.public_view()
            halted_any = False
            starting = round_index == 0
            for node, protocol, on_round, collect_actions in active:
                if starting:
                    protocol.on_start()
                    # nodes may also react immediately in round 0
                    inbox = get_inbox(node)
                    if inbox:
                        on_round(inbox, public_event)
                else:
                    on_round(get_inbox(node) or NO_MESSAGES, public_event)
                if protocol._acted:
                    outbox, payload, wrote = collect_actions()
                    if outbox:
                        accept_sends(node, outbox, round_index)
                    if wrote:
                        writes.append((node, payload))
                if protocol._halted:
                    halted_any = True
            if halted_any:
                active = [entry for entry in active if not entry[1]._halted]
            last_event = resolve_slot(round_index, writes)
            record_round(1)
            rounds_used = round_index + 1
        else:
            pending = sum(1 for p in protocols.values() if not p.halted)
            raise SimulationTimeout(max_rounds, pending)

        results = {node: protocol.result for node, protocol in protocols.items()}
        return SimulationResult(
            rounds=rounds_used,
            metrics=recorder.snapshot(),
            results=results,
            protocols=protocols,
            channel_history=channel.history,
        )

    # ------------------------------------------------------------------
    # flyweight dispatch (see repro.sim.flyweight)
    # ------------------------------------------------------------------
    def _flyweight_environment(self) -> FlyweightEnvironment:
        """Return the columnar environment, built once and reused across runs."""
        version = getattr(self._graph, "_version", None)
        env = self._flyweight_env
        if env is None or self._flyweight_env_version != version:
            rows = self._topology_rows()
            env = FlyweightEnvironment(
                nodes=tuple(row[0] for row in rows),
                neighbors=tuple(row[1] for row in rows),
                link_weights=tuple(row[2] for row in rows),
                n=self.num_nodes if self._n_known else None,
                streams=self._streams,
            )
            self._flyweight_env = env
            self._flyweight_env_version = version
        return env

    def _run_flyweight(
        self,
        protocol_cls: type,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]],
        recorder: MetricsRecorder,
        network: PointToPointNetwork,
        channel: SlottedChannel,
        max_rounds: int,
        adversity: Optional[AdversityState],
    ) -> SimulationResult:
        """Round loop for one shared flyweight instance over slot state.

        Equivalent, message for message, to :meth:`run`'s classic loop over n
        per-node instances: slots are dispatched in node order, each acting
        slot's sends are accepted as one batch, and the slot resolves once
        after all nodes acted.  When the protocol declares ``MESSAGE_DRIVEN``
        the per-round dispatch walks only the slots that received mail (in
        slot = node order) instead of every active node — a no-op skip by the
        declaration, and the flat win at scale.
        """
        env = self._flyweight_environment()
        env.inputs = inputs if inputs is not None else {}
        protocol: FlyweightProtocol = protocol_cls(env)

        if adversity is not None:
            return self._run_flyweight_adversity(
                protocol, env, recorder, network, channel, max_rounds, adversity
            )

        deliver = network.deliver
        accept_sends = network.accept_sends
        resolve_slot = channel.resolve_slot
        record_round = recorder.record_round
        nodes = env.nodes
        slot_of = env.slot_of
        num_slots = env.num_slots
        halted = protocol.halted
        on_round = protocol.on_round
        sends = protocol._sends
        writes = protocol._writes
        message_driven = protocol.MESSAGE_DRIVEN

        last_event: ChannelEvent = idle_event(-1)
        rounds_used = 0
        for round_index in range(max_rounds):
            if protocol.active_count == 0 and not network.has_in_flight():
                break

            inboxes = deliver(round_index)
            public_event = last_event.public_view()
            mark = 0
            if round_index == 0:
                # on_start for every slot; nodes may also react immediately
                # (mirrors the classic loop, which does not re-check halted
                # between on_start and the round-0 mail dispatch)
                on_start = protocol.on_start
                get_inbox = inboxes.get
                for slot in range(num_slots):
                    node = nodes[slot]
                    on_start(slot)
                    inbox = get_inbox(node)
                    if inbox:
                        on_round(slot, inbox, public_event)
                    if len(sends) > mark:
                        accept_sends(node, sends[mark:], round_index)
                        mark = len(sends)
            elif inboxes:
                if message_driven:
                    # only slots with mail can change state; dispatch them in
                    # slot (= node) order so message emission order matches
                    # the classic full scan exactly
                    order = sorted(slot_of[node] for node in inboxes)
                    for slot in order:
                        if halted[slot]:
                            continue
                        node = nodes[slot]
                        on_round(slot, inboxes[node], public_event)
                        if len(sends) > mark:
                            accept_sends(node, sends[mark:], round_index)
                            mark = len(sends)
                else:
                    get_inbox = inboxes.get
                    for slot in range(num_slots):
                        if halted[slot]:
                            continue
                        node = nodes[slot]
                        on_round(slot, get_inbox(node) or NO_MESSAGES, public_event)
                        if len(sends) > mark:
                            accept_sends(node, sends[mark:], round_index)
                            mark = len(sends)
            elif not message_driven:
                for slot in range(num_slots):
                    if halted[slot]:
                        continue
                    node = nodes[slot]
                    on_round(slot, NO_MESSAGES, public_event)
                    if len(sends) > mark:
                        accept_sends(node, sends[mark:], round_index)
                        mark = len(sends)
            if mark:
                del sends[:]
            last_event = resolve_slot(round_index, writes)
            if writes:
                del writes[:]
            record_round(1)
            rounds_used = round_index + 1
        else:
            raise SimulationTimeout(max_rounds, protocol.active_count)

        return SimulationResult(
            rounds=rounds_used,
            metrics=recorder.snapshot(),
            results=protocol.results_by_node(),
            protocols={},
            channel_history=channel.history,
        )

    def _run_flyweight_adversity(
        self,
        protocol: FlyweightProtocol,
        env: FlyweightEnvironment,
        recorder: MetricsRecorder,
        network: PointToPointNetwork,
        channel: SlottedChannel,
        max_rounds: int,
        adversity: AdversityState,
    ) -> SimulationResult:
        """The flyweight round loop with the adversity schedule applied.

        Mirrors :meth:`_run_under_adversity` exactly — full per-round scan
        over the slots (so crash skips, deferred starts and the stall
        detector see the same sequence of events, and the network's fault
        draws happen in the same order), with the flyweight's columnar state
        in place of per-node protocol objects.  ``MESSAGE_DRIVEN`` protocols
        merely skip the no-op empty-inbox calls; everything observable is
        unchanged.
        """
        deliver = network.deliver
        accept_sends = network.accept_sends
        resolve_slot = channel.resolve_slot
        record_round = recorder.record_round
        node_crashed = adversity.node_crashed
        count_crash_round = adversity.count_crash_round
        nodes = env.nodes
        num_slots = env.num_slots
        halted = protocol.halted
        on_start = protocol.on_start
        on_round = protocol.on_round
        sends = protocol._sends
        writes = protocol._writes
        message_driven = protocol.MESSAGE_DRIVEN

        budget = min(max_rounds, adversity.round_budget(num_slots))
        patience = adversity.stall_patience()
        started = bytearray(num_slots)
        quiet_streak = 0

        last_event: ChannelEvent = idle_event(-1)
        rounds_used = 0
        for round_index in range(budget):
            if protocol.active_count == 0 and not network.has_in_flight():
                break

            inboxes = deliver(round_index)
            get_inbox = inboxes.get
            public_event = last_event.public_view()
            mark = 0
            for slot in range(num_slots):
                if halted[slot]:
                    continue
                node = nodes[slot]
                if node_crashed(node, round_index):
                    count_crash_round()
                    continue
                inbox = get_inbox(node)
                if not started[slot]:
                    started[slot] = 1
                    on_start(slot)
                    if inbox:
                        on_round(slot, inbox, public_event)
                elif inbox:
                    on_round(slot, inbox, public_event)
                elif not message_driven:
                    on_round(slot, NO_MESSAGES, public_event)
                if len(sends) > mark:
                    accept_sends(node, sends[mark:], round_index)
                    mark = len(sends)
            acted_any = mark > 0 or bool(writes)
            if mark:
                del sends[:]
            last_event = resolve_slot(round_index, writes)
            if writes:
                del writes[:]
            record_round(1)
            rounds_used = round_index + 1

            if inboxes or acted_any or not last_event.is_idle():
                quiet_streak = 0
            else:
                quiet_streak += 1
                if quiet_streak > patience:
                    pending = protocol.active_count
                    if pending == 0:
                        # everything halted; only undeliverable stragglers
                        # keep the network "in flight" — that is completion
                        break
                    raise AdversityAbort(
                        rounds_used, pending, reason="stalled (no progress)"
                    )
        else:
            pending = protocol.active_count
            if pending:
                raise AdversityAbort(budget, pending)

        return SimulationResult(
            rounds=rounds_used,
            metrics=recorder.snapshot(),
            results=protocol.results_by_node(),
            protocols={},
            channel_history=channel.history,
        )

    def _run_under_adversity(
        self,
        adversity: AdversityState,
        recorder: MetricsRecorder,
        network: PointToPointNetwork,
        channel: SlottedChannel,
        protocols: Dict[NodeId, NodeProtocol],
        active: List[Tuple[NodeId, NodeProtocol, Callable, Callable]],
        max_rounds: int,
        stop_when: Optional[Callable[[Dict[NodeId, NodeProtocol]], bool]],
    ) -> SimulationResult:
        """The round loop with the adversity schedule applied.

        Differences from the fault-free loop:

        * a node inside a crash window is skipped entirely — it neither
          observes nor acts, and its pending start (``on_start``) is deferred
          to its first up round, so a node crashed from round 0 joins late
          with full recovery semantics;
        * the budget is the schedule's round budget (capped by
          ``max_rounds``) rather than the protocol-bug safety bound;
        * a stall detector ends runs the faults have wedged: after
          ``stall_patience()`` consecutive rounds with no deliveries, no
          node actions and an un-jammed idle slot, nothing can change
          anymore except through further fault draws, so the run aborts
          without walking the rest of the budget.

        Kept as a separate loop so the fault-free path stays byte-identical
        (and on its fast paths).
        """
        deliver = network.deliver
        accept_sends = network.accept_sends
        resolve_slot = channel.resolve_slot
        record_round = recorder.record_round
        node_crashed = adversity.node_crashed
        count_crash_round = adversity.count_crash_round

        budget = min(max_rounds, adversity.round_budget(len(protocols)))
        patience = adversity.stall_patience()
        started: Dict[NodeId, bool] = {node: False for node in protocols}
        quiet_streak = 0

        last_event: ChannelEvent = idle_event(-1)
        rounds_used = 0
        for round_index in range(budget):
            if not active and not network.has_in_flight():
                break
            if stop_when is not None and stop_when(protocols):
                break

            inboxes = deliver(round_index)
            get_inbox = inboxes.get
            writes: List[Tuple[NodeId, Any]] = []
            public_event = last_event.public_view()
            halted_any = False
            acted_any = False
            for node, protocol, on_round, collect_actions in active:
                if node_crashed(node, round_index):
                    count_crash_round()
                    continue
                if not started[node]:
                    started[node] = True
                    protocol.on_start()
                    inbox = get_inbox(node)
                    if inbox:
                        on_round(inbox, public_event)
                else:
                    on_round(get_inbox(node) or NO_MESSAGES, public_event)
                if protocol._acted:
                    acted_any = True
                    outbox, payload, wrote = collect_actions()
                    if outbox:
                        accept_sends(node, outbox, round_index)
                    if wrote:
                        writes.append((node, payload))
                if protocol._halted:
                    halted_any = True
            if halted_any:
                active = [entry for entry in active if not entry[1]._halted]
            last_event = resolve_slot(round_index, writes)
            record_round(1)
            rounds_used = round_index + 1

            if inboxes or acted_any or not last_event.is_idle():
                quiet_streak = 0
            else:
                quiet_streak += 1
                if quiet_streak > patience:
                    pending = sum(1 for p in protocols.values() if not p.halted)
                    if pending == 0:
                        # everything halted; only undeliverable stragglers
                        # keep the network "in flight" — that is completion
                        break
                    raise AdversityAbort(
                        rounds_used, pending, reason="stalled (no progress)"
                    )
        else:
            pending = sum(1 for p in protocols.values() if not p.halted)
            if pending:
                raise AdversityAbort(budget, pending)

        results = {node: protocol.result for node, protocol in protocols.items()}
        return SimulationResult(
            rounds=rounds_used,
            metrics=recorder.snapshot(),
            results=results,
            protocols=protocols,
            channel_history=channel.history,
        )
