"""Exception hierarchy for the simulator and the protocols running on it."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the simulation substrate."""


class SimulationTimeout(SimulationError):
    """Raised when a simulation exceeds its configured maximum number of rounds.

    Protocols in this library are designed to terminate; hitting the round
    limit therefore indicates either a protocol bug or a limit that is too
    small for the instance size, and the error message reports both.
    """

    def __init__(self, rounds: int, pending: int) -> None:
        self.rounds = rounds
        self.pending = pending
        super().__init__(
            f"simulation did not terminate within {rounds} rounds; "
            f"{pending} node(s) still active"
        )


class ProtocolError(SimulationError):
    """Raised when a node protocol violates the model.

    Examples: sending a message to a non-neighbour, writing twice to the same
    channel slot, or sending two messages over the same link in one round.
    """


class TopologyError(SimulationError):
    """Raised when a network is constructed from an unusable topology."""
