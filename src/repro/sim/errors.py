"""Exception hierarchy for the simulator and the protocols running on it."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the simulation substrate."""


class SimulationTimeout(SimulationError):
    """Raised when a simulation exceeds its configured maximum number of rounds.

    Protocols in this library are designed to terminate; hitting the round
    limit therefore indicates either a protocol bug or a limit that is too
    small for the instance size, and the error message reports both.
    """

    def __init__(self, rounds: int, pending: int) -> None:
        """Record the limit reached and how many nodes were still active."""
        self.rounds = rounds
        self.pending = pending
        super().__init__(
            f"simulation did not terminate within {rounds} rounds; "
            f"{pending} node(s) still active"
        )


class AdversityAbort(SimulationTimeout):
    """Raised when a run under an adversity schedule is cut off.

    A protocol that loses a message it will never retransmit, or whose
    neighbours crash mid-broadcast, can *correctly* fail to terminate; the
    adversity layer bounds such runs with a round budget and a stall
    detector and raises this error instead of hanging.  Experiments catch it
    and report a bounded ``"abort"`` row.

    Subclasses :class:`SimulationTimeout` so existing safety-net handlers
    keep working; ``reason`` distinguishes a budget cutoff from a detected
    stall or deadlock.
    """

    def __init__(self, rounds: int, pending: int, reason: str = "round budget exhausted") -> None:
        """Record the cutoff point and why the adversary ended the run."""
        self.reason = reason
        super().__init__(rounds, pending)
        # SimulationTimeout's message blames a protocol bug; under an
        # adversity schedule the non-termination is the adversary's doing
        self.args = (
            f"run aborted under adversity after {rounds} round(s) "
            f"({reason}); {pending} node(s) still active",
        )


class ProtocolError(SimulationError):
    """Raised when a node protocol violates the model.

    Examples: sending a message to a non-neighbour, writing twice to the same
    channel slot, or sending two messages over the same link in one round.
    """


class TopologyError(SimulationError):
    """Raised when a network is constructed from an unusable topology."""
