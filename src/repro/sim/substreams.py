"""Deterministic per-node random substreams derived from one master seed.

Until PR 7 every simulation seeded its per-node random sources by drawing
from a *master* ``random.Random`` in node-iteration order — cheap for one
node, but at n = 10⁵ the 2 × n ``Random`` constructions and master draws
were a measurable slice of a sweep point, and the derivation was coupled to
the iteration order (reordering the node loop would silently reseed every
node).  This module replaces the chain of master draws with the hashed
substream pattern the adversity layer already uses
(:func:`repro.sim.adversity.adversity_stream_seed`):

* a node's seed is a stable 63-bit sha256 hash of
  ``(master seed, scope, node id)`` — independent of process, executor,
  node-iteration order and Python hash randomisation;
* the per-node ``random.Random`` is only materialised when a protocol
  actually touches ``ctx.rng`` (most protocols never do), so fault-free
  deterministic runs construct **zero** per-node generators;
* distinct ``scope`` strings (one per simulation layer, e.g.
  ``"sim.multimedia"`` vs ``"sim.synchronizer"``) keep two sims sharing a
  master seed on the same graph from handing their nodes correlated
  streams.

Switching from master-draw chains to hashed substreams changes which values
a node's generator produces, so PR 7 started golden era **v4** for the
protocols that consume ``ctx.rng`` (see ``tests/test_perf_equivalence.py``);
workloads that never touch per-node streams stay pinned by v1–v3.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Hashable

NodeId = Hashable


def substream_seed(master_seed: object, scope: str, *key: object) -> int:
    """Derive the 63-bit substream seed for ``key`` under ``master_seed``.

    The seed is a stable sha256 hash of ``(master_seed, scope, *key,
    "substream")``, so it depends only on the values (via ``repr``) — not on
    the order substreams are requested in, the process, or the executor
    computing the sweep point.  ``scope`` names the consuming layer so two
    layers sharing one master seed derive uncorrelated families.
    """
    payload = json.dumps(
        [repr(master_seed), scope] + [repr(part) for part in key] + ["substream"]
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class NodeStreams:
    """The per-node substream family of one simulation.

    One instance replaces the old per-run master generator: it holds only
    the ``(master seed, scope)`` pair and derives any node's seed or
    generator on demand, in O(1), independent of every other node.  It is
    therefore safe to share across runs on the same network object — it has
    no draw position to corrupt.
    """

    __slots__ = ("_master_seed", "_scope")

    def __init__(self, master_seed: object, scope: str) -> None:
        """Bind the family to a ``master_seed`` and a consuming ``scope``."""
        self._master_seed = master_seed
        self._scope = scope

    @property
    def scope(self) -> str:
        """Return the scope string naming the consuming simulation layer."""
        return self._scope

    def seed_for(self, node: NodeId) -> int:
        """Return ``node``'s substream seed (stable across processes)."""
        return substream_seed(self._master_seed, self._scope, node)

    def rng_for(self, node: NodeId) -> random.Random:
        """Materialise ``node``'s private generator from its substream seed."""
        return random.Random(substream_seed(self._master_seed, self._scope, node))
