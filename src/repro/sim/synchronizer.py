"""The channel synchronizer of Section 7.1.

A synchronizer (Awerbuch, 1985) lets a synchronous algorithm run on an
asynchronous point-to-point network.  The paper observes that the multiaccess
channel gives a particularly cheap synchronizer:

* every algorithm message is acknowledged on the point-to-point link it
  arrived on;
* a node transmits a **busy tone** on the channel as long as any message it
  sent is still unacknowledged;
* an **idle** channel slot is interpreted as the clock pulse that starts the
  next simulated round.

Corollary 4 of the paper: the resulting execution at most doubles the message
complexity (because of the acknowledgements) and multiplies the time
complexity by at most a constant factor.  :class:`ChannelSynchronizer` runs a
synchronous :class:`~repro.sim.node.NodeProtocol` set over an asynchronous
network with bounded random link delays and reports both cost measures so the
experiment can verify the corollary empirically.

The synchronous algorithm may itself use the channel; following Section 7.2
we assume an FDMA-provided second channel for the busy tones, so algorithm
channel writes are resolved once per simulated round on the primary channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.sim.adversity import AdversityState
from repro.sim.channel import SlottedChannel
from repro.sim.engine import EventQueue
from repro.sim.errors import AdversityAbort, SimulationTimeout
from repro.sim.events import Message
from repro.sim.node import NO_MESSAGES, NodeContext, NodeProtocol
from repro.topology.graph import WeightedGraph

NodeId = Hashable
ProtocolFactory = Callable[[NodeContext], NodeProtocol]


@dataclass
class SynchronizerReport:
    """Cost breakdown of one synchronized asynchronous execution.

    Attributes:
        pulses: number of simulated synchronous rounds generated.
        asynchronous_time: total asynchronous time units elapsed.
        algorithm_messages: point-to-point messages sent by the algorithm.
        ack_messages: acknowledgements added by the synchronizer.
        busy_tone_slots: channel slots occupied by busy tones.
        results: each node's declared output.
    """

    pulses: int
    asynchronous_time: float
    algorithm_messages: int
    ack_messages: int
    busy_tone_slots: int
    results: Dict[NodeId, Any]

    @property
    def total_messages(self) -> int:
        """Algorithm messages plus acknowledgements."""
        return self.algorithm_messages + self.ack_messages

    @property
    def message_overhead_factor(self) -> float:
        """Ratio of total to algorithm messages (Corollary 4 bounds this by 2)."""
        if self.algorithm_messages == 0:
            return 1.0
        return self.total_messages / self.algorithm_messages


class ChannelSynchronizer:
    """Run a synchronous protocol on an asynchronous network using the channel."""

    def __init__(
        self,
        graph: WeightedGraph,
        max_link_delay: int = 3,
        seed: Optional[int] = None,
        n_known: bool = True,
    ) -> None:
        """Create a synchronizer over ``graph``.

        Args:
            graph: the point-to-point topology.
            max_link_delay: every message (and acknowledgement) experiences an
                integer delay drawn uniformly from ``[1, max_link_delay]``
                asynchronous time units.
            seed: master seed for delays and per-node random sources.
            n_known: whether nodes are told ``n``.
        """
        if max_link_delay < 1:
            raise ValueError("max_link_delay must be at least 1")
        self._graph = graph
        self._max_delay = max_link_delay
        self._seed = seed
        self._n_known = n_known

    def run(
        self,
        protocol_factory: ProtocolFactory,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]] = None,
        max_pulses: int = 1_000_000,
        adversity: Optional[AdversityState] = None,
    ) -> SynchronizerReport:
        """Execute the protocol until every node halts.

        With an ``adversity`` state attached, the schedule's faults apply at
        this layer's natural seams: a crashed node skips its pulses (its
        inbox buffers until recovery; link-level acknowledgements still
        flow), a lost or churn-dropped message is never delivered — and,
        because its acknowledgement is then never sent, the busy tone stays
        up forever, which the run detects as a deadlock and converts into an
        :class:`~repro.sim.errors.AdversityAbort` instead of spinning — and
        the pulse budget shrinks to the schedule's round budget.

        Raises:
            SimulationTimeout: if the pulse budget is exhausted.
            AdversityAbort: if an adversity schedule deadlocks the busy tone
                or exhausts the budget.
        """
        adv = adversity
        loss_rng: Optional[random.Random] = None
        started: Dict[NodeId, bool] = {}
        if adv is not None:
            adv.bind_topology(self._graph)
            loss_rng = adv.spawn_rng()
            max_pulses = min(max_pulses, adv.round_budget(self._graph.num_nodes()))
        master = random.Random(self._seed)
        delay_rng = random.Random(master.randrange(2**63))
        contexts: Dict[NodeId, NodeContext] = {}
        n = self._graph.num_nodes() if self._n_known else None
        for node in self._graph.nodes():
            neighbors = tuple(self._graph.iter_neighbors(node))
            weights = dict(self._graph.neighbor_items(node))
            contexts[node] = NodeContext(
                node_id=node,
                neighbors=neighbors,
                link_weights=weights,
                n=n,
                rng=random.Random(master.randrange(2**63)),
                extra=dict(inputs.get(node, {})) if inputs else {},
            )
        protocols = {node: protocol_factory(ctx) for node, ctx in contexts.items()}

        queue = EventQueue()
        channel = SlottedChannel(
            adversity=adv.channel_adversity() if adv is not None else None
        )
        pending_inbox: Dict[NodeId, List[Message]] = {node: [] for node in protocols}
        # one aggregate unacknowledged-message count: the busy tone is raised
        # while *any* message is unacknowledged, so a single total replaces
        # the O(n) per-node scan the busy check used to pay every slot
        counters = {"algorithm": 0, "ack": 0, "busy_slots": 0, "unacked": 0}

        def deliver(message: Message) -> None:
            if adv is not None and adv.drop_message(
                loss_rng, message.sender, message.receiver, pulses
            ):
                # lost in transit: never delivered, never acknowledged
                return
            pending_inbox[message.receiver].append(message)
            # acknowledgement travels back over the same link
            counters["ack"] += 1
            queue.schedule(delay_rng.randint(1, self._max_delay), ack)

        def ack() -> None:
            counters["unacked"] -= 1

        def dispatch(node: NodeId, protocol: NodeProtocol, pulse: int) -> None:
            if not protocol._acted:
                return
            outbox, payload, wrote = protocol._collect_actions()
            if outbox:
                counters["algorithm"] += len(outbox)
                counters["unacked"] += len(outbox)
                for receiver, msg_payload in outbox:
                    queue.schedule(
                        delay_rng.randint(1, self._max_delay),
                        deliver,
                        Message(node, receiver, msg_payload, pulse),
                    )
            if wrote:
                channel_writes.append((node, payload))

        channel_writes: List = []

        # pulse 0: on_start (deferred past the crash window for a node that
        # starts the run crashed — it joins at its first up pulse)
        pulses = 0
        active: List = []
        for node, protocol in protocols.items():
            if adv is not None and adv.node_crashed(node, 0):
                adv.count_crash_round()
                started[node] = False
                active.append((node, protocol))
                continue
            started[node] = True
            protocol.on_start()
            dispatch(node, protocol, 0)
            if not protocol._halted:
                active.append((node, protocol))
        pulses = 1

        while pulses < max_pulses:
            if not active and queue.is_empty():
                break
            # advance asynchronous time one slot at a time; the busy tone is
            # raised while any message remains unacknowledged or in flight.
            # Event times are integral (integer delays from integral starts),
            # so a stretch of slots with no events is uniformly busy and can
            # be accounted for in one arithmetic jump.
            while True:
                if adv is not None and counters["unacked"] > 0 and queue.is_empty():
                    # a dropped message's acknowledgement will never arrive,
                    # so the busy tone would stay up forever
                    pending = sum(1 for p in protocols.values() if not p.halted)
                    raise AdversityAbort(
                        pulses, pending, reason="busy-tone deadlock (lost message)"
                    )
                next_time = queue.peek_time()
                if next_time is not None:
                    dead = int(next_time - queue.now) - 1
                    if dead > 0:
                        # the stretch is known event-free, so the clock jumps
                        # over it in O(1) instead of walking slot by slot
                        counters["busy_slots"] += dead
                        queue.fast_forward(queue.now + dead)
                slot_end = queue.now + 1.0
                queue.run_until(slot_end)
                if counters["unacked"] > 0 or not queue.is_empty():
                    counters["busy_slots"] += 1
                else:
                    break
            # idle slot observed: generate the next pulse
            event = channel.resolve_slot(pulses - 1, channel_writes)
            channel_writes = []
            public = event.public_view()
            halted_any = False
            for node, protocol in active:
                if adv is not None:
                    if adv.node_crashed(node, pulses):
                        adv.count_crash_round()
                        continue
                    if not started.get(node, True):
                        # first up pulse after starting the run crashed
                        started[node] = True
                        protocol.on_start()
                        inbox = pending_inbox[node]
                        if inbox:
                            pending_inbox[node] = []
                            protocol.on_round(inbox, public)
                        dispatch(node, protocol, pulses)
                        if protocol._halted:
                            halted_any = True
                        continue
                inbox = pending_inbox[node]
                if inbox:
                    pending_inbox[node] = []
                else:
                    # never hand out the live (empty) pending list: the next
                    # slot's deliveries append to it
                    inbox = NO_MESSAGES
                protocol.on_round(inbox, public)
                dispatch(node, protocol, pulses)
                if protocol._halted:
                    halted_any = True
            if halted_any:
                active = [entry for entry in active if not entry[1]._halted]
            pulses += 1
        else:
            pending = sum(1 for p in protocols.values() if not p.halted)
            if adv is not None:
                raise AdversityAbort(max_pulses, pending)
            raise SimulationTimeout(max_pulses, pending)

        return SynchronizerReport(
            pulses=pulses,
            asynchronous_time=queue.now,
            algorithm_messages=counters["algorithm"],
            ack_messages=counters["ack"],
            busy_tone_slots=counters["busy_slots"],
            results={node: protocol.result for node, protocol in protocols.items()},
        )
