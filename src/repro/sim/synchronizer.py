"""The channel synchronizer of Section 7.1.

A synchronizer (Awerbuch, 1985) lets a synchronous algorithm run on an
asynchronous point-to-point network.  The paper observes that the multiaccess
channel gives a particularly cheap synchronizer:

* every algorithm message is acknowledged on the point-to-point link it
  arrived on;
* a node transmits a **busy tone** on the channel as long as any message it
  sent is still unacknowledged;
* an **idle** channel slot is interpreted as the clock pulse that starts the
  next simulated round.

Corollary 4 of the paper: the resulting execution at most doubles the message
complexity (because of the acknowledgements) and multiplies the time
complexity by at most a constant factor.  :class:`ChannelSynchronizer` runs a
synchronous :class:`~repro.sim.node.NodeProtocol` set over an asynchronous
network with bounded random link delays and reports both cost measures so the
experiment can verify the corollary empirically.

The synchronous algorithm may itself use the channel; following Section 7.2
we assume an FDMA-provided second channel for the busy tones, so algorithm
channel writes are resolved once per simulated round on the primary channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.sim.adversity import AdversityState
from repro.sim.channel import SlottedChannel
from repro.sim.engine import EventQueue
from repro.sim.errors import AdversityAbort, SimulationTimeout
from repro.sim.events import Message
from repro.sim.flyweight import FlyweightProtocol, is_flyweight_factory
from repro.sim.multimedia import shared_topology_rows
from repro.sim.node import NO_MESSAGES, NodeContext, NodeProtocol
from repro.sim.substreams import NodeStreams
from repro.topology.graph import WeightedGraph

NodeId = Hashable
ProtocolFactory = Callable[[NodeContext], NodeProtocol]

#: Substream scope for per-node random sources under the synchronizer (kept
#: distinct from the synchronous sim's scope so a shared master seed never
#: hands the two layers correlated per-node streams).
STREAM_SCOPE = "sim.synchronizer"


@dataclass
class SynchronizerReport:
    """Cost breakdown of one synchronized asynchronous execution.

    Attributes:
        pulses: number of simulated synchronous rounds generated.
        asynchronous_time: total asynchronous time units elapsed.
        algorithm_messages: point-to-point messages sent by the algorithm.
        ack_messages: acknowledgements added by the synchronizer.
        busy_tone_slots: channel slots occupied by busy tones.
        results: each node's declared output.
    """

    pulses: int
    asynchronous_time: float
    algorithm_messages: int
    ack_messages: int
    busy_tone_slots: int
    results: Dict[NodeId, Any]

    @property
    def total_messages(self) -> int:
        """Algorithm messages plus acknowledgements."""
        return self.algorithm_messages + self.ack_messages

    @property
    def message_overhead_factor(self) -> float:
        """Ratio of total to algorithm messages (Corollary 4 bounds this by 2)."""
        if self.algorithm_messages == 0:
            return 1.0
        return self.total_messages / self.algorithm_messages


class ChannelSynchronizer:
    """Run a synchronous protocol on an asynchronous network using the channel."""

    def __init__(
        self,
        graph: WeightedGraph,
        max_link_delay: int = 3,
        seed: Optional[int] = None,
        n_known: bool = True,
    ) -> None:
        """Create a synchronizer over ``graph``.

        Args:
            graph: the point-to-point topology.
            max_link_delay: every message (and acknowledgement) experiences an
                integer delay drawn uniformly from ``[1, max_link_delay]``
                asynchronous time units.
            seed: master seed for delays and per-node random sources.
            n_known: whether nodes are told ``n``.
        """
        if max_link_delay < 1:
            raise ValueError("max_link_delay must be at least 1")
        self._graph = graph
        self._max_delay = max_link_delay
        self._seed = seed
        self._n_known = n_known

    def run(
        self,
        protocol_factory: ProtocolFactory,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]] = None,
        max_pulses: int = 1_000_000,
        adversity: Optional[AdversityState] = None,
    ) -> SynchronizerReport:
        """Execute the protocol until every node halts.

        With an ``adversity`` state attached, the schedule's faults apply at
        this layer's natural seams: a crashed node skips its pulses (its
        inbox buffers until recovery; link-level acknowledgements still
        flow), a lost or churn-dropped message is never delivered — and,
        because its acknowledgement is then never sent, the busy tone stays
        up forever, which the run detects as a deadlock and converts into an
        :class:`~repro.sim.errors.AdversityAbort` instead of spinning — and
        the pulse budget shrinks to the schedule's round budget.

        Raises:
            SimulationTimeout: if the pulse budget is exhausted.
            AdversityAbort: if an adversity schedule deadlocks the busy tone
                or exhausts the budget.
        """
        adv = adversity
        loss_rng: Optional[random.Random] = None
        started: Dict[NodeId, bool] = {}
        if adv is not None:
            adv.bind_topology(self._graph)
            loss_rng = adv.spawn_rng()
            max_pulses = min(max_pulses, adv.round_budget(self._graph.num_nodes()))
        # the delay stream derivation is load-bearing: it predates the
        # per-node substream family and every seeded synchronizer result
        # depends on it, so it stays a master draw
        master = random.Random(self._seed)
        delay_rng = random.Random(master.randrange(2**63))

        if is_flyweight_factory(protocol_factory):
            return self._run_flyweight(
                protocol_factory,
                inputs=inputs,
                max_pulses=max_pulses,
                adv=adv,
                loss_rng=loss_rng,
                delay_rng=delay_rng,
            )

        streams = NodeStreams(self._seed, STREAM_SCOPE)
        contexts: Dict[NodeId, NodeContext] = {}
        n = self._graph.num_nodes() if self._n_known else None
        for node, neighbors, weights in shared_topology_rows(self._graph):
            contexts[node] = NodeContext(
                node_id=node,
                neighbors=neighbors,
                link_weights=weights,
                n=n,
                extra=dict(inputs.get(node, {})) if inputs else {},
                rng_factory=streams.rng_for,
            )
        protocols = {node: protocol_factory(ctx) for node, ctx in contexts.items()}

        queue = EventQueue()
        channel = SlottedChannel(
            adversity=adv.channel_adversity() if adv is not None else None
        )
        pending_inbox: Dict[NodeId, List[Message]] = {node: [] for node in protocols}
        # one aggregate unacknowledged-message count: the busy tone is raised
        # while *any* message is unacknowledged, so a single total replaces
        # the O(n) per-node scan the busy check used to pay every slot
        counters = {"algorithm": 0, "ack": 0, "busy_slots": 0, "unacked": 0}

        def deliver(message: Message) -> None:
            """Deliver one link message (or lose it) and schedule its ack."""
            if adv is not None and adv.drop_message(
                loss_rng, message.sender, message.receiver, pulses
            ):
                # lost in transit: never delivered, never acknowledged
                return
            pending_inbox[message.receiver].append(message)
            # acknowledgement travels back over the same link
            counters["ack"] += 1
            queue.schedule(delay_rng.randint(1, self._max_delay), ack)

        def ack() -> None:
            """Count one acknowledgement arrival (lowers the busy tone)."""
            counters["unacked"] -= 1

        def dispatch(node: NodeId, protocol: NodeProtocol, pulse: int) -> None:
            """Schedule one node's queued sends and channel writes."""
            if not protocol._acted:
                return
            outbox, payload, wrote = protocol._collect_actions()
            if outbox:
                counters["algorithm"] += len(outbox)
                counters["unacked"] += len(outbox)
                for receiver, msg_payload in outbox:
                    queue.schedule(
                        delay_rng.randint(1, self._max_delay),
                        deliver,
                        Message(node, receiver, msg_payload, pulse),
                    )
            if wrote:
                channel_writes.append((node, payload))

        channel_writes: List = []

        # pulse 0: on_start (deferred past the crash window for a node that
        # starts the run crashed — it joins at its first up pulse)
        pulses = 0
        active: List = []
        for node, protocol in protocols.items():
            if adv is not None and adv.node_crashed(node, 0):
                adv.count_crash_round()
                started[node] = False
                active.append((node, protocol))
                continue
            started[node] = True
            protocol.on_start()
            dispatch(node, protocol, 0)
            if not protocol._halted:
                active.append((node, protocol))
        pulses = 1

        while pulses < max_pulses:
            if not active and queue.is_empty():
                break
            # advance asynchronous time one slot at a time; the busy tone is
            # raised while any message remains unacknowledged or in flight.
            # Event times are integral (integer delays from integral starts),
            # so a stretch of slots with no events is uniformly busy and can
            # be accounted for in one arithmetic jump.
            while True:
                if adv is not None and counters["unacked"] > 0 and queue.is_empty():
                    # a dropped message's acknowledgement will never arrive,
                    # so the busy tone would stay up forever
                    pending = sum(1 for p in protocols.values() if not p.halted)
                    raise AdversityAbort(
                        pulses, pending, reason="busy-tone deadlock (lost message)"
                    )
                next_time = queue.peek_time()
                if next_time is not None:
                    dead = int(next_time - queue.now) - 1
                    if dead > 0:
                        # the stretch is known event-free, so the clock jumps
                        # over it in O(1) instead of walking slot by slot
                        counters["busy_slots"] += dead
                        queue.fast_forward(queue.now + dead)
                slot_end = queue.now + 1.0
                queue.run_until(slot_end)
                if counters["unacked"] > 0 or not queue.is_empty():
                    counters["busy_slots"] += 1
                else:
                    break
            # idle slot observed: generate the next pulse
            event = channel.resolve_slot(pulses - 1, channel_writes)
            channel_writes = []
            public = event.public_view()
            halted_any = False
            for node, protocol in active:
                if adv is not None:
                    if adv.node_crashed(node, pulses):
                        adv.count_crash_round()
                        continue
                    if not started.get(node, True):
                        # first up pulse after starting the run crashed
                        started[node] = True
                        protocol.on_start()
                        inbox = pending_inbox[node]
                        if inbox:
                            pending_inbox[node] = []
                            protocol.on_round(inbox, public)
                        dispatch(node, protocol, pulses)
                        if protocol._halted:
                            halted_any = True
                        continue
                inbox = pending_inbox[node]
                if inbox:
                    pending_inbox[node] = []
                else:
                    # never hand out the live (empty) pending list: the next
                    # slot's deliveries append to it
                    inbox = NO_MESSAGES
                protocol.on_round(inbox, public)
                dispatch(node, protocol, pulses)
                if protocol._halted:
                    halted_any = True
            if halted_any:
                active = [entry for entry in active if not entry[1]._halted]
            pulses += 1
        else:
            pending = sum(1 for p in protocols.values() if not p.halted)
            if adv is not None:
                raise AdversityAbort(max_pulses, pending)
            raise SimulationTimeout(max_pulses, pending)

        return SynchronizerReport(
            pulses=pulses,
            asynchronous_time=queue.now,
            algorithm_messages=counters["algorithm"],
            ack_messages=counters["ack"],
            busy_tone_slots=counters["busy_slots"],
            results={node: protocol.result for node, protocol in protocols.items()},
        )

    def _run_flyweight(
        self,
        protocol_cls: type,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]],
        max_pulses: int,
        adv: Optional[AdversityState],
        loss_rng: Optional[random.Random],
        delay_rng: random.Random,
    ) -> SynchronizerReport:
        """The pulse loop for one shared flyweight instance over slot state.

        Pulse-for-pulse equivalent to :meth:`run`'s classic loop: the
        busy-tone accounting, the channel resolution point and the delay-draw
        order (acting nodes in node order, messages in send order) are
        identical.  The fault-free path of a ``MESSAGE_DRIVEN`` protocol
        dispatches only slots whose inbox received mail since their last
        dispatch (tracked by a dirty list the delivery callback maintains) —
        profiling e10 at n = 102400 showed ~2 × 10⁸ empty-inbox dispatch
        calls, which this removes wholesale.  Under adversity the full
        classic scan is kept so crash skips and deferred starts follow the
        same sequence.
        """
        from repro.sim.flyweight import FlyweightEnvironment

        rows = shared_topology_rows(self._graph)
        env = FlyweightEnvironment(
            nodes=tuple(row[0] for row in rows),
            neighbors=tuple(row[1] for row in rows),
            link_weights=tuple(row[2] for row in rows),
            n=self._graph.num_nodes() if self._n_known else None,
            streams=NodeStreams(self._seed, STREAM_SCOPE),
        )
        env.inputs = inputs if inputs is not None else {}
        protocol: FlyweightProtocol = protocol_cls(env)
        message_driven = protocol.MESSAGE_DRIVEN
        nodes = env.nodes
        slot_of = env.slot_of
        num_slots = env.num_slots
        halted = protocol.halted
        on_start = protocol.on_start
        on_round = protocol.on_round
        sends = protocol._sends
        channel_writes = protocol._writes
        max_delay = self._max_delay

        queue = EventQueue()
        channel = SlottedChannel(
            adversity=adv.channel_adversity() if adv is not None else None
        )
        pending_inbox: Dict[NodeId, List[Message]] = {node: [] for node in nodes}
        # slots whose inbox went empty → non-empty since their last dispatch
        # (the message-driven fast path walks this instead of every node)
        mail_nodes: List[NodeId] = []
        counters = {"algorithm": 0, "ack": 0, "busy_slots": 0, "unacked": 0}
        schedule = queue.schedule

        def deliver(message: Message) -> None:
            """Deliver one link message (or lose it) and schedule its ack."""
            if adv is not None and adv.drop_message(
                loss_rng, message.sender, message.receiver, pulses
            ):
                # lost in transit: never delivered, never acknowledged
                return
            inbox = pending_inbox[message.receiver]
            if not inbox:
                mail_nodes.append(message.receiver)
            inbox.append(message)
            # acknowledgement travels back over the same link
            counters["ack"] += 1
            schedule(delay_rng.randint(1, max_delay), ack)

        def ack() -> None:
            """Count one acknowledgement arrival (lowers the busy tone)."""
            counters["unacked"] -= 1

        def dispatch_sends(node: NodeId, pulse: int) -> None:
            """Schedule one slot's queued sends and clear the shared buffer.

            Delay draws happen in send order, as the classic dispatch() did.
            """
            counters["algorithm"] += len(sends)
            counters["unacked"] += len(sends)
            randint = delay_rng.randint
            for receiver, payload in sends:
                schedule(
                    randint(1, max_delay),
                    deliver,
                    Message(node, receiver, payload, pulse),
                )
            del sends[:]

        # pulse 0: on_start (deferred past the crash window for a node that
        # starts the run crashed — it joins at its first up pulse)
        pulses = 0
        started = bytearray(num_slots)
        for slot in range(num_slots):
            node = nodes[slot]
            if adv is not None and adv.node_crashed(node, 0):
                adv.count_crash_round()
                continue
            started[slot] = 1
            on_start(slot)
            if sends:
                dispatch_sends(node, 0)
        pulses = 1

        fast_path = adv is None and message_driven
        while pulses < max_pulses:
            if protocol.active_count == 0 and queue.is_empty():
                break
            # advance asynchronous time one slot at a time (identical to the
            # classic loop, including the event-free fast-forward)
            while True:
                if adv is not None and counters["unacked"] > 0 and queue.is_empty():
                    raise AdversityAbort(
                        pulses,
                        protocol.active_count,
                        reason="busy-tone deadlock (lost message)",
                    )
                next_time = queue.peek_time()
                if next_time is not None:
                    dead = int(next_time - queue.now) - 1
                    if dead > 0:
                        counters["busy_slots"] += dead
                        queue.fast_forward(queue.now + dead)
                slot_end = queue.now + 1.0
                queue.run_until(slot_end)
                if counters["unacked"] > 0 or not queue.is_empty():
                    counters["busy_slots"] += 1
                else:
                    break
            # idle slot observed: generate the next pulse
            event = channel.resolve_slot(pulses - 1, channel_writes)
            if channel_writes:
                del channel_writes[:]
            public = event.public_view()
            if fast_path:
                if mail_nodes:
                    # slot (= node) order keeps the delay-draw order of the
                    # classic full scan
                    order = sorted(slot_of[node] for node in mail_nodes)
                    del mail_nodes[:]
                    for slot in order:
                        if halted[slot]:
                            # halted nodes keep absorbing (and ignoring) mail
                            continue
                        node = nodes[slot]
                        inbox = pending_inbox[node]
                        pending_inbox[node] = []
                        on_round(slot, inbox, public)
                        if sends:
                            dispatch_sends(node, pulses)
            else:
                for slot in range(num_slots):
                    if halted[slot]:
                        continue
                    node = nodes[slot]
                    if adv is not None:
                        if adv.node_crashed(node, pulses):
                            adv.count_crash_round()
                            continue
                        if not started[slot]:
                            # first up pulse after starting the run crashed
                            started[slot] = 1
                            on_start(slot)
                            inbox = pending_inbox[node]
                            if inbox:
                                pending_inbox[node] = []
                                on_round(slot, inbox, public)
                            if sends:
                                dispatch_sends(node, pulses)
                            continue
                    inbox = pending_inbox[node]
                    if inbox:
                        pending_inbox[node] = []
                        on_round(slot, inbox, public)
                    elif not message_driven:
                        on_round(slot, NO_MESSAGES, public)
                    if sends:
                        dispatch_sends(node, pulses)
            pulses += 1
        else:
            pending = protocol.active_count
            if adv is not None:
                raise AdversityAbort(max_pulses, pending)
            raise SimulationTimeout(max_pulses, pending)

        return SynchronizerReport(
            pulses=pulses,
            asynchronous_time=queue.now,
            algorithm_messages=counters["algorithm"],
            ack_messages=counters["ack"],
            busy_tone_slots=counters["busy_slots"],
            results=protocol.results_by_node(),
        )
