"""The channel synchronizer of Section 7.1.

A synchronizer (Awerbuch, 1985) lets a synchronous algorithm run on an
asynchronous point-to-point network.  The paper observes that the multiaccess
channel gives a particularly cheap synchronizer:

* every algorithm message is acknowledged on the point-to-point link it
  arrived on;
* a node transmits a **busy tone** on the channel as long as any message it
  sent is still unacknowledged;
* an **idle** channel slot is interpreted as the clock pulse that starts the
  next simulated round.

Corollary 4 of the paper: the resulting execution at most doubles the message
complexity (because of the acknowledgements) and multiplies the time
complexity by at most a constant factor.  :class:`ChannelSynchronizer` runs a
synchronous :class:`~repro.sim.node.NodeProtocol` set over an asynchronous
network with bounded random link delays and reports both cost measures so the
experiment can verify the corollary empirically.

The synchronous algorithm may itself use the channel; following Section 7.2
we assume an FDMA-provided second channel for the busy tones, so algorithm
channel writes are resolved once per simulated round on the primary channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.sim.channel import SlottedChannel
from repro.sim.engine import EventQueue
from repro.sim.errors import SimulationTimeout
from repro.sim.events import ChannelEvent, Message, idle_event
from repro.sim.metrics import MetricsRecorder
from repro.sim.node import NodeContext, NodeProtocol
from repro.topology.graph import WeightedGraph

NodeId = Hashable
ProtocolFactory = Callable[[NodeContext], NodeProtocol]


@dataclass
class SynchronizerReport:
    """Cost breakdown of one synchronized asynchronous execution.

    Attributes:
        pulses: number of simulated synchronous rounds generated.
        asynchronous_time: total asynchronous time units elapsed.
        algorithm_messages: point-to-point messages sent by the algorithm.
        ack_messages: acknowledgements added by the synchronizer.
        busy_tone_slots: channel slots occupied by busy tones.
        results: each node's declared output.
    """

    pulses: int
    asynchronous_time: float
    algorithm_messages: int
    ack_messages: int
    busy_tone_slots: int
    results: Dict[NodeId, Any]

    @property
    def total_messages(self) -> int:
        """Algorithm messages plus acknowledgements."""
        return self.algorithm_messages + self.ack_messages

    @property
    def message_overhead_factor(self) -> float:
        """Ratio of total to algorithm messages (Corollary 4 bounds this by 2)."""
        if self.algorithm_messages == 0:
            return 1.0
        return self.total_messages / self.algorithm_messages


class ChannelSynchronizer:
    """Run a synchronous protocol on an asynchronous network using the channel."""

    def __init__(
        self,
        graph: WeightedGraph,
        max_link_delay: int = 3,
        seed: Optional[int] = None,
        n_known: bool = True,
    ) -> None:
        """Create a synchronizer over ``graph``.

        Args:
            graph: the point-to-point topology.
            max_link_delay: every message (and acknowledgement) experiences an
                integer delay drawn uniformly from ``[1, max_link_delay]``
                asynchronous time units.
            seed: master seed for delays and per-node random sources.
            n_known: whether nodes are told ``n``.
        """
        if max_link_delay < 1:
            raise ValueError("max_link_delay must be at least 1")
        self._graph = graph
        self._max_delay = max_link_delay
        self._seed = seed
        self._n_known = n_known

    def run(
        self,
        protocol_factory: ProtocolFactory,
        inputs: Optional[Dict[NodeId, Dict[str, Any]]] = None,
        max_pulses: int = 1_000_000,
    ) -> SynchronizerReport:
        """Execute the protocol until every node halts.

        Raises:
            SimulationTimeout: if the pulse budget is exhausted.
        """
        master = random.Random(self._seed)
        delay_rng = random.Random(master.randrange(2**63))
        contexts: Dict[NodeId, NodeContext] = {}
        n = self._graph.num_nodes() if self._n_known else None
        for node in self._graph.nodes():
            neighbors = tuple(self._graph.iter_neighbors(node))
            weights = dict(self._graph.neighbor_items(node))
            contexts[node] = NodeContext(
                node_id=node,
                neighbors=neighbors,
                link_weights=weights,
                n=n,
                rng=random.Random(master.randrange(2**63)),
                extra=dict(inputs.get(node, {})) if inputs else {},
            )
        protocols = {node: protocol_factory(ctx) for node, ctx in contexts.items()}

        queue = EventQueue()
        channel = SlottedChannel()
        pending_inbox: Dict[NodeId, List[Message]] = {node: [] for node in protocols}
        unacked: Dict[NodeId, int] = {node: 0 for node in protocols}
        counters = {"algorithm": 0, "ack": 0, "busy_slots": 0}

        def deliver(message: Message) -> None:
            pending_inbox[message.receiver].append(message)
            # acknowledgement travels back over the same link
            counters["ack"] += 1
            delay = delay_rng.randint(1, self._max_delay)
            queue.schedule(delay, lambda s=message.sender: ack(s))

        def ack(sender: NodeId) -> None:
            unacked[sender] -= 1

        def dispatch(node: NodeId, protocol: NodeProtocol, pulse: int) -> None:
            outbox, payload, wrote = protocol._collect_actions()
            for receiver, msg_payload in outbox:
                counters["algorithm"] += 1
                unacked[node] += 1
                message = Message(node, receiver, msg_payload, pulse)
                delay = delay_rng.randint(1, self._max_delay)
                queue.schedule(delay, lambda m=message: deliver(m))
            if wrote:
                channel_writes.append((node, payload))

        channel_writes: List = []
        last_event: ChannelEvent = idle_event(-1)

        # pulse 0: on_start
        for node, protocol in protocols.items():
            protocol.on_start()
            dispatch(node, protocol, 0)
        pulses = 1

        while pulses < max_pulses:
            if all(p.halted for p in protocols.values()) and queue.is_empty():
                break
            # advance asynchronous time one slot at a time; the busy tone is
            # raised while any message remains unacknowledged or in flight
            while True:
                slot_end = queue.now + 1.0
                queue.run_until(slot_end)
                busy = any(count > 0 for count in unacked.values()) or not queue.is_empty()
                if busy:
                    counters["busy_slots"] += 1
                else:
                    break
            # idle slot observed: generate the next pulse
            event = channel.resolve_slot(pulses - 1, channel_writes)
            channel_writes = []
            public = event.public_view()
            for node, protocol in protocols.items():
                if protocol.halted:
                    continue
                inbox = pending_inbox[node]
                pending_inbox[node] = []
                protocol.on_round(inbox, public)
                dispatch(node, protocol, pulses)
            last_event = public
            pulses += 1
        else:
            pending = sum(1 for p in protocols.values() if not p.halted)
            raise SimulationTimeout(max_pulses, pending)

        del last_event
        return SynchronizerReport(
            pulses=pulses,
            asynchronous_time=queue.now,
            algorithm_messages=counters["algorithm"],
            ack_messages=counters["ack"],
            busy_tone_slots=counters["busy_slots"],
            results={node: protocol.result for node, protocol in protocols.items()},
        )
