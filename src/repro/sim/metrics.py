"""Complexity accounting shared by every algorithm and every baseline.

The paper measures algorithms by

* **time** — the number of synchronous rounds (one round of the point-to-point
  network and one channel slot per time unit), and
* **messages** — the number of point-to-point messages sent, and
* **communication complexity** — messages plus time, "this measures the
  information received over both media" (Section 2).

A single :class:`MetricsRecorder` is threaded through the simulator so that
the paper's algorithms and the baselines are charged by the same accountant.
The recorder also tracks channel-slot usage broken down by outcome, which the
collision-resolution experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.events import SlotState


@dataclass
class MetricsSnapshot:
    """An immutable snapshot of the counters of a :class:`MetricsRecorder`."""

    rounds: int
    point_to_point_messages: int
    channel_slots: int
    channel_idle: int
    channel_success: int
    channel_collision: int
    channel_write_attempts: int
    phase_messages: Dict[str, int]
    phase_rounds: Dict[str, int]
    channel_jammed: int = 0

    @property
    def communication_complexity(self) -> int:
        """Messages plus time, the paper's combined measure."""
        return self.point_to_point_messages + self.rounds

    def as_dict(self) -> Dict[str, int]:
        """Return the scalar counters as a plain dictionary (for reports)."""
        return {
            "rounds": self.rounds,
            "point_to_point_messages": self.point_to_point_messages,
            "channel_slots": self.channel_slots,
            "channel_idle": self.channel_idle,
            "channel_success": self.channel_success,
            "channel_collision": self.channel_collision,
            "channel_write_attempts": self.channel_write_attempts,
            "channel_jammed": self.channel_jammed,
            "communication_complexity": self.communication_complexity,
        }


@dataclass
class MetricsRecorder:
    """Mutable counters describing one simulation (or one algorithm phase).

    The recorder can attribute messages and rounds to named phases via
    :meth:`set_phase`; experiments use this to separate, e.g., the local
    (point-to-point) stage from the global (channel) stage of the
    global-sensitive-function algorithms.
    """

    rounds: int = 0
    point_to_point_messages: int = 0
    channel_slots: int = 0
    channel_idle: int = 0
    channel_success: int = 0
    channel_collision: int = 0
    channel_write_attempts: int = 0
    channel_jammed: int = 0
    phase_messages: Dict[str, int] = field(default_factory=dict)
    phase_rounds: Dict[str, int] = field(default_factory=dict)
    _phase: Optional[str] = None

    # ------------------------------------------------------------------
    # phase attribution
    # ------------------------------------------------------------------
    def set_phase(self, phase: Optional[str]) -> None:
        """Attribute subsequent messages and rounds to ``phase`` (or to none)."""
        self._phase = phase

    @property
    def current_phase(self) -> Optional[str]:
        """Return the phase currently being charged, if any."""
        return self._phase

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_round(self, count: int = 1) -> None:
        """Charge ``count`` elapsed rounds (time units)."""
        if count < 0:
            raise ValueError("cannot record a negative number of rounds")
        self.rounds += count
        if self._phase is not None:
            self.phase_rounds[self._phase] = (
                self.phase_rounds.get(self._phase, 0) + count
            )

    def record_messages(self, count: int = 1) -> None:
        """Charge ``count`` point-to-point messages."""
        if count < 0:
            raise ValueError("cannot record a negative number of messages")
        self.point_to_point_messages += count
        if self._phase is not None:
            self.phase_messages[self._phase] = (
                self.phase_messages.get(self._phase, 0) + count
            )

    def record_slot(self, state: SlotState, attempts: int, jammed: bool = False) -> None:
        """Charge one channel slot that resolved to ``state`` with ``attempts`` writers.

        ``jammed`` marks a slot the adversity layer forced to COLLISION; it
        is counted both as a collision and in the ``channel_jammed`` tally so
        experiments can separate genuine contention from jamming.
        """
        self.channel_slots += 1
        self.channel_write_attempts += attempts
        if jammed:
            self.channel_jammed += 1
        if state is SlotState.IDLE:
            self.channel_idle += 1
        elif state is SlotState.SUCCESS:
            self.channel_success += 1
        else:
            self.channel_collision += 1

    def record_idle_slots(self, count: int) -> None:
        """Charge ``count`` idle channel slots in one batch.

        Equivalent to ``count`` calls of ``record_slot(SlotState.IDLE, 0)``;
        used by the skip-ahead fast paths so a fast-forwarded idle run costs
        O(1) accounting instead of one call per slot.

        Raises:
            ValueError: if ``count`` is negative.
        """
        if count < 0:
            raise ValueError("cannot record a negative number of slots")
        self.channel_slots += count
        self.channel_idle += count

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def communication_complexity(self) -> int:
        """Messages plus time (the paper's combined complexity measure)."""
        return self.point_to_point_messages + self.rounds

    def snapshot(self) -> MetricsSnapshot:
        """Return an immutable copy of the current counters."""
        return MetricsSnapshot(
            rounds=self.rounds,
            point_to_point_messages=self.point_to_point_messages,
            channel_slots=self.channel_slots,
            channel_idle=self.channel_idle,
            channel_success=self.channel_success,
            channel_collision=self.channel_collision,
            channel_write_attempts=self.channel_write_attempts,
            phase_messages=dict(self.phase_messages),
            phase_rounds=dict(self.phase_rounds),
            channel_jammed=self.channel_jammed,
        )

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold the counters of ``other`` into this recorder.

        Used when an algorithm is composed of sub-simulations (e.g. the MST
        algorithm reuses the partitioning algorithm) and the total cost must
        include every stage.
        """
        self.rounds += other.rounds
        self.point_to_point_messages += other.point_to_point_messages
        self.channel_slots += other.channel_slots
        self.channel_idle += other.channel_idle
        self.channel_success += other.channel_success
        self.channel_collision += other.channel_collision
        self.channel_write_attempts += other.channel_write_attempts
        self.channel_jammed += other.channel_jammed
        for phase, count in other.phase_messages.items():
            self.phase_messages[phase] = self.phase_messages.get(phase, 0) + count
        for phase, count in other.phase_rounds.items():
            self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + count

    def reset(self) -> None:
        """Zero every counter and forget the current phase."""
        self.rounds = 0
        self.point_to_point_messages = 0
        self.channel_slots = 0
        self.channel_idle = 0
        self.channel_success = 0
        self.channel_collision = 0
        self.channel_write_attempts = 0
        self.channel_jammed = 0
        self.phase_messages.clear()
        self.phase_rounds.clear()
        self._phase = None
