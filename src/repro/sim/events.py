"""Messages, channel slots, and the observations nodes make of them.

These small immutable records are the vocabulary shared by the simulator and
every protocol: point-to-point :class:`Message` objects travel over links,
and each channel slot resolves to a :class:`ChannelEvent` whose
:class:`SlotState` is exactly the three-valued feedback of the paper's model
(idle / success / collision).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

NodeId = Hashable


class SlotState(enum.Enum):
    """The state of one slot of the multiaccess channel.

    The paper (Section 2): "Each slot is in one of the following three
    states: idle, success, or collision depending on whether zero, one, or
    more than one processors write in that slot, respectively."
    """

    IDLE = "idle"
    SUCCESS = "success"
    COLLISION = "collision"


@dataclass(frozen=True)
class Message:
    """A point-to-point message travelling over a single link.

    Attributes:
        sender: node identifier of the transmitting endpoint.
        receiver: node identifier of the receiving endpoint (a neighbour of
            the sender in the point-to-point topology).
        payload: arbitrary picklable payload.  Protocols use small tuples or
            dataclasses; the size accounting in :mod:`repro.sim.metrics`
            treats each message as one O(log n)-bit-header message carrying
            one data element, per the model.
        round_sent: the round in which the message was handed to the network.
    """

    sender: NodeId
    receiver: NodeId
    payload: Any
    round_sent: int

    def __repr__(self) -> str:
        """Render compactly so simulation traces stay readable."""
        return (
            f"Message({self.sender!r}->{self.receiver!r} @r{self.round_sent}: "
            f"{self.payload!r})"
        )


@dataclass(frozen=True)
class ChannelWrite:
    """A node's attempt to broadcast ``payload`` in a given slot."""

    writer: NodeId
    payload: Any
    slot: int


@dataclass(frozen=True)
class ChannelEvent:
    """What every node observes about one resolved channel slot.

    Attributes:
        slot: the slot index (aligned with the round number).
        state: idle / success / collision.
        payload: the broadcast payload when ``state`` is SUCCESS, else None.
        writer: the identity of the successful writer when ``state`` is
            SUCCESS, else None.  The paper's model lets a successful message
            carry its sender's identifier inside the O(log n)-bit header, so
            exposing it is not extra power.
        writers: the identities of all nodes that attempted to write.  This
            field exists for metrics and debugging only; protocols must not
            read it on a collision (collision detection reveals only that
            more than one node wrote), and the simulator's strict mode
            enforces that by omitting it from the events handed to nodes.
    """

    slot: int
    state: SlotState
    payload: Any = None
    writer: Optional[NodeId] = None
    writers: Tuple[NodeId, ...] = field(default=())

    def is_idle(self) -> bool:
        """Return ``True`` when nobody wrote in this slot."""
        return self.state is SlotState.IDLE

    def is_success(self) -> bool:
        """Return ``True`` when exactly one node wrote in this slot."""
        return self.state is SlotState.SUCCESS

    def is_collision(self) -> bool:
        """Return ``True`` when two or more nodes wrote in this slot."""
        return self.state is SlotState.COLLISION

    def public_view(self) -> "ChannelEvent":
        """Return the event as protocols are allowed to see it.

        The ``writers`` tuple (who collided) is hidden because the model only
        reveals *that* a collision happened, not who caused it.

        The view is computed at most once per event: an event that already
        carries no ``writers`` (idle slots) is its own public view, and the
        derived event is cached otherwise.  The simulator asks for the view
        once per node per slot, so this sits on the round-loop fast path.
        """
        if not self.writers:
            return self
        public = self.__dict__.get("_public_view")
        if public is None:
            public = ChannelEvent(
                slot=self.slot,
                state=self.state,
                payload=self.payload,
                writer=self.writer,
                writers=(),
            )
            object.__setattr__(self, "_public_view", public)
        return public


def idle_event(slot: int) -> ChannelEvent:
    """Return an IDLE :class:`ChannelEvent` for ``slot``."""
    return ChannelEvent(slot=slot, state=SlotState.IDLE)
