"""Discrete-event simulation of the multimedia network model (Section 2).

The model combines two media:

* a synchronous point-to-point message-passing network over an arbitrary
  topology — in each round every node may send one message per incident link
  and receives, at the start of the next round, every message addressed to it;
* a slotted multiaccess channel — in each slot every node may attempt one
  broadcast; the slot resolves to ``idle``, ``success`` (the single written
  payload is heard by everybody) or ``collision`` (detected by everybody).

One round of the point-to-point network and one slot of the channel take one
time unit each and are aligned, following the paper's assumption that the
message delay and the slot length are of the same order of magnitude.

The package also provides the asynchronous point-to-point engine and the
channel synchronizer of Section 7.1, plus the slotted-from-unslotted
conversion of Section 7.2.
"""

from repro.sim.adversity import (
    ADVERSITY_KINDS,
    ADVERSITY_PRESETS,
    AdversitySpec,
    AdversityState,
    adversity_state,
    adversity_stream_seed,
    canonical_adversity,
    resolve_adversity,
)
from repro.sim.errors import (
    AdversityAbort,
    ProtocolError,
    SimulationError,
    SimulationTimeout,
)
from repro.sim.events import ChannelEvent, Message, SlotState
from repro.sim.flyweight import FlyweightEnvironment, FlyweightProtocol
from repro.sim.metrics import MetricsRecorder
from repro.sim.node import NodeContext, NodeProtocol
from repro.sim.substreams import NodeStreams, substream_seed
from repro.sim.network import PointToPointNetwork
from repro.sim.channel import SlottedChannel
from repro.sim.multimedia import MultimediaNetwork, SimulationResult
from repro.sim.synchronizer import ChannelSynchronizer, SynchronizerReport
from repro.sim.slotting import UnslottedChannel, slotted_from_unslotted

__all__ = [
    "ADVERSITY_KINDS",
    "ADVERSITY_PRESETS",
    "AdversityAbort",
    "AdversitySpec",
    "AdversityState",
    "adversity_state",
    "adversity_stream_seed",
    "canonical_adversity",
    "resolve_adversity",
    "ProtocolError",
    "SimulationError",
    "SimulationTimeout",
    "ChannelEvent",
    "Message",
    "SlotState",
    "FlyweightEnvironment",
    "FlyweightProtocol",
    "MetricsRecorder",
    "NodeContext",
    "NodeProtocol",
    "NodeStreams",
    "substream_seed",
    "PointToPointNetwork",
    "SlottedChannel",
    "MultimediaNetwork",
    "SimulationResult",
    "ChannelSynchronizer",
    "SynchronizerReport",
    "UnslottedChannel",
    "slotted_from_unslotted",
]
