"""A minimal discrete-event engine for the asynchronous executions of Section 7.

The synchronous simulations in :mod:`repro.sim.multimedia` do not need an
event queue (time advances one round at a time).  The asynchronous execution
used by the channel-synchronizer experiments does: point-to-point messages
experience arbitrary-but-finite delays, so deliveries are scheduled as timed
events and processed in timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

# Heap entries are plain (time, sequence, action, args) tuples: the sequence
# number both breaks timestamp ties deterministically and guarantees the heap
# never compares the (incomparable) actions.  Tuples cut the per-event
# allocation and comparison cost that the ordered-dataclass representation
# paid, and carrying ``args`` in the entry lets schedulers pass the event's
# operand directly instead of closing over it with a fresh lambda per event.
_ScheduledEvent = Tuple[float, int, Callable[..., None], tuple]


class EventQueue:
    """A time-ordered queue of callbacks.

    Ties are broken by insertion order so that executions are fully
    deterministic given a seed.
    """

    def __init__(self) -> None:
        """Create an empty queue at time zero."""
        self._heap: List[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Return the timestamp of the most recently executed event."""
        return self._now

    def schedule(self, delay: float, action: Callable[..., None], *args) -> None:
        """Schedule ``action(*args)`` to run ``delay`` time units from now.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), action, args)
        )

    def schedule_at(self, time: float, action: Callable[..., None], *args) -> None:
        """Schedule ``action(*args)`` at absolute ``time`` (not before now)."""
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        heapq.heappush(self._heap, (time, next(self._counter), action, args))

    def is_empty(self) -> bool:
        """Return ``True`` when no events remain."""
        return not self._heap

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def run_next(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        if not self._heap:
            return False
        time, _, action, args = heapq.heappop(self._heap)
        self._now = time
        action(*args)
        return True

    def fast_forward(self, time: float) -> None:
        """Advance the clock to ``time`` in O(1), without touching the heap.

        The skip-ahead accounting paths (dead busy-tone slots in the channel
        synchronizer, idle runs on the contention channel) know in advance
        that a stretch of simulated time contains no events; this jumps the
        clock over it at constant cost, where :meth:`run_until` would pay a
        heap peek per slot walked.

        Raises:
            ValueError: if ``time`` lies in the past, or an event is
                scheduled at or before ``time`` (fast-forwarding would skip
                it; use :meth:`run_until` instead).
        """
        if time < self._now:
            raise ValueError("cannot fast-forward into the past")
        if self._heap and self._heap[0][0] <= time:
            raise ValueError(
                "cannot fast-forward past a scheduled event; use run_until"
            )
        self._now = time

    def run_until(self, time: float) -> None:
        """Execute every event with timestamp ``<= time``."""
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= time:
            event_time, _, action, args = pop(heap)
            self._now = event_time
            action(*args)
        self._now = max(self._now, time)

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        Raises:
            RuntimeError: if more than ``max_events`` events execute, which
                indicates a non-terminating schedule.
        """
        executed = 0
        while self.run_next():
            executed += 1
            if executed > max_events:
                raise RuntimeError("event queue did not drain; runaway schedule")
        return executed
