"""Deterministic adversity schedules: crashes, loss, jamming and churn.

The paper's model (Section 2) — like the rest of this library until now — is
fault-free: links never drop messages, nodes never crash, and the multiaccess
channel resolves every slot truthfully.  This module adds the missing axis.
An :class:`AdversitySpec` declares a *schedule of faults* and an
:class:`AdversityState` executes it deterministically against the simulator:

* **node crashes** — a sampled set of crash-prone nodes goes down in periodic
  windows (``crash_length`` rounds out of every ``crash_period``); a crashed
  node takes no steps and every message addressed to it is lost, and it
  resumes from its existing local state when the window closes (crash with
  recovery, not fail-stop);
* **message loss / delay** — each delivered point-to-point message is
  independently dropped with ``loss_rate`` or deferred one round with
  ``delay_rate``;
* **channel jamming** — each resolved slot is independently forced to read
  COLLISION with ``jam_rate``, regardless of how many nodes actually wrote
  (the classic jamming adversary of the ad-hoc-channel literature);
* **topology churn** — a sampled set of churn-prone links goes down in
  periodic windows; messages crossing a down link are lost (the ad-hoc model
  of PAPERS.md made executable).

Faults reach protocols **only** through their normal interfaces: an inbox
that stays empty, a slot that reads COLLISION.  No protocol is handed an
oracle, so every algorithm in the library runs unmodified under adversity.

Determinism
-----------

All fault draws come from one ``random.Random`` seeded per sweep point via
:func:`adversity_stream_seed` — a stable hash of ``(point key…, "adversity")``
— so a row is bit-identical no matter which executor (serial, process,
sharded, resumed) computes it.  The state's substreams (layout, per-network
loss, per-channel jam) are spawned in construction order, which the
single-threaded simulation makes deterministic.

The **zero spec is a strict no-op**: :func:`resolve_adversity` maps it to
``None`` and every injection site keeps its exact fault-free code path, so
all pre-adversity goldens stay pinned.

Abort semantics
---------------

Protocols in this library terminate in fault-free runs but may *correctly*
fail to terminate under faults (a lost tree message stalls an aggregation
forever).  Runs under adversity therefore carry a round budget
(``round_budget`` or ``budget_factor · n + 512``) plus a stall detector
(:meth:`AdversityState.stall_patience` quiet rounds with no deliveries, no
actions and an un-jammed idle slot), and raise
:class:`~repro.sim.errors.AdversityAbort` instead of spinning — experiments
convert the abort into a bounded ``"abort"`` row.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Hashable, Mapping, Optional, Tuple, Union

from repro.topology.graph import WeightedGraph

NodeId = Hashable

#: Cell value experiments write into columns whose run aborted under faults.
ABORTED = "abort"

#: The adversity preset names, in canonical order.
ADVERSITY_KINDS: Tuple[str, ...] = ("none", "crash", "loss", "jam", "churn")


@dataclass(frozen=True)
class AdversitySpec:
    """A declarative, named schedule of faults.

    All rates are independent per-event probabilities in ``[0, 1]``; window
    parameters are in rounds.  ``crash_nodes`` force-marks specific node ids
    as crash-prone (on top of ``crash_rate`` sampling) so tests can script a
    targeted crash instead of fishing for one.

    Attributes:
        name: preset name, or ``"custom"`` for hand-built specs.
        crash_rate: probability that a node is crash-prone.
        crash_length / crash_period: a crash-prone node is down for
            ``crash_length`` rounds out of every ``crash_period`` (phase
            drawn per node).  ``crash_length >= crash_period`` means the node
            never recovers (fail-stop).
        crash_nodes: node ids that are crash-prone regardless of sampling.
        loss_rate: per-message delivery drop probability.
        delay_rate: per-message probability of being deferred one round
            (re-drawn each round, so delays are geometric).
        jam_rate: per-slot probability the channel reads COLLISION.
        churn_rate: probability that a link is churn-prone.
        churn_length / churn_period: a churn-prone link is down for
            ``churn_length`` rounds out of every ``churn_period``.
        round_budget: absolute round/slot budget for one simulation under
            this schedule; ``None`` derives ``budget_factor * n + 512``.
        budget_factor: multiplier for the derived budget.
        stall_rounds: minimum number of consecutive quiet rounds before a
            run is declared stalled and aborted.
    """

    name: str = "custom"
    crash_rate: float = 0.0
    crash_length: int = 8
    crash_period: int = 64
    crash_nodes: Tuple[NodeId, ...] = ()
    loss_rate: float = 0.0
    delay_rate: float = 0.0
    jam_rate: float = 0.0
    churn_rate: float = 0.0
    churn_length: int = 8
    churn_period: int = 32
    round_budget: Optional[int] = None
    budget_factor: int = 8
    stall_rounds: int = 256

    def __post_init__(self) -> None:
        """Validate the rate fields (all must be probabilities)."""
        for rate_field in ("crash_rate", "loss_rate", "delay_rate", "jam_rate", "churn_rate"):
            value = getattr(self, rate_field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"adversity {rate_field} must be a number, got {value!r}")
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"adversity {rate_field} must lie in [0, 1], got {value!r}"
                )
        for window_field in ("crash_length", "churn_length"):
            value = getattr(self, window_field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"adversity {window_field} must be a non-negative integer, got {value!r}"
                )
        for period_field in ("crash_period", "churn_period"):
            value = getattr(self, period_field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"adversity {period_field} must be a positive integer, got {value!r}"
                )
        for count_field in ("budget_factor", "stall_rounds"):
            value = getattr(self, count_field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"adversity {count_field} must be a positive integer, got {value!r}"
                )
        if self.round_budget is not None and (
            not isinstance(self.round_budget, int)
            or isinstance(self.round_budget, bool)
            or self.round_budget < 1
        ):
            raise ValueError(
                f"adversity round_budget must be a positive integer or None, "
                f"got {self.round_budget!r}"
            )
        if not isinstance(self.crash_nodes, tuple):
            object.__setattr__(self, "crash_nodes", tuple(self.crash_nodes))

    @property
    def is_zero(self) -> bool:
        """Return ``True`` when this spec injects no faults at all."""
        return (
            self.crash_rate == 0.0
            and not self.crash_nodes
            and self.loss_rate == 0.0
            and self.delay_rate == 0.0
            and self.jam_rate == 0.0
            and self.churn_rate == 0.0
        )

    def to_dict(self) -> Dict[str, object]:
        """Return the spec as a canonical JSON-able dictionary.

        Field order is the dataclass declaration order, so two equal specs
        serialise identically (digests depend on this).
        """
        out: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec_field.name] = value
        return out


def _preset(name: str, **overrides: object) -> AdversitySpec:
    return AdversitySpec(name=name, **overrides)  # type: ignore[arg-type]


#: The shipped adversity presets, keyed by name.
ADVERSITY_PRESETS: Dict[str, AdversitySpec] = {
    "none": _preset("none"),
    "crash": _preset("crash", crash_rate=0.2, crash_length=8, crash_period=64),
    "loss": _preset("loss", loss_rate=0.05, delay_rate=0.05),
    "jam": _preset("jam", jam_rate=0.2),
    "churn": _preset("churn", churn_rate=0.3, churn_length=8, churn_period=32),
}

AdversityLike = Union[None, str, Mapping[str, object], AdversitySpec]

_FIELD_NAMES = tuple(spec_field.name for spec_field in fields(AdversitySpec))


def adversity_spec(value: AdversityLike) -> AdversitySpec:
    """Build an :class:`AdversitySpec` from a name, mapping or spec.

    A mapping names a base preset via its ``"name"`` key (default
    ``"none"``) and overrides individual fields on top of it — exactly the
    shape the CLI's ``--adversity``/``--set adversity.*`` flags produce.

    Raises:
        ValueError: on an unknown preset name, unknown field, or
            out-of-range field value.
    """
    if isinstance(value, AdversitySpec):
        return value
    if value is None:
        return ADVERSITY_PRESETS["none"]
    if isinstance(value, str):
        try:
            return ADVERSITY_PRESETS[value]
        except KeyError:
            known = ", ".join(sorted(ADVERSITY_PRESETS))
            raise ValueError(
                f"unknown adversity preset {value!r} (known: {known})"
            ) from None
    if isinstance(value, Mapping):
        data = dict(value)
        name = data.pop("name", "none")
        base = adversity_spec(name if isinstance(name, str) else str(name))
        unknown = [key for key in data if key not in _FIELD_NAMES]
        if unknown:
            known = ", ".join(field for field in _FIELD_NAMES if field != "name")
            raise ValueError(
                f"unknown adversity field(s) {', '.join(map(repr, sorted(unknown)))} "
                f"(known: {known})"
            )
        if "crash_nodes" in data:
            data["crash_nodes"] = tuple(data["crash_nodes"])  # type: ignore[arg-type]
        return replace(base, **data)  # type: ignore[arg-type]
    raise ValueError(f"cannot interpret {value!r} as an adversity spec")


def canonical_adversity(
    value: AdversityLike,
    allowed: Optional[Tuple[str, ...]] = None,
) -> Dict[str, object]:
    """Validate ``value`` and return its canonical dictionary form.

    This is what :meth:`~repro.experiments.registry.ExperimentSpec.params_for`
    stores in the resolved parameter dictionary: fully expanded, so the sweep
    digest covers every field, not just the overridden ones.

    Args:
        value: preset name, field mapping, or spec.
        allowed: when given, the base preset name must be one of these (an
            experiment's declared ``adversities`` tuple).

    Raises:
        ValueError: if the spec is invalid or its preset is not allowed.
    """
    spec = adversity_spec(value)
    if allowed is not None and spec.name not in allowed and spec.name != "custom":
        raise ValueError(
            f"adversity preset {spec.name!r} is not supported by this experiment "
            f"(supported: {', '.join(allowed)})"
        )
    return spec.to_dict()


def resolve_adversity(value: AdversityLike) -> Optional[AdversitySpec]:
    """Resolve ``value`` to a spec, mapping the zero spec to ``None``.

    ``None`` is the contract for "no adversity": every injection site checks
    ``adversity is None`` and keeps its exact fault-free code path, which is
    what pins the pre-adversity goldens.
    """
    if value is None:
        return None
    spec = adversity_spec(value)
    return None if spec.is_zero else spec


def adversity_stream_seed(*key: object) -> int:
    """Derive the dedicated adversity substream seed for one sweep point.

    The seed is a stable 63-bit hash of ``(*key, "adversity")`` — typically
    ``(experiment id, point parameters…)`` — independent of process, executor
    and Python hash randomisation, so fault draws are bit-identical across
    serial, process and sharded/resumed execution.
    """
    payload = json.dumps([repr(part) for part in key] + ["adversity"])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def adversity_state(value: AdversityLike, *point_key: object) -> Optional["AdversityState"]:
    """Build the per-point :class:`AdversityState`, or ``None`` for no faults.

    Convenience wrapper experiments call once per algorithm invocation:
    resolves the spec (zero → ``None``) and seeds the state from the point
    key via :func:`adversity_stream_seed`.
    """
    spec = resolve_adversity(value)
    if spec is None:
        return None
    return AdversityState(spec, seed=adversity_stream_seed(*point_key))


class AdversityState:
    """The runtime side of a schedule: substreams, windows and fault counters.

    One state drives one algorithm invocation (possibly spanning several
    internal simulations — stages draw from the same substreams in execution
    order).  The first topology the state sees via :meth:`bind_topology`
    fixes the crash-prone nodes and churn-prone links; later binds are
    no-ops, so every stage of one algorithm faces the same adversary.
    """

    def __init__(self, spec: AdversitySpec, seed: int) -> None:
        """Derive the layout and per-stream sources from one schedule seed."""
        self.spec = spec
        self._spawn = random.Random(seed)
        self._layout_rng = self.spawn_rng()
        self._bound = False
        self._crash_offsets: Dict[NodeId, int] = {}
        self._churn_offsets: Dict[Tuple[NodeId, NodeId], int] = {}
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.slots_jammed = 0
        self.crash_node_rounds = 0

    # ------------------------------------------------------------------
    # substreams
    # ------------------------------------------------------------------
    def spawn_rng(self) -> random.Random:
        """Spawn a child random source (deterministic in spawn order)."""
        return random.Random(self._spawn.randrange(2**63))

    # ------------------------------------------------------------------
    # schedule layout
    # ------------------------------------------------------------------
    def bind_topology(self, graph: WeightedGraph) -> None:
        """Sample the crash-prone nodes and churn-prone links (idempotent)."""
        if self._bound:
            return
        self._bound = True
        spec = self.spec
        rng = self._layout_rng
        forced = set(spec.crash_nodes)
        if spec.crash_rate > 0.0 or forced:
            for node in graph.nodes():
                if node in forced or (
                    spec.crash_rate > 0.0 and rng.random() < spec.crash_rate
                ):
                    self._crash_offsets[node] = rng.randrange(spec.crash_period)
        if spec.churn_rate > 0.0:
            for edge in graph.edges():
                key = self._link_key(edge.u, edge.v)
                if rng.random() < spec.churn_rate:
                    self._churn_offsets[key] = rng.randrange(spec.churn_period)

    @staticmethod
    def _link_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
        return (u, v) if repr(u) <= repr(v) else (v, u)

    # ------------------------------------------------------------------
    # fault predicates (called by the injection sites)
    # ------------------------------------------------------------------
    def node_crashed(self, node: NodeId, round_index: int) -> bool:
        """Return ``True`` when ``node`` is inside a crash window."""
        offsets = self._crash_offsets
        if not offsets:
            return False
        offset = offsets.get(node)
        if offset is None:
            return False
        spec = self.spec
        return (round_index - offset) % spec.crash_period < spec.crash_length

    def link_down(self, u: NodeId, v: NodeId, round_index: int) -> bool:
        """Return ``True`` when the ``{u, v}`` link is inside a churn window."""
        offsets = self._churn_offsets
        if not offsets:
            return False
        offset = offsets.get(self._link_key(u, v))
        if offset is None:
            return False
        spec = self.spec
        return (round_index - offset) % spec.churn_period < spec.churn_length

    def drop_message(
        self,
        rng: random.Random,
        sender: NodeId,
        receiver: NodeId,
        round_index: int,
    ) -> bool:
        """Decide (and count) whether one delivered message is lost.

        Applies the churn window first (no randomness consumed), then the
        loss draw.  Used by the synchronizer, whose delivery path has no
        per-round batching; the synchronous network inlines the same checks.
        """
        if self.link_down(sender, receiver, round_index):
            self.messages_dropped += 1
            return True
        if self.spec.loss_rate > 0.0 and rng.random() < self.spec.loss_rate:
            self.messages_dropped += 1
            return True
        return False

    def jam_slot(self, rng: random.Random) -> bool:
        """Decide (and count) whether the next resolved slot is jammed."""
        if rng.random() < self.spec.jam_rate:
            self.slots_jammed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count_drop(self) -> None:
        """Charge one dropped message."""
        self.messages_dropped += 1

    def count_delay(self) -> None:
        """Charge one delayed message."""
        self.messages_delayed += 1

    def count_crash_round(self) -> None:
        """Charge one node-round spent crashed."""
        self.crash_node_rounds += 1

    @property
    def faults_injected(self) -> int:
        """Total discrete faults delivered: drops + delays + jammed slots."""
        return self.messages_dropped + self.messages_delayed + self.slots_jammed

    def counters(self) -> Dict[str, int]:
        """Return the fault counters as a plain dictionary (for reports)."""
        return {
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "slots_jammed": self.slots_jammed,
            "crash_node_rounds": self.crash_node_rounds,
        }

    # ------------------------------------------------------------------
    # budgets and channel wiring
    # ------------------------------------------------------------------
    def channel_adversity(self) -> Optional["AdversityState"]:
        """Return the state to attach to a channel, or ``None`` without jam.

        Only jamming touches the channel; returning ``None`` for jam-free
        specs keeps the channel on its fault-free fast path (including the
        geometric skip-ahead, which must be disabled only under jamming).
        """
        return self if self.spec.jam_rate > 0.0 else None

    def round_budget(self, n: int) -> int:
        """Return the round/slot budget for one simulation over ``n`` nodes."""
        if self.spec.round_budget is not None:
            return self.spec.round_budget
        return self.spec.budget_factor * max(1, n) + 512

    def stall_patience(self) -> int:
        """Return how many quiet rounds to tolerate before declaring a stall.

        A crash schedule parks nodes for whole windows, during which a run
        can be legitimately quiet; the patience therefore covers several full
        crash periods so recovery always gets a chance to happen first.
        """
        patience = self.spec.stall_rounds
        if self._crash_offsets or self.spec.crash_rate > 0.0 or self.spec.crash_nodes:
            patience = max(
                patience, 4 * (self.spec.crash_period + self.spec.crash_length)
            )
        return patience
