"""Affectance-selective families for layer dissemination in ad-hoc networks.

Implements the workload of arXiv:1703.01704 (Kowalski–Kudaravalli–Mosteiro)
on the :func:`~repro.topology.generators.ad_hoc_affectance_graph` topology:
one source holds a message, and in synchronous rounds sets of informed
stations transmit until every station is informed.  Reception is governed by
*affectance* — the normalized interference a transmission imposes on a link.

Physical layer (shared by every scheduler)
------------------------------------------
Each link carries an affectance value ``α(u, v)`` (distance over the smaller
of the two stations' ranges; see the generator), and a transmission's signal
strength on the link is ``s(u, v) = 1 / α(u, v)`` — short, well-covered
links are strong, stitched fringe links are weak.  In a round where the set
``T`` transmits, an uninformed station ``v`` decodes neighbour ``u ∈ T``
iff ``u``'s signal strictly exceeds the summed signal of every other
transmitting neighbour::

    s(u, v)  >  Σ_{w ∈ T ∩ N(v), w ≠ u} s(w, v)

With a single transmitting neighbour this always holds (collision-free
delivery); with several equally strong ones it never does (a collision).
Interference is graph-local: only linked stations affect each other, the
abstraction under which the selective-family result is stated.

Schedulers (all run under the identical physical layer)
-------------------------------------------------------
* ``selective`` — the affectance-selective family: a deterministic greedy
  packing that walks candidate (frontier → uninformed) links in decreasing
  signal order and admits a transmitter whenever every already-planned
  reception in the family survives the added interference.  This is the
  protocol under test: it *uses* the affectance values to pack many
  compatible transmissions per round.
* ``decay`` — the classic randomized Decay backoff (Bar-Yehuda–Goldreich–
  Itai): every frontier station transmits with probability ``2^-(r mod K)``,
  ``K = ⌈log₂ Δ⌉ + 1``.  Affectance-blind; the randomized collision-layer
  baseline.
* ``round_robin`` — exactly one frontier station transmits per round, in
  rotation.  Trivially collision-free and affectance-blind; the
  deterministic collision-layer baseline (its round count is the price of
  never packing).

Adversity
---------
An optional :class:`~repro.sim.adversity.AdversityState` folds the standard
fault axis in: ``jam`` kills all receptions of a jammed round, ``loss`` and
``churn`` drop individual receptions, ``crash`` windows silence stations
entirely (no transmitting, no receiving).  Runs that stop progressing are
cut off by the schedule's round budget and raise
:class:`~repro.sim.errors.AdversityAbort` — bounded degradation, never a
hang.  Fault-free runs of ``selective`` and ``round_robin`` provably inform
at least one new station per round, so they terminate within ``n`` rounds;
a fault-free overrun (only ``decay`` could, with astronomically bad luck)
raises :class:`~repro.sim.errors.SimulationTimeout`.

All randomness is hash-derived (:func:`~repro.sim.substreams.substream_seed`,
scope ``"protocols.dissemination"``), so a run is a pure function of
``(graph, affectance, source, scheduler, seed, adversity)`` — pinned by
golden era v5.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.adversity import AdversityState
from repro.sim.errors import AdversityAbort, SimulationTimeout
from repro.sim.substreams import substream_seed
from repro.topology.graph import WeightedGraph

#: the scheduler names :func:`disseminate` accepts
SCHEDULERS: Tuple[str, ...] = ("selective", "decay", "round_robin")

#: substream scope of the scheduler randomness
DISSEMINATION_SCOPE = "protocols.dissemination"


@dataclass(frozen=True)
class RoundTrace:
    """One round of a recorded run: who transmitted, who decoded.

    Attributes:
        transmitters: the transmitting slots, ascending.
        received: the slots that decoded the message this round, ascending.
    """

    transmitters: Tuple[int, ...]
    received: Tuple[int, ...]


@dataclass(frozen=True)
class DisseminationResult:
    """Outcome of one dissemination run.

    Attributes:
        scheduler: the scheduler that produced the run.
        n: station count of the network.
        rounds: rounds until the last station decoded the message.
        informed: stations informed at the end (``n`` for a completed run).
        transmissions: total transmissions across all rounds.
        receptions: successful decodes (``n - 1`` for a completed fault-free
            run; faults can force re-deliveries, so it may exceed that under
            adversity).
        history: per-round traces when recording was requested, else ``None``.
    """

    scheduler: str
    n: int
    rounds: int
    informed: int
    transmissions: int
    receptions: int
    history: Optional[Tuple[RoundTrace, ...]] = None

    @property
    def complete(self) -> bool:
        """True when every station was informed."""
        return self.informed == self.n


def disseminate(
    graph: WeightedGraph,
    affectance: Dict[Tuple[int, int], float],
    source: int = 0,
    scheduler: str = "selective",
    seed: object = 0,
    adversity: Optional[AdversityState] = None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
) -> DisseminationResult:
    """Run one layer-dissemination protocol to completion and report it.

    Args:
        graph: the ad-hoc network; node labels must be the identity
            enumeration ``0..n-1`` and the graph should be connected (an
            unreachable station runs the round budget out).
        affectance: canonical-edge ``(u, v) → α`` map covering every link
            (the generator's ``return_affectance=True`` output).
        source: the initially informed slot.
        scheduler: one of :data:`SCHEDULERS`.
        seed: master seed of the scheduler substream (only ``decay`` draws).
        adversity: optional fault schedule; its round budget bounds the run.
        max_rounds: explicit round cap overriding the default (the
            adversity budget, or ``16·n + 512`` fault-free).
        record_history: attach per-round :class:`RoundTrace` entries.

    Raises:
        ValueError: on an unknown scheduler, a non-identity graph, a source
            outside the slot range, or a link missing from ``affectance``.
        AdversityAbort: when a run under adversity exhausts its round
            budget (bounded degradation instead of a hang).
        SimulationTimeout: when a fault-free run exhausts its cap.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r} (known: {', '.join(SCHEDULERS)})"
        )
    csr = graph.csr()
    n = csr.n
    if not csr.identity:
        raise ValueError("dissemination runs on identity-labelled graphs only")
    if not 0 <= source < n:
        raise ValueError(f"source slot {source} outside 0..{n - 1}")
    offsets = csr.offsets
    neighbours = csr.targets
    # per-adjacency-entry signal column: signal[k] is the strength of a
    # transmission crossing the link behind csr.targets[k]
    signal = [0.0] * len(neighbours)
    for u in range(n):
        for k in range(offsets[u], offsets[u + 1]):
            v = neighbours[k]
            key = (u, v) if u < v else (v, u)
            alpha = affectance.get(key)
            if alpha is None:
                raise ValueError(f"link {key} missing from the affectance map")
            signal[k] = 1.0 / max(alpha, 1e-9)
    if adversity is not None:
        adversity.bind_topology(graph)
        adv_rng = adversity.spawn_rng()
        budget = adversity.round_budget(n)
    else:
        adv_rng = None
        budget = 16 * n + 512
    if max_rounds is not None:
        budget = max_rounds
    max_degree = max(
        (offsets[i + 1] - offsets[i] for i in range(n)), default=0
    )
    decay_phase = max(1, int(math.ceil(math.log2(max(2, max_degree)))) + 1)
    rng = random.Random(
        substream_seed(seed, DISSEMINATION_SCOPE, scheduler, source)
    )
    informed = bytearray(n)
    informed[source] = 1
    informed_count = 1
    # frontier bookkeeping: uninformed-neighbour counts let membership decay
    # lazily instead of rescanning the whole graph every round
    uninformed_neighbours = [0] * n
    for u in range(n):
        uninformed_neighbours[u] = sum(
            1 for k in range(offsets[u], offsets[u + 1])
            if not informed[neighbours[k]]
        )
    frontier = {source: None} if uninformed_neighbours[source] else {}
    rounds = 0
    transmissions = 0
    receptions = 0
    rotation = 0
    history: List[RoundTrace] = []
    while informed_count < n:
        if rounds >= budget:
            if adversity is not None:
                raise AdversityAbort(rounds, n - informed_count)
            raise SimulationTimeout(rounds, n - informed_count)
        round_index = rounds
        rounds += 1
        # stations eligible to transmit: informed, uncrashed, with at least
        # one uninformed neighbour (sorted for deterministic draw order)
        stale = [u for u in frontier if uninformed_neighbours[u] == 0]
        for u in stale:
            del frontier[u]
        candidates = sorted(frontier)
        if adversity is not None:
            candidates = [
                u for u in candidates
                if not adversity.node_crashed(u, round_index)
            ]
        if scheduler == "selective":
            transmitters = _selective_family(
                candidates, informed, offsets, neighbours, signal,
                adversity, round_index,
            )
        elif scheduler == "decay":
            p = 2.0 ** -(round_index % decay_phase)
            transmitters = [u for u in candidates if rng.random() < p]
        else:  # round_robin
            if candidates:
                transmitters = [candidates[rotation % len(candidates)]]
                rotation += 1
            else:
                transmitters = []
        transmissions += len(transmitters)
        received: List[int] = []
        if transmitters:
            jammed = (
                adversity is not None and adversity.jam_slot(adv_rng)
            )
            if not jammed:
                received = _receptions(
                    transmitters, informed, offsets, neighbours, signal,
                    adversity, adv_rng, round_index,
                )
        for v in received:
            informed[v] = 1
            informed_count += 1
            receptions += 1
            for k in range(offsets[v], offsets[v + 1]):
                u = neighbours[k]
                uninformed_neighbours[u] -= 1
            if uninformed_neighbours[v]:
                frontier[v] = None
        if record_history:
            history.append(
                RoundTrace(tuple(transmitters), tuple(received))
            )
    return DisseminationResult(
        scheduler=scheduler,
        n=n,
        rounds=rounds,
        informed=informed_count,
        transmissions=transmissions,
        receptions=receptions,
        history=tuple(history) if record_history else None,
    )


def _selective_family(
    candidates: List[int],
    informed: bytearray,
    offsets,
    neighbours,
    signal: List[float],
    adversity: Optional[AdversityState],
    round_index: int,
) -> List[int]:
    """Greedily pack one affectance-selective family of transmitters.

    Walks every (candidate transmitter → uninformed receiver) link in
    decreasing signal order and admits the transmitter when every reception
    already planned for the family — including the new one — still clears
    the interference threshold.  The strongest candidate link is always
    admitted, so a fault-free round with a non-empty frontier informs at
    least one station.
    """
    links: List[Tuple[float, int, int]] = []
    for u in candidates:
        for k in range(offsets[u], offsets[u + 1]):
            v = neighbours[k]
            if informed[v]:
                continue
            if adversity is not None and adversity.node_crashed(
                v, round_index
            ):
                continue
            links.append((-signal[k], u, v))
    links.sort()
    chosen: Dict[int, None] = {}
    planned: Dict[int, float] = {}  # receiver → its planned signal
    interference: Dict[int, float] = {}  # receiver → Σ signal from chosen
    receivable = {v for _, _, v in links}
    for negative, u, v in links:
        s = -negative
        if v in planned:
            continue
        if u in chosen:
            # already transmitting; serving v costs nothing extra (the
            # interference total already includes u's own signal on v)
            if 2.0 * s > interference.get(v, 0.0):
                planned[v] = s
            continue
        # admitting u adds its signal to every receivable neighbour; check
        # the planned receptions it would touch, then the new one
        additions: List[Tuple[int, float]] = []
        feasible = True
        for k in range(offsets[u], offsets[u + 1]):
            x = neighbours[k]
            if x not in receivable:
                continue
            sx = signal[k]
            additions.append((x, sx))
            planned_signal = planned.get(x)
            if planned_signal is not None and x != v:
                if 2.0 * planned_signal <= interference.get(x, 0.0) + sx:
                    feasible = False
                    break
        if not feasible:
            continue
        new_interference = interference.get(v, 0.0) + s
        if 2.0 * s <= new_interference:
            continue
        chosen[u] = None
        for x, sx in additions:
            interference[x] = interference.get(x, 0.0) + sx
        planned[v] = s
    return list(chosen)


def _receptions(
    transmitters: List[int],
    informed: bytearray,
    offsets,
    neighbours,
    signal: List[float],
    adversity: Optional[AdversityState],
    adv_rng: Optional[random.Random],
    round_index: int,
) -> List[int]:
    """Evaluate the physical layer for one round's transmitter set.

    Returns the uninformed stations that decode the message, ascending —
    each from its strongest transmitting neighbour, iff that signal strictly
    dominates the sum of the others; loss/churn faults then drop individual
    decodes (drawn in ascending receiver order, so the fault stream is
    deterministic).
    """
    totals: Dict[int, float] = {}
    best: Dict[int, Tuple[float, int]] = {}
    for u in transmitters:
        for k in range(offsets[u], offsets[u + 1]):
            v = neighbours[k]
            if informed[v]:
                continue
            s = signal[k]
            totals[v] = totals.get(v, 0.0) + s
            incumbent = best.get(v)
            if incumbent is None or s > incumbent[0]:
                best[v] = (s, u)
    received: List[int] = []
    for v in sorted(best):
        s, u = best[v]
        if 2.0 * s <= totals[v]:
            continue  # collision: no strictly dominant signal
        if adversity is not None:
            if adversity.node_crashed(v, round_index):
                continue
            if adversity.drop_message(adv_rng, u, v, round_index):
                continue
        received.append(v)
    return received
