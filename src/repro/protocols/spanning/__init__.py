"""Point-to-point tree primitives.

These are the "local stage" building blocks of the paper's algorithms:
distributed breadth-first-search tree growth (used by the randomized
partitioning algorithm and by the point-to-point baselines) and
broadcast-and-respond / propagation of information with feedback (PIF,
Segall 1983), the primitive behind Step 1 of the deterministic partition and
the local stage of the global-sensitive-function algorithms.  The module also
provides plain-graph tree utilities (re-rooting, depths, children maps) used
by the orchestrated fragment algorithms.
"""

from repro.protocols.spanning.bfs import BFSTreeProtocol, build_bfs_forest
from repro.protocols.spanning.broadcast_convergecast import (
    TreeAggregationProtocol,
    simulate_broadcast,
    simulate_convergecast,
    simulate_pif,
)
from repro.protocols.spanning.tree_utils import (
    children_map,
    node_depths,
    reroot,
    subtree_sizes,
    tree_edges,
    validate_parent_map,
)

__all__ = [
    "BFSTreeProtocol",
    "build_bfs_forest",
    "TreeAggregationProtocol",
    "simulate_broadcast",
    "simulate_convergecast",
    "simulate_pif",
    "children_map",
    "node_depths",
    "reroot",
    "subtree_sizes",
    "tree_edges",
    "validate_parent_map",
]
