"""Distributed breadth-first-search tree growth.

In the synchronous model a BFS tree rooted at a node can be grown in ``D``
rounds (``D`` = eccentricity of the root) with one message per link: every
newly labelled node announces its label to its neighbours, and an unlabelled
node adopts the smallest label it hears, breaking ties by root identifier
(Gallager, 1982).  The randomized partitioning algorithm grows many BFS trees
simultaneously from its local centres, with a depth limit of ``4√n``
(Section 4, Step 2), and nodes may later switch to a different tree if that
strictly reduces their label.

Two entry points:

* :class:`BFSTreeProtocol` — the per-node protocol, run on the simulator.
* :func:`build_bfs_forest` — a sequential reference used by validators and by
  orchestrated algorithms that charge the (well-known) cost of a synchronous
  BFS analytically: ``depth`` rounds and at most one message per link per
  direction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.sim.events import ChannelEvent, Message
from repro.sim.node import NodeContext, NodeProtocol
from repro.topology.graph import WeightedGraph

NodeId = Hashable


def build_bfs_forest(
    graph: WeightedGraph,
    roots: List[NodeId],
    depth_limit: Optional[int] = None,
) -> Tuple[Dict[NodeId, Optional[NodeId]], Dict[NodeId, NodeId], Dict[NodeId, int]]:
    """Grow BFS trees from ``roots`` simultaneously (sequential reference).

    Ties between roots reaching a node at the same distance are broken in
    favour of the smaller root (by ``repr`` order, matching the protocol's
    "least id" rule).

    Args:
        graph: the point-to-point topology.
        roots: the tree roots (local centres).
        depth_limit: maximum label assigned; nodes farther than this from
            every root remain unlabelled.

    Returns:
        ``(parents, root_of, labels)`` — only labelled nodes appear.

    Raises:
        ValueError: if ``roots`` is empty or contains a node not in the graph.
    """
    if not roots:
        raise ValueError("need at least one BFS root")
    for root in roots:
        if not graph.has_node(root):
            raise ValueError(f"root {root!r} is not a node of the graph")
    ordered_roots = sorted(roots, key=repr)
    parents: Dict[NodeId, Optional[NodeId]] = {}
    root_of: Dict[NodeId, NodeId] = {}
    labels: Dict[NodeId, int] = {}
    queue = deque()
    for root in ordered_roots:
        parents[root] = None
        root_of[root] = root
        labels[root] = 0
        queue.append(root)
    while queue:
        node = queue.popleft()
        if depth_limit is not None and labels[node] >= depth_limit:
            continue
        for neighbor in graph.iter_neighbors(node):
            if neighbor in labels:
                continue
            labels[neighbor] = labels[node] + 1
            parents[neighbor] = node
            root_of[neighbor] = root_of[node]
            queue.append(neighbor)
    return parents, root_of, labels


class BFSTreeProtocol(NodeProtocol):
    """Per-node protocol growing BFS trees from the nodes marked as roots.

    Inputs (via ``ctx.extra``):
        ``is_root`` (bool): whether this node is a BFS root.
        ``depth_limit`` (int, optional): maximum label to adopt.
        ``num_rounds`` (int, optional): how many rounds to run before halting;
            defaults to ``depth_limit`` when given, else ``n``.

    Output (``result``): a dictionary with ``root``, ``parent`` and ``label``
    (``root`` is ``None`` for nodes no tree reached within the limits).

    A node adopts a new ``(label, root)`` pair only when it strictly improves
    — smaller label, or equal label with a smaller root identifier — and
    announces every improvement to its neighbours, exactly the rule of
    Section 4, Step 2.
    """

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self._is_root = bool(ctx.extra.get("is_root", False))
        self._depth_limit = ctx.extra.get("depth_limit")
        default_rounds = (
            self._depth_limit
            if self._depth_limit is not None
            else (ctx.n if ctx.n is not None else 1)
        )
        # +2 rounds of slack: one for the final announcements to land and one
        # for the adopting nodes to settle
        self._deadline = int(ctx.extra.get("num_rounds", default_rounds)) + 2
        self._round = 0
        self._label: Optional[int] = 0 if self._is_root else None
        self._root: Optional[NodeId] = ctx.node_id if self._is_root else None
        self._parent: Optional[NodeId] = None

    def _announce(self) -> None:
        if self._label is None:
            return
        self.send_to_all_neighbors(("bfs", self._root, self._label))

    def on_start(self) -> None:
        if self._is_root:
            self._announce()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        self._round += 1
        improved = False
        for message in inbox:
            kind, root, label = message.payload
            if kind != "bfs":
                continue
            candidate_label = label + 1
            if self._depth_limit is not None and candidate_label > self._depth_limit:
                continue
            if self._better(candidate_label, root):
                self._label = candidate_label
                self._root = root
                self._parent = message.sender
                improved = True
        if improved:
            self._announce()
        if self._round >= self._deadline:
            self.halt(
                {"root": self._root, "parent": self._parent, "label": self._label}
            )

    def _better(self, candidate_label: int, candidate_root: NodeId) -> bool:
        if self._label is None:
            return True
        if candidate_label < self._label:
            return True
        if candidate_label == self._label and self._root is not None:
            return repr(candidate_root) < repr(self._root)
        return False
