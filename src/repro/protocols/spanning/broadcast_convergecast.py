"""Broadcast-and-respond on a rooted tree (PIF, Segall 1983).

The paper's local computations all reduce to this primitive: the root
broadcasts a request down its tree, every node answers after hearing from all
its children, and answers are combined on the way up with an associative,
commutative operation.  On a tree of radius ``r`` with ``s`` nodes the
primitive takes ``2r`` rounds and ``2(s − 1)`` messages — the counts the
paper charges for Step 1 of the deterministic partition and for the local
stage of the global-sensitive-function algorithms.

Three forms are provided:

* :class:`TreeAggregationProtocol` — the per-node protocol, run on the
  simulator.  Each node is told its parent and children (established by a
  partitioning algorithm beforehand) and its local value.
* :class:`TreeAggregationFlyweight` — the same protocol as a flyweight
  (:mod:`repro.sim.flyweight`): one shared instance holding all per-node
  state in columnar slots, message-driven so large quiet networks cost no
  dispatch.  This is what the library's own algorithms run at scale; it is
  message-for-message equivalent to the per-node form
  (``tests/test_flyweight.py`` pins the equivalence).
* :func:`simulate_pif` / :func:`simulate_convergecast` /
  :func:`simulate_broadcast` — sequential references returning both the
  aggregate(s) and the exact time/message cost of the distributed execution;
  the orchestrated algorithms use these to charge their local stages.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.protocols.spanning.tree_utils import (
    children_map,
    node_depths,
    roots_of,
)
from repro.sim.events import ChannelEvent, Message
from repro.sim.flyweight import FlyweightEnvironment, FlyweightProtocol
from repro.sim.node import NodeContext, NodeProtocol

NodeId = Hashable
ParentMap = Dict[NodeId, Optional[NodeId]]
Combine = Callable[[Any, Any], Any]


@dataclass
class PIFCost:
    """Exact cost of one broadcast-and-respond on a forest.

    Attributes:
        rounds: time units (2 × the deepest tree's radius, plus one when the
            result is redistributed to the leaves).
        messages: point-to-point messages (2 per tree edge, plus one per edge
            for redistribution when requested).
    """

    rounds: int
    messages: int


def simulate_convergecast(
    parents: ParentMap,
    values: Dict[NodeId, Any],
    combine: Combine,
) -> Tuple[Dict[NodeId, Any], PIFCost]:
    """Aggregate ``values`` up every tree of the forest.

    Returns:
        ``(root → aggregate of its tree, cost)`` where the cost covers the
        upward wave only (``radius`` rounds, one message per tree edge).
    """
    children = children_map(parents)
    depths = node_depths(parents)
    aggregates: Dict[NodeId, Any] = {}

    order = sorted(parents, key=lambda node: -depths[node])
    partial: Dict[NodeId, Any] = {}
    for node in order:
        value = values[node]
        for child in children[node]:
            value = combine(value, partial[child])
        partial[node] = value
    for root in roots_of(parents):
        aggregates[root] = partial[root]
    radius = max(depths.values()) if depths else 0
    messages = sum(1 for parent in parents.values() if parent is not None)
    return aggregates, PIFCost(rounds=radius, messages=messages)


def simulate_broadcast(parents: ParentMap) -> PIFCost:
    """Return the cost of broadcasting one message from every root to its tree."""
    depths = node_depths(parents)
    radius = max(depths.values()) if depths else 0
    messages = sum(1 for parent in parents.values() if parent is not None)
    return PIFCost(rounds=radius, messages=messages)


def simulate_pif(
    parents: ParentMap,
    values: Dict[NodeId, Any],
    combine: Combine,
    redistribute: bool = False,
) -> Tuple[Dict[NodeId, Any], PIFCost]:
    """Broadcast-and-respond: request down, aggregate up, optionally result down.

    Returns:
        ``(root → aggregate, cost)``; the cost is the full broadcast +
        convergecast (+ redistribution when ``redistribute`` is set).
    """
    aggregates, up = simulate_convergecast(parents, values, combine)
    down = simulate_broadcast(parents)
    rounds = up.rounds + down.rounds
    messages = up.messages + down.messages
    if redistribute:
        rounds += down.rounds
        messages += down.messages
    return aggregates, PIFCost(rounds=rounds, messages=messages)


class TreeAggregationProtocol(NodeProtocol):
    """Per-node broadcast-and-respond over an already-established forest.

    Inputs (via ``ctx.extra``):
        ``parent``: this node's parent in the forest (``None`` for roots).
        ``children``: list of this node's children.
        ``value``: the local operand.
        ``combine``: the semigroup operation (a two-argument callable shared
            by all nodes).
        ``redistribute`` (bool): when set, each root broadcasts the aggregate
            back down so every node halts knowing its tree's aggregate.

    Output (``result``): the tree aggregate for roots (and for every node
    when ``redistribute`` is set); ``None`` otherwise.
    """

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self._parent: Optional[NodeId] = ctx.extra.get("parent")
        self._children: Tuple[NodeId, ...] = tuple(ctx.extra.get("children", ()))
        self._combine: Combine = ctx.extra["combine"]
        self._value: Any = ctx.extra["value"]
        self._redistribute: bool = bool(ctx.extra.get("redistribute", False))
        self._pending = set(self._children)
        self._accumulated = self._value
        self._reported = False

    def _maybe_report(self) -> None:
        if self._pending or self._reported:
            return
        self._reported = True
        if self._parent is not None:
            self.send(self._parent, ("aggregate", self._accumulated))
            if not self._redistribute:
                self.halt(None)
        else:
            if self._redistribute:
                for child in self._children:
                    self.send(child, ("final", self._accumulated))
            self.halt(self._accumulated)

    def on_start(self) -> None:
        # leaves can report immediately
        self._maybe_report()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        for message in inbox:
            kind, payload = message.payload
            if kind == "aggregate":
                if message.sender in self._pending:
                    self._pending.discard(message.sender)
                    self._accumulated = self._combine(self._accumulated, payload)
            elif kind == "final":
                for child in self._children:
                    self.send(child, ("final", payload))
                self.halt(payload)
                return
        # inline _maybe_report's guard: this runs every round on every node,
        # and most rounds a node is either still waiting or already reported
        if not (self._pending or self._reported):
            self._maybe_report()


class TreeAggregationFlyweight(FlyweightProtocol):
    """Flyweight twin of :class:`TreeAggregationProtocol` — columnar state.

    Same inputs (via ``env.inputs``, one dict per node: ``parent``,
    ``children``, ``value``, ``combine``, ``redistribute``) and same output
    (``results``: the tree aggregate for roots, and for every node when
    ``redistribute`` is set).  All per-node state lives in slot-indexed
    columns: the pending-children counts in an ``array('l')``, the reported
    flags in a ``bytearray``, the accumulators in one list.

    The protocol is message-driven (a node with an empty inbox can never
    change state: it either already reported or is waiting for mail), so the
    fault-free simulator loops dispatch only slots with mail — the property
    that makes n = 10⁵ aggregations cost O(messages), not
    O(rounds × nodes).

    The count-based pending column relies on the forest inputs being
    consistent (``children`` maps are exact inverses of ``parent``
    pointers, as :func:`~repro.protocols.spanning.tree_utils.children_map`
    produces), so each child reports at most once and only true children
    report — the classic form's per-sender membership check is then
    redundant.
    """

    MESSAGE_DRIVEN = True

    def __init__(self, env: FlyweightEnvironment) -> None:
        """Load the forest inputs into slot-indexed columns."""
        super().__init__(env)
        num_slots = env.num_slots
        inputs = env.inputs
        parent_col: List[Optional[NodeId]] = [None] * num_slots
        children_col: List[Tuple[NodeId, ...]] = [()] * num_slots
        pending = array("l", [0]) * num_slots
        acc: List[Any] = [None] * num_slots
        redistribute = bytearray(num_slots)
        combine: Optional[Combine] = None
        for slot, node in enumerate(env.nodes):
            extra = inputs[node]
            parent_col[slot] = extra.get("parent")
            children = tuple(extra.get("children", ()))
            children_col[slot] = children
            pending[slot] = len(children)
            acc[slot] = extra["value"]
            if extra.get("redistribute", False):
                redistribute[slot] = 1
            combine = extra["combine"]
        self._parent = parent_col
        self._children = children_col
        self._pending = pending
        self._acc = acc
        self._redistribute = redistribute
        self._reported = bytearray(num_slots)
        self._combine = combine

    def _report(self, slot: int) -> None:
        """Send this slot's aggregate up (or, for a root, resolve its tree)."""
        self._reported[slot] = 1
        parent = self._parent[slot]
        if parent is not None:
            self.send(parent, ("aggregate", self._acc[slot]))
            if not self._redistribute[slot]:
                self.halt_slot(slot, None)
        else:
            if self._redistribute[slot]:
                send = self.send
                final = ("final", self._acc[slot])
                for child in self._children[slot]:
                    send(child, final)
            self.halt_slot(slot, self._acc[slot])

    def on_start(self, slot: int) -> None:
        """Leaves (no pending children) report immediately."""
        if not self._pending[slot]:
            self._report(slot)

    def on_round(self, slot: int, inbox: List[Message],
                 channel: ChannelEvent) -> None:
        """Fold child reports into the accumulator; forward a final value down."""
        pending = self._pending
        for message in inbox:
            kind, payload = message.payload
            if kind == "aggregate":
                pending[slot] -= 1
                self._acc[slot] = self._combine(self._acc[slot], payload)
            else:  # "final"
                send = self.send
                final = ("final", payload)
                for child in self._children[slot]:
                    send(child, final)
                self.halt_slot(slot, payload)
                return
        if not (pending[slot] or self._reported[slot]):
            self._report(slot)
