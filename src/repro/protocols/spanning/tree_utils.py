"""Utilities for trees represented as parent maps.

Throughout the library a rooted tree (or forest) over the point-to-point
topology is represented as a mapping ``node → parent`` with roots mapping to
``None``.  These helpers compute the derived quantities the algorithms and
the validators need: children lists, depths, subtree sizes, re-rooting (used
when fragments merge over a selected outgoing edge), and structural
validation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

NodeId = Hashable
ParentMap = Dict[NodeId, Optional[NodeId]]


def validate_parent_map(parents: ParentMap) -> None:
    """Check that ``parents`` describes a forest (no cycles, closed under parents).

    Nodes already proven to reach a root are never re-walked, so the check
    is linear overall instead of linear per node.

    Raises:
        ValueError: if a referenced parent is missing or a cycle exists.
    """
    for node, parent in parents.items():
        if parent is not None and parent not in parents:
            raise ValueError(f"parent {parent!r} of {node!r} is not in the map")
    safe: Set[NodeId] = set()
    for start in parents:
        path: List[NodeId] = []
        on_path: Set[NodeId] = set()
        current = start
        while current is not None and current not in safe:
            if current in on_path:
                raise ValueError("parent map contains a cycle")
            path.append(current)
            on_path.add(current)
            current = parents[current]
        safe.update(path)


def children_map(parents: ParentMap) -> Dict[NodeId, List[NodeId]]:
    """Return ``node → list of children`` for a parent map."""
    children: Dict[NodeId, List[NodeId]] = {node: [] for node in parents}
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)
    return children


def roots_of(parents: ParentMap) -> List[NodeId]:
    """Return every root (node whose parent is ``None``)."""
    return [node for node, parent in parents.items() if parent is None]


def node_depths(parents: ParentMap) -> Dict[NodeId, int]:
    """Return each node's depth (hop distance to its root).

    Single BFS pass from the roots over a children index, rather than
    chasing parent chains per node: the partitioners call this once per
    phase, so the constant factor matters.

    Raises:
        KeyError: if a node's parent chain leaves the map or cycles (such a
            node is never reached from a root).
    """
    depths: Dict[NodeId, int] = {}
    children: Dict[NodeId, List[NodeId]] = {node: [] for node in parents}
    queue: deque = deque()
    for node, parent in parents.items():
        if parent is None:
            depths[node] = 0
            queue.append(node)
        else:
            children[parent].append(node)
    while queue:
        node = queue.popleft()
        child_depth = depths[node] + 1
        for child in children[node]:
            depths[child] = child_depth
            queue.append(child)
    if len(depths) != len(parents):
        unreachable = next(node for node in parents if node not in depths)
        raise KeyError(
            f"{unreachable!r} is not reachable from any root "
            "(missing parent or cycle)"
        )
    return depths


def tree_radius(parents: ParentMap) -> int:
    """Return the maximum depth over all nodes (the forest's radius from roots)."""
    if not parents:
        return 0
    return max(node_depths(parents).values())


def subtree_sizes(parents: ParentMap) -> Dict[NodeId, int]:
    """Return each node's subtree size (itself plus all descendants).

    Computed by accumulating along a reversed breadth-first order (children
    before parents), which is a single pass and never recurses, so it is
    safe on path-like trees of any depth.
    """
    children = children_map(parents)
    order: List[NodeId] = roots_of(parents)
    cursor = 0
    while cursor < len(order):
        order.extend(children[order[cursor]])
        cursor += 1
    sizes: Dict[NodeId, int] = {node: 1 for node in parents}
    for node in reversed(order):
        parent = parents[node]
        if parent is not None:
            sizes[parent] += sizes[node]
    return sizes


def tree_edges(parents: ParentMap) -> List[Tuple[NodeId, NodeId]]:
    """Return the (child, parent) edges of the forest."""
    return [(node, parent) for node, parent in parents.items() if parent is not None]


def members_by_root(parents: ParentMap) -> Dict[NodeId, List[NodeId]]:
    """Return ``root → list of nodes in its tree`` (roots included)."""
    result: Dict[NodeId, List[NodeId]] = {root: [] for root in roots_of(parents)}
    root_of: Dict[NodeId, NodeId] = {}

    def find_root(node: NodeId) -> NodeId:
        chain = []
        current = node
        while current not in root_of:
            parent = parents[current]
            if parent is None:
                root_of[current] = current
                break
            chain.append(current)
            current = parent
        root = root_of[current]
        for member in chain:
            root_of[member] = root
        return root

    for node in parents:
        result[find_root(node)].append(node)
    return result


def reroot(parents: ParentMap, members: List[NodeId], new_root: NodeId) -> None:
    """Re-root the tree containing ``members`` at ``new_root`` in place.

    Only the parent pointers along the path from ``new_root`` to the old root
    are reversed; all other pointers stay valid.  ``members`` is accepted (but
    not required to be exhaustive) purely for interface symmetry with the
    distributed operation, which broadcasts the re-rooting along the tree.

    Raises:
        KeyError: if ``new_root`` is not in the parent map.
    """
    if new_root not in parents:
        raise KeyError(f"{new_root!r} is not part of the forest")
    path: List[NodeId] = []
    current: Optional[NodeId] = new_root
    while current is not None:
        path.append(current)
        current = parents[current]
    # reverse parent pointers along the path
    for index in range(len(path) - 1, 0, -1):
        parents[path[index]] = path[index - 1]
    parents[new_root] = None


def path_to_root(parents: ParentMap, node: NodeId) -> List[NodeId]:
    """Return the path from ``node`` to its root, inclusive."""
    path = [node]
    current = parents[node]
    while current is not None:
        path.append(current)
        current = parents[current]
    return path


def breadth_first_order(parents: ParentMap, root: NodeId) -> List[NodeId]:
    """Return the nodes of ``root``'s tree in breadth-first order."""
    children = children_map(parents)
    order: List[NodeId] = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        order.append(node)
        queue.extend(children[node])
    return order
