"""Cole–Vishkin deterministic coin tossing (1986).

One *deterministic coin tossing* step takes a legal colouring of a rooted
forest with colours drawn from ``{0, …, K−1}`` and produces a legal colouring
with O(log K) colours: every non-root vertex finds the least significant bit
position at which its colour differs from its parent's and encodes
``(position, own bit value)`` as its new colour; the root pretends its parent
differs at position 0.  Iterating the step reduces ``n`` initial colours (the
node identifiers) to a constant number of colours in ``log* n + O(1)`` steps,
which is where the ubiquitous ``log* n`` factors in the paper's complexity
bounds come from.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

NodeId = Hashable


def log_star(n: float) -> int:
    """Return ``log* n``: the number of times ``log2`` must be applied to reach ≤ 1.

    The paper defines log* n as the minimum integer ``i`` such that applying
    ``log`` ``i`` times to ``n`` yields a value ≤ 1 (all logarithms base 2).

    Raises:
        ValueError: if ``n`` is not positive.
    """
    import math

    if n <= 0:
        raise ValueError("log* is only defined for positive arguments")
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def color_bit_length(num_colors: int) -> int:
    """Return the number of bits needed to write colours in ``{0..num_colors−1}``."""
    if num_colors < 1:
        raise ValueError("need at least one colour")
    return max(1, (num_colors - 1).bit_length())


def _differing_bit(a: int, b: int, bits: int) -> int:
    """Return the least significant bit position at which ``a`` and ``b`` differ.

    When ``a == b`` (which a legal colouring forbids between parent and
    child) the position ``bits`` is returned so the caller can detect it.
    """
    diff = a ^ b
    if diff == 0:
        return bits
    return (diff & -diff).bit_length() - 1


def cole_vishkin_step(
    colors: Dict[NodeId, int],
    parents: Dict[NodeId, Optional[NodeId]],
    num_colors: int,
    out: Optional[Dict[NodeId, int]] = None,
) -> Dict[NodeId, int]:
    """Apply one deterministic coin-tossing step to a legal forest colouring.

    Args:
        colors: current legal colouring (child colour ≠ parent colour).
        parents: rooted-forest structure; roots map to ``None``.
        num_colors: an upper bound on the current number of colours (the new
            colours lie in ``{0, …, 2·⌈log2 num_colors⌉ − 1}``).
        out: optional dictionary to write the new colouring into (cleared
            first; must not be ``colors`` itself).  The iterated caller
            ping-pongs two dictionaries through the ``log* n`` steps instead
            of allocating a fresh one per step; vertices are inserted in
            ``parents`` order either way, so the result is bit-identical to
            the allocating form.

    Returns:
        The new colouring (``out`` when given, else a fresh dictionary).

    Raises:
        ValueError: if the input colouring is not legal, or ``out`` aliases
            ``colors``.
    """
    bits = color_bit_length(num_colors)
    if out is None:
        new_colors: Dict[NodeId, int] = {}
    else:
        if out is colors:
            raise ValueError("out must not alias the input colouring")
        new_colors = out
        new_colors.clear()
    for node, parent in parents.items():
        own = colors[node]
        if parent is None:
            # the root behaves as if its parent differed at bit position 0
            new_colors[node] = (own & 1)
            continue
        # inlined _differing_bit: this loop runs once per vertex per step;
        # position >= bits means equal colours or colours outside the
        # declared palette, both of which the contract forbids
        diff = own ^ colors[parent]
        position = bits if diff == 0 else (diff & -diff).bit_length() - 1
        if position >= bits:
            raise ValueError(
                f"illegal colouring: node {node!r} and its parent share colour {own}"
            )
        new_colors[node] = 2 * position + ((own >> position) & 1)
    return new_colors


def colors_after_step(num_colors: int) -> int:
    """Return the colour-count bound after one Cole–Vishkin step."""
    return 2 * color_bit_length(num_colors)


def steps_to_constant(num_colors: int, target: int = 6) -> int:
    """Return how many CV steps reduce ``num_colors`` colours to at most ``target``.

    Used by the complexity accounting: the deterministic partition charges one
    parent→child communication round per step.
    """
    if target < 6:
        raise ValueError("the CV iteration cannot go below six colours by itself")
    steps = 0
    current = num_colors
    while current > target:
        nxt = colors_after_step(current)
        steps += 1
        if nxt >= current:
            break
        current = nxt
    return steps
