"""Deterministic symmetry breaking on rooted forests.

The deterministic partitioning algorithm (Section 3) caps the radius of the
fragments it builds by 3-colouring the "fragment forest" F with the parallel
algorithm of Goldberg, Plotkin and Shannon (1987) — itself based on the
deterministic coin tossing of Cole and Vishkin (1986) — and then extracting a
maximal independent set that contains every root (Steps 4 and 5 of the paper).
These routines are formulated vertex-locally: a vertex's new colour depends
only on its own state and its parent's colour, so each step corresponds to
one round of parent→child communication, which the caller charges at the
fragment level (O(2^i) time per round in phase ``i``).
"""

from repro.protocols.symmetry.cole_vishkin import (
    cole_vishkin_step,
    color_bit_length,
    log_star,
)
from repro.protocols.symmetry.three_coloring import (
    ColoringResult,
    is_legal_coloring,
    three_color_rooted_forest,
)
from repro.protocols.symmetry.mis import (
    MISResult,
    is_independent_set,
    is_maximal_independent_set,
    mis_from_three_coloring,
)

__all__ = [
    "cole_vishkin_step",
    "color_bit_length",
    "log_star",
    "ColoringResult",
    "is_legal_coloring",
    "three_color_rooted_forest",
    "MISResult",
    "is_independent_set",
    "is_maximal_independent_set",
    "mis_from_three_coloring",
]
