"""Goldberg–Plotkin–Shannon 3-colouring of a rooted forest (1987).

Step 3 of the deterministic partitioning algorithm 3-colours the fragment
forest F.  The GPS algorithm does this in ``O(log* n)`` parent→child
communication rounds:

1. start from the (distinct) vertex identifiers as colours;
2. apply Cole–Vishkin deterministic coin-tossing steps until at most six
   colours remain (``log* n + O(1)`` steps);
3. eliminate colours 5, 4 and 3 one at a time with a *shift-down + recolour*
   step: every non-root vertex adopts its parent's colour (so all siblings
   agree), the root picks a colour in ``{0,1,2}`` different from its own, and
   every vertex currently holding the colour being eliminated picks the
   smallest colour in ``{0,1,2}`` used by neither its parent nor its
   (now unanimous) children.

Every step reads only a vertex's own state and its parent's colour, so each
step costs one round of communication from parents to children; the result
records the number of such rounds for the caller's complexity accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.protocols.symmetry.cole_vishkin import (
    cole_vishkin_step,
    colors_after_step,
)

NodeId = Hashable


@dataclass
class ColoringResult:
    """A legal colouring of a rooted forest together with its round count.

    Attributes:
        colors: mapping vertex → colour in ``{0, 1, 2}``.
        communication_rounds: number of parent→child communication rounds the
            distributed execution of the algorithm needs (CV iterations plus
            the three shift-down rounds); the deterministic partition charges
            ``O(2^i)`` time and ``O(fragment sizes)`` messages per round.
    """

    colors: Dict[NodeId, int]
    communication_rounds: int


def is_legal_coloring(
    colors: Dict[NodeId, int],
    parents: Dict[NodeId, Optional[NodeId]],
) -> bool:
    """Return ``True`` when no vertex shares a colour with its parent."""
    for node, parent in parents.items():
        if parent is not None and colors[node] == colors[parent]:
            return False
    return True


def three_color_rooted_forest(
    parents: Dict[NodeId, Optional[NodeId]],
    identifiers: Optional[Dict[NodeId, int]] = None,
) -> ColoringResult:
    """3-colour a rooted forest with the GPS algorithm.

    Args:
        parents: rooted-forest structure; roots map to ``None``.  Every parent
            referenced must itself be a key of the mapping.
        identifiers: distinct non-negative integers used as initial colours;
            defaults to enumerating the vertices.  In the paper these are the
            fragment (core) identifiers, which are distinct by construction.

    Returns:
        A :class:`ColoringResult` with colours in ``{0, 1, 2}``.

    Raises:
        ValueError: if a parent is missing from the map, identifiers repeat,
            or the structure contains a cycle.
    """
    _validate_forest(parents)
    if identifiers is None:
        identifiers = {node: index for index, node in enumerate(parents)}
    if len(set(identifiers.values())) != len(identifiers):
        raise ValueError("initial identifiers must be distinct")

    colors = {node: int(identifiers[node]) for node in parents}
    if not parents:
        return ColoringResult(colors={}, communication_rounds=0)
    num_colors = max(colors.values()) + 1
    rounds = 0

    # Phase 1: Cole–Vishkin until at most six colours remain.  The iteration
    # ping-pongs two dictionaries (`colors` was freshly built above, so it is
    # safe to recycle): each step writes into the spare and the dicts swap
    # roles, avoiding a fresh O(n) allocation per log* n step.
    spare: Dict[NodeId, int] = {}
    while num_colors > 6:
        colors, spare = cole_vishkin_step(colors, parents, num_colors, out=spare), colors
        next_bound = colors_after_step(num_colors)
        rounds += 1
        if next_bound >= num_colors:
            break
        num_colors = next_bound

    # Phase 2: eliminate colours 5, 4, 3 via shift-down + recolour.  The
    # shift-down and recolour passes are fused into one pass per eliminated
    # colour: a vertex's shifted colour is its parent's old colour (roots
    # recolour against their own old colour), and after the shift all of a
    # vertex's children agree on the vertex's *old* colour — so the recolour
    # step never needs the materialized shifted dictionary, only O(1)
    # lookups (parent's shifted colour = grandparent's old colour) plus
    # whether the vertex has children at all.
    has_children = {parent for parent in parents.values() if parent is not None}
    for eliminated in (5, 4, 3):
        recolored: Dict[NodeId, int] = {}
        for node, parent in parents.items():
            if parent is None:
                shifted = _smallest_excluding({colors[node]})
            else:
                shifted = colors[parent]
            if shifted != eliminated:
                recolored[node] = shifted
                continue
            forbidden = set()
            if parent is not None:
                grandparent = parents[parent]
                if grandparent is None:
                    forbidden.add(_smallest_excluding({colors[parent]}))
                else:
                    forbidden.add(colors[grandparent])
            if node in has_children:
                forbidden.add(colors[node])
            recolored[node] = _smallest_excluding(forbidden)
        colors = recolored
        rounds += 1

    if not is_legal_coloring(colors, parents):
        raise AssertionError("GPS colouring produced an illegal colouring")
    if any(color > 2 for color in colors.values()):
        raise AssertionError("GPS colouring did not reach three colours")
    return ColoringResult(colors=colors, communication_rounds=rounds)


def _smallest_excluding(forbidden) -> int:
    for candidate in (0, 1, 2, 3):
        if candidate not in forbidden:
            return candidate
    raise AssertionError("three forbidden colours cannot exclude all of {0,1,2,3}")


def _validate_forest(parents: Dict[NodeId, Optional[NodeId]]) -> None:
    for node, parent in parents.items():
        if parent is not None and parent not in parents:
            raise ValueError(f"parent {parent!r} of {node!r} is not a vertex")
    # cycle detection by walking each vertex towards its root; vertices
    # already proven safe are never re-walked, keeping the check linear
    safe: set = set()
    for start in parents:
        seen = set()
        current = start
        while current is not None and current not in safe:
            if current in seen:
                raise ValueError("the parent map contains a cycle")
            seen.add(current)
            current = parents[current]
            if len(seen) > len(parents):
                raise ValueError("the parent map contains a cycle")
        safe.update(seen)
