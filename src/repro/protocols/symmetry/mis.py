"""Maximal independent set containing all roots, from a 3-colouring.

Steps 4 and 5 of the deterministic partitioning algorithm (Section 3) turn a
legal 3-colouring of the fragment forest F into a maximal independent set
(MIS) that contains the root of every tree of F.  With the colours named
red, green and blue, the recolouring proceeds as follows (all reads use the
colours of the *previous* step, so each step is one communication round):

* **Step 4 (shift-down with red roots).**  Every vertex other than a root or
  a root's child adopts its parent's colour.  If a root is red, each of its
  children picks a colour different from red and from its own; otherwise the
  root's children adopt the root's colour and the root becomes red.
* **Step 5 (greedy completion).**  Every blue vertex with no red neighbour
  becomes red; then every green vertex with no red neighbour becomes red.

The red vertices then form an MIS of F that includes every root, so any path
in F between two red vertices has length at most three — the fact Step 6 of
the partitioning algorithm uses to cut every tree of F into subtrees of
constant radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

NodeId = Hashable

RED = 0
GREEN = 1
BLUE = 2

#: Number of parent→child communication rounds Steps 4 and 5 need: one for the
#: shift-down, one for the blue pass and one for the green pass.
MIS_COMMUNICATION_ROUNDS = 3


@dataclass
class MISResult:
    """The MIS produced by Steps 4–5 and the recoloured forest.

    Attributes:
        independent_set: the red vertices (contains every root of the forest).
        colors: the final colouring (red vertices are exactly the MIS).
        communication_rounds: rounds of parent↔child communication used.
    """

    independent_set: Set[NodeId]
    colors: Dict[NodeId, int]
    communication_rounds: int


def _children_map(parents: Dict[NodeId, Optional[NodeId]]) -> Dict[NodeId, List[NodeId]]:
    children: Dict[NodeId, List[NodeId]] = {node: [] for node in parents}
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)
    return children


def _neighbors(
    node: NodeId,
    parents: Dict[NodeId, Optional[NodeId]],
    children: Dict[NodeId, List[NodeId]],
) -> List[NodeId]:
    result = list(children[node])
    parent = parents[node]
    if parent is not None:
        result.append(parent)
    return result


def mis_from_three_coloring(
    parents: Dict[NodeId, Optional[NodeId]],
    colors: Dict[NodeId, int],
) -> MISResult:
    """Run Steps 4 and 5 of the partitioning algorithm on forest ``parents``.

    Args:
        parents: rooted forest (roots map to ``None``).
        colors: a legal 3-colouring with colours in ``{0, 1, 2}`` (0 = red).

    Returns:
        The :class:`MISResult`; the red set is a maximal independent set of
        the forest and contains every root.

    Raises:
        ValueError: if the colouring is illegal or uses colours outside
            ``{0, 1, 2}``.
    """
    for node, parent in parents.items():
        if colors[node] not in (RED, GREEN, BLUE):
            raise ValueError(f"vertex {node!r} has a colour outside {{0,1,2}}")
        if parent is not None and colors[node] == colors[parent]:
            raise ValueError("the supplied colouring is not legal")

    children = _children_map(parents)
    roots = [node for node, parent in parents.items() if parent is None]
    root_children = {child for root in roots for child in children[root]}

    # ------------------------------------------------------------------
    # Step 4: shift-down that leaves every root red.
    # ------------------------------------------------------------------
    step4: Dict[NodeId, int] = {}
    for node, parent in parents.items():
        if parent is None:
            # roots are handled below (they may need to turn red)
            continue
        if node in root_children:
            continue
        step4[node] = colors[parents[node]]
    for root in roots:
        if colors[root] == RED:
            step4[root] = RED
            for child in children[root]:
                step4[child] = _color_other_than(RED, colors[child])
        else:
            step4[root] = RED
            for child in children[root]:
                step4[child] = colors[root]

    # ------------------------------------------------------------------
    # Step 5: promote blue then green vertices with no red neighbour.
    # ------------------------------------------------------------------
    step5 = dict(step4)
    for node in parents:
        if step4[node] != BLUE:
            continue
        if all(step4[neighbor] != RED for neighbor in _neighbors(node, parents, children)):
            step5[node] = RED
    final = dict(step5)
    for node in parents:
        if step5[node] != GREEN:
            continue
        if all(step5[neighbor] != RED for neighbor in _neighbors(node, parents, children)):
            final[node] = RED

    independent = {node for node, color in final.items() if color == RED}
    return MISResult(
        independent_set=independent,
        colors=final,
        communication_rounds=MIS_COMMUNICATION_ROUNDS,
    )


def _color_other_than(first: int, second: int) -> int:
    for candidate in (GREEN, BLUE, RED):
        if candidate != first and candidate != second:
            return candidate
    raise AssertionError("two excluded colours always leave one of three available")


def is_independent_set(
    parents: Dict[NodeId, Optional[NodeId]],
    vertices: Set[NodeId],
) -> bool:
    """Return ``True`` when no two vertices of ``vertices`` are adjacent in the forest."""
    for node, parent in parents.items():
        if parent is not None and node in vertices and parent in vertices:
            return False
    return True


def is_maximal_independent_set(
    parents: Dict[NodeId, Optional[NodeId]],
    vertices: Set[NodeId],
) -> bool:
    """Return ``True`` when ``vertices`` is independent and cannot be extended."""
    if not is_independent_set(parents, vertices):
        return False
    children = _children_map(parents)
    for node in parents:
        if node in vertices:
            continue
        if not any(
            neighbor in vertices for neighbor in _neighbors(node, parents, children)
        ):
            return False
    return True
