"""Geometric skip-ahead for homogeneous randomized contention.

The randomized conflict-resolution stage of the paper (Section 5.1, realised
by :class:`~repro.protocols.collision.metcalfe_boggs.MetcalfeBoggsContender`)
has every unresolved contender transmit independently in every slot with the
*same* probability ``p = 1/k̂``, where ``k̂`` is the publicly maintained
estimate of the remaining contenders.  Simulating that process slot by slot
costs Θ(pending) work per slot — Θ(n²) for the channel-only baseline of the
model-separation experiment — even though almost every slot is idle.

This module skips the idle runs in O(1) using inverse-transform sampling.
With ``m`` pending contenders each transmitting with probability ``p``:

* a slot is **idle** with probability ``q = (1 − p)^m``, so the length of an
  idle run is geometric and can be drawn in one shot as
  ``⌊ln(1 − u) / ln q⌋`` (:func:`geometric_idle_run`) — this is exactly the
  superposition of the per-contender geometric inter-transmission gaps, so
  the slot loop advances directly to the next slot in which *any* contender
  transmits;
* conditioned on a busy slot, the number of transmitters is a Binomial(m, p)
  truncated at ≥ 1: **success** (exactly one transmitter) has conditional
  probability ``m·p·(1 − p)^{m−1} / (1 − q)`` and the successful contender is
  uniform among the pending ones (:func:`split_busy_slot`); a **collision**'s
  multiplicity follows the tail of the same binomial
  (:func:`collision_multiplicity`).

Between successes the process is memoryless (``p`` only changes when a
success is heard, and collisions change no contender's state), so the sampled
trajectory has *exactly* the per-slot process's distribution — only the RNG
stream consumption differs, which is why the RNG-dependent golden data is
versioned (``tests/data/goldens/v2``) and a statistical-equivalence suite
pins the two implementations against each other.

:func:`run_geometric_contention` is the scheduler fast path; callers go
through :func:`~repro.protocols.collision.base.run_contention`, which
delegates here when every pending contender declares the capability.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.sim.channel import SlottedChannel
from repro.sim.errors import ProtocolError
from repro.sim.metrics import MetricsRecorder

NodeId = Hashable


def geometric_idle_run(u: float, idle_probability: float) -> int:
    """Return the length of an idle run drawn by inverse-transform sampling.

    The run length ``G`` (number of consecutive idle slots before the next
    busy slot) of a slotted process whose slots are independently idle with
    probability ``q`` satisfies ``P(G ≥ j) = q^j``; inverting the CDF at a
    uniform draw ``u ∈ [0, 1)`` gives ``G = ⌊ln(1 − u) / ln q⌋``, which
    matches the naive slot-by-slot simulation in distribution (guarded by
    ``tests/test_skip_ahead.py``).

    Args:
        u: a uniform variate in ``[0, 1)``.
        idle_probability: the per-slot idle probability ``q`` in ``[0, 1)``.

    Returns:
        The number of idle slots to skip (``≥ 0``).

    Raises:
        ValueError: if ``idle_probability`` is 1 or more — the run would be
            infinite; callers must special-case a certain-idle slot (it only
            arises when the transmit probability underflows to 0, e.g. an
            astronomically large contender estimate) as budget exhaustion.
    """
    if idle_probability <= 0.0:
        return 0
    if idle_probability >= 1.0:
        raise ValueError("a certainly-idle slot has an infinite idle run")
    return int(math.log(1.0 - u) / math.log(idle_probability))


def success_given_busy(p: float, m: int) -> float:
    """Return ``P(exactly one of m transmits | at least one transmits)``.

    With each of ``m`` contenders transmitting independently with probability
    ``p``, the conditional success probability of a busy slot is
    ``m·p·(1 − p)^{m−1} / (1 − (1 − p)^m)``.
    """
    if m <= 0:
        raise ValueError("need at least one contender")
    if p >= 1.0:
        return 1.0 if m == 1 else 0.0
    q_all_silent = (1.0 - p) ** m
    busy = 1.0 - q_all_silent
    if busy <= 0.0:
        # p == 0 degenerate case; the caller never fast-forwards with p == 0
        return 0.0
    return m * p * (1.0 - p) ** (m - 1) / busy


def collision_multiplicity(u: float, p: float, m: int) -> int:
    """Sample how many of ``m`` contenders collided, given ≥ 2 transmitted.

    Inverse-transform over the Binomial(m, p) tail: the probability of
    exactly ``c`` transmitters is ``C(m, c)·p^c·(1 − p)^{m−c}``; conditioning
    on a collision renormalises by ``1 − (1−p)^m − m·p·(1−p)^{m−1}``.  The
    conditional distribution concentrates on 2–3 for the ``p ≈ 1/m`` regime
    the protocols operate in, so the scan terminates in O(1) expected steps.

    Args:
        u: a uniform variate in ``[0, 1)``.
        p: the per-contender transmit probability.
        m: the number of pending contenders (``≥ 2``).
    """
    if m < 2:
        raise ValueError("a collision needs at least two contenders")
    if p >= 1.0:
        return m
    q = 1.0 - p
    idle = q ** m
    success = m * p * q ** (m - 1)
    normaliser = 1.0 - idle - success
    if normaliser <= 0.0:
        return 2
    target = u * normaliser
    # walk the binomial pmf upward from c = 2 via the term ratio
    term = (m * (m - 1) / 2.0) * p * p * q ** (m - 2)
    acc = 0.0
    for c in range(2, m):
        acc += term
        if target < acc:
            return c
        term *= (m - c) / (c + 1) * (p / q)
    return m


def run_geometric_contention(
    contenders: Sequence[Tuple[Any, ...]],
    rate: float,
    channel: SlottedChannel,
    metrics: Optional[MetricsRecorder],
    max_slots: int,
    start_slot: int,
    start_successes: int = 0,
):
    """Drive homogeneous geometric contenders with idle runs skipped in O(1).

    This is the fast path of
    :func:`~repro.protocols.collision.base.run_contention`; it produces a
    :class:`~repro.protocols.collision.base.ScheduleOutcome` whose
    distribution is exactly that of the per-slot loop (see the module
    docstring for the argument), while doing O(1) work per *busy* slot
    instead of O(pending) work per slot.

    Args:
        contenders: the pending worklist entries ``(contender, …)`` as built
            by ``run_contention`` (only element 0 is read here).
        rate: the shared per-slot transmit probability at zero successes.
        channel: the slotted channel busy slots are resolved on; skipped idle
            runs are charged in one batch via
            :meth:`~repro.sim.channel.SlottedChannel.skip_idle_slots`.
        metrics: optional accountant (the channel also feeds it per slot).
        max_slots: slot budget; exceeding it raises like the per-slot loop.
        start_slot: index of the first slot to contend in.
        start_successes: successes the batch has already heard (``rate``
            must be the rate at this count); the central count resumes from
            here so partially-observed batches contend correctly.

    Raises:
        ProtocolError: when the budget is exhausted before every contender is
            resolved (the per-slot loop's contract).
    """
    # imported lazily to avoid a circular import with base.py
    from repro.protocols.collision.base import ScheduleOutcome

    pending: List[Any] = [entry[0] for entry in contenders]
    # every slot-level draw comes from one contender's private RNG (the first
    # pending one at entry) so the run stays deterministic under the caller's
    # seeding discipline and consumes no global randomness
    draw = pending[0].skip_ahead_rng().random
    order: List[NodeId] = []
    broadcasts: List[Any] = []
    collisions = 0
    idle = 0
    slot = start_slot
    used = 0
    successes = start_successes
    p = rate
    while pending:
        m = len(pending)
        q_idle = (1.0 - p) ** m if p < 1.0 else 0.0
        if q_idle >= 1.0:
            # the transmit probability underflowed to zero: every slot is
            # certainly idle, so the run can only end in budget exhaustion
            # (the per-slot loop idles its way to the same ProtocolError)
            run_length = max_slots - used
        elif q_idle > 0.0:
            run_length = geometric_idle_run(draw(), q_idle)
        else:
            run_length = 0
        if used + run_length >= max_slots:
            # in per-slot terms the contention would have burned the whole
            # budget on idle slots: account them and fail identically
            channel.skip_idle_slots(max_slots - used)
            idle += max_slots - used
            used = max_slots
            _commit_pending(pending, successes)
            if metrics is not None:
                metrics.record_round(used)
            raise ProtocolError(
                f"contention did not resolve within {max_slots} slots"
            )
        if run_length:
            channel.skip_idle_slots(run_length)
            idle += run_length
            slot += run_length
            used += run_length
        if draw() < success_given_busy(p, m):
            winner_index = int(draw() * m)
            winner = pending[winner_index]
            event = channel.resolve_slot(
                slot, ((winner.identity, winner.payload),)
            )
            order.append(event.writer)
            broadcasts.append(event.payload)
            successes += 1
            winner.commit_skip_ahead(slot, successes)
            # swap-remove keeps the pop O(1); the winner is drawn uniformly,
            # so the worklist order carries no distributional weight
            pending[winner_index] = pending[-1]
            pending.pop()
            if pending:
                p = pending[0].contention_rate(successes)
        else:
            multiplicity = collision_multiplicity(draw(), p, m)
            # the public outcome of a collision reveals only *that* it
            # happened; the writer identities recorded on the event exist for
            # metrics/debugging, so charging the first `multiplicity` pending
            # contenders keeps the write-attempt accounting exact without
            # spending draws on the subset's identity
            writes = tuple(
                (contender.identity, contender.payload)
                for contender in pending[:multiplicity]
            )
            channel.resolve_slot(slot, writes)
            collisions += 1
        slot += 1
        used += 1
    if metrics is not None:
        metrics.record_round(used)
    return ScheduleOutcome(
        slots_used=used,
        order=order,
        broadcasts=broadcasts,
        collisions=collisions,
        idle=idle,
    )


def _commit_pending(pending: Sequence[Any], successes: int) -> None:
    """Sync the lazily-maintained contender state before a budget failure."""
    for contender in pending:
        contender.commit_skip_ahead(None, successes)


__all__ = [
    "collision_multiplicity",
    "geometric_idle_run",
    "run_geometric_contention",
    "success_given_busy",
]
