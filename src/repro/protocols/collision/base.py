"""Common machinery for channel conflict-resolution protocols.

A *contender* is a node that has something to broadcast (in the paper: a
fragment root holding a partial result).  A conflict-resolution protocol
schedules the contenders so that each one eventually gets a ``success`` slot.
The :class:`ChannelContender` interface captures one contender's local state
machine: each slot it decides whether to transmit, then observes the slot
outcome.  Crucially, the decision may depend only on information the model
makes public — the node's own identity/payload and the sequence of slot
outcomes so far — so that *every* node (contender or not) can follow the
protocol's progress by listening.

:func:`run_contention` drives a set of contenders against a
:class:`~repro.sim.channel.SlottedChannel` directly (no point-to-point
network involved), which is how the larger algorithms account for their
channel stage; :class:`ContenderProtocol` wraps a contender as a
:class:`~repro.sim.node.NodeProtocol` so the same state machines also run on
the full simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.sim.channel import SlottedChannel
from repro.sim.errors import ProtocolError
from repro.sim.events import ChannelEvent, Message, SlotState
from repro.sim.metrics import MetricsRecorder
from repro.sim.node import NodeContext, NodeProtocol

NodeId = Hashable


class ChannelContender:
    """One contender's state machine for a conflict-resolution protocol.

    Class attribute ``RESOLVES_ONLY_ON_SUCCESS`` declares when ``resolved``
    can flip: the base implementation (and both concrete protocols) resolve a
    contender only in a slot it transmitted in that came back *success*.  A
    subclass whose ``observe``/``resolved`` can report resolution after an
    idle or collision slot must set it to ``False`` so the scheduler rechecks
    the worklist after every slot instead of only after successes.
    """

    RESOLVES_ONLY_ON_SUCCESS = True

    def __init__(self, identity: NodeId, payload: Any = None) -> None:
        self.identity = identity
        self.payload = payload
        self._succeeded_in_slot: Optional[int] = None

    # ------------------------------------------------------------------
    # protocol interface
    # ------------------------------------------------------------------
    def wants_to_transmit(self, slot: int) -> bool:
        """Return ``True`` when this contender transmits in the given slot."""
        raise NotImplementedError

    def observe(self, event: ChannelEvent, transmitted: bool) -> None:
        """Update local state after the slot resolves.

        Args:
            event: the (public) outcome of the slot.
            transmitted: whether *this* contender transmitted in the slot.
        """
        if transmitted and event.is_success():
            self._succeeded_in_slot = event.slot

    @property
    def resolved(self) -> bool:
        """Return ``True`` once this contender has had a successful slot."""
        return self._succeeded_in_slot is not None

    @property
    def success_slot(self) -> Optional[int]:
        """Return the slot in which this contender succeeded, if any."""
        return self._succeeded_in_slot


@dataclass
class ScheduleOutcome:
    """Result of scheduling a set of contenders on the channel.

    Attributes:
        slots_used: total number of channel slots consumed.
        order: the contenders' identities in the order they succeeded.
        broadcasts: the payloads heard, in broadcast order.
        collisions: number of collision slots.
        idle: number of idle slots.
    """

    slots_used: int
    order: List[NodeId]
    broadcasts: List[Any]
    collisions: int
    idle: int


def run_contention(
    contenders: Sequence[ChannelContender],
    max_slots: int = 1_000_000,
    metrics: Optional[MetricsRecorder] = None,
    channel: Optional[SlottedChannel] = None,
    start_slot: int = 0,
) -> ScheduleOutcome:
    """Schedule ``contenders`` on a slotted channel until all are resolved.

    In the model every node hears every slot; the orchestration only delivers
    observations to the *unresolved* contenders, because a resolved contender
    never transmits again and its local state can no longer influence the
    schedule.  (Code that needs the full listening behaviour runs contenders
    on the simulator via :class:`ContenderProtocol` instead.)

    Raises:
        ProtocolError: if the contenders fail to resolve within ``max_slots``
            slots, which indicates a protocol bug or an unreachable schedule.
    """
    channel = channel if channel is not None else SlottedChannel(metrics=metrics)
    order: List[NodeId] = []
    broadcasts: List[Any] = []
    collisions = 0
    idle = 0
    slot = start_slot
    used = 0
    # only unresolved contenders can transmit or act on what they hear, so
    # track them in a worklist instead of re-scanning the whole field every
    # slot
    # the worklist carries each contender with its two per-slot methods
    # pre-bound: both run once per contender per slot, where the attribute
    # lookups alone are measurable
    pending = [
        (contender, contender.wants_to_transmit, contender.observe)
        for contender in contenders
        if not contender.resolved
    ]
    # when every contender resolves only in its own successful slot (the
    # declared default), the worklist can stay untouched after idle and
    # collision slots; and when none overrides `resolved`, the filter can
    # read the backing field instead of going through the property
    success_only = all(
        type(contender).RESOLVES_ONLY_ON_SUCCESS for contender, _, _ in pending
    )
    plain_resolved = all(
        type(contender).resolved is ChannelContender.resolved
        for contender, _, _ in pending
    )
    flags: List[bool] = []
    while pending:
        if used >= max_slots:
            if metrics is not None:
                metrics.record_round(used)
            raise ProtocolError(
                f"contention did not resolve within {max_slots} slots"
            )
        writes: List[Tuple[NodeId, Any]] = []
        flags.clear()
        for contender, wants_to_transmit, _ in pending:
            transmitted = wants_to_transmit(slot)
            flags.append(transmitted)
            if transmitted:
                writes.append((contender.identity, contender.payload))
        event = channel.resolve_slot(slot, writes)
        public = event.public_view()
        state = event.state
        if state is SlotState.SUCCESS:
            order.append(event.writer)
            broadcasts.append(event.payload)
        elif state is SlotState.COLLISION:
            collisions += 1
        else:
            idle += 1
        # one fused pass: deliver the observation and, when this slot could
        # have resolved someone, rebuild the worklist in the same sweep
        # (`resolved` depends only on the contender's own state, so filtering
        # right after its observe() matches the old observe-then-filter)
        if success_only and state is not SlotState.SUCCESS:
            for entry, transmitted in zip(pending, flags):
                entry[2](public, transmitted)
        elif plain_resolved:
            next_pending = []
            for entry, transmitted in zip(pending, flags):
                entry[2](public, transmitted)
                if entry[0]._succeeded_in_slot is None:
                    next_pending.append(entry)
            pending = next_pending
        else:
            next_pending = []
            for entry, transmitted in zip(pending, flags):
                entry[2](public, transmitted)
                if not entry[0].resolved:
                    next_pending.append(entry)
            pending = next_pending
        slot += 1
        used += 1
    # rounds are recorded in one batch: every slot is one time unit, and no
    # caller reads the recorder mid-contention
    if metrics is not None:
        metrics.record_round(used)
    return ScheduleOutcome(
        slots_used=used,
        order=order,
        broadcasts=broadcasts,
        collisions=collisions,
        idle=idle,
    )


class ContenderProtocol(NodeProtocol):
    """Run a :class:`ChannelContender` as a node protocol on the simulator.

    Non-contending nodes simply listen and halt once they have heard the
    expected number of successful broadcasts (when that number is known) or
    once an externally supplied predicate fires.
    """

    def __init__(
        self,
        ctx: NodeContext,
        contender: Optional[ChannelContender],
        expected_successes: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self._contender = contender
        self._expected = expected_successes
        self._heard: List[Any] = []
        self._slot = 0

    @property
    def heard(self) -> List[Any]:
        """Return every payload heard on the channel so far."""
        return list(self._heard)

    def on_start(self) -> None:
        self._maybe_transmit()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        if channel.is_success():
            self._heard.append(channel.payload)
        if self._contender is not None:
            transmitted = self._last_transmitted
            self._contender.observe(channel, transmitted)
        if self._expected is not None and len(self._heard) >= self._expected:
            self.halt(self._heard)
            return
        if self._contender is not None and self._contender.resolved and self._expected is None:
            self.halt(self._heard)
            return
        self._slot += 1
        self._maybe_transmit()

    _last_transmitted = False

    def _maybe_transmit(self) -> None:
        self._last_transmitted = False
        if self._contender is None or self._contender.resolved:
            return
        if self._contender.wants_to_transmit(self._slot):
            self.channel_write(self._contender.payload)
            self._last_transmitted = True
