"""Common machinery for channel conflict-resolution protocols.

The channel is the paper's Section 2 multiaccess medium: per slot, every
node may write, and all nodes observe the same three-valued feedback
(idle / success / collision).  The conflict-resolution protocols built on
it realise the root-scheduling stages of Sections 5 and 6.

A *contender* is a node that has something to broadcast (in the paper: a
fragment root holding a partial result).  A conflict-resolution protocol
schedules the contenders so that each one eventually gets a ``success`` slot.
The :class:`ChannelContender` interface captures one contender's local state
machine: each slot it decides whether to transmit, then observes the slot
outcome.  Crucially, the decision may depend only on information the model
makes public — the node's own identity/payload and the sequence of slot
outcomes so far — so that *every* node (contender or not) can follow the
protocol's progress by listening.

:func:`run_contention` drives a set of contenders against a
:class:`~repro.sim.channel.SlottedChannel` directly (no point-to-point
network involved), which is how the larger algorithms account for their
channel stage; :class:`ContenderProtocol` wraps a contender as a
:class:`~repro.sim.node.NodeProtocol` so the same state machines also run on
the full simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.protocols.collision.geometric import run_geometric_contention
from repro.sim.channel import SlottedChannel
from repro.sim.errors import AdversityAbort, ProtocolError
from repro.sim.events import ChannelEvent, Message, SlotState
from repro.sim.metrics import MetricsRecorder
from repro.sim.node import NodeContext, NodeProtocol

NodeId = Hashable


class ChannelContender:
    """One contender's state machine for a conflict-resolution protocol.

    Class attribute ``RESOLVES_ONLY_ON_SUCCESS`` declares when ``resolved``
    can flip: the base implementation (and both concrete protocols) resolve a
    contender only in a slot it transmitted in that came back *success*.  A
    subclass whose ``observe``/``resolved`` can report resolution after an
    idle or collision slot must set it to ``False`` so the scheduler rechecks
    the worklist after every slot instead of only after successes.

    Class attribute ``GEOMETRIC_CONTENTION`` opts a protocol into the
    geometric skip-ahead scheduler
    (:mod:`repro.protocols.collision.geometric`).  A subclass may set it to
    ``True`` only when its instances transmit independently per slot with a
    probability that (a) is shared by every contender with an equal
    :meth:`contention_signature` and (b) depends only on the publicly heard
    success count (:meth:`contention_rate`); it must then also implement
    :meth:`skip_ahead_rng` and :meth:`commit_skip_ahead`.  Deterministic
    protocols (e.g. Capetanakis tree splitting) keep the default ``False``
    and run slot by slot, which preserves their exact slot traces.
    """

    RESOLVES_ONLY_ON_SUCCESS = True
    GEOMETRIC_CONTENTION = False

    def __init__(self, identity: NodeId, payload: Any = None) -> None:
        self.identity = identity
        self.payload = payload
        self._succeeded_in_slot: Optional[int] = None

    # ------------------------------------------------------------------
    # protocol interface
    # ------------------------------------------------------------------
    def wants_to_transmit(self, slot: int) -> bool:
        """Return ``True`` when this contender transmits in the given slot."""
        raise NotImplementedError

    def observe(self, event: ChannelEvent, transmitted: bool) -> None:
        """Update local state after the slot resolves.

        Args:
            event: the (public) outcome of the slot.
            transmitted: whether *this* contender transmitted in the slot.
        """
        if transmitted and event.is_success():
            self._succeeded_in_slot = event.slot

    @property
    def resolved(self) -> bool:
        """Return ``True`` once this contender has had a successful slot."""
        return self._succeeded_in_slot is not None

    @property
    def success_slot(self) -> Optional[int]:
        """Return the slot in which this contender succeeded, if any."""
        return self._succeeded_in_slot

    # ------------------------------------------------------------------
    # geometric skip-ahead capability (see GEOMETRIC_CONTENTION above)
    # ------------------------------------------------------------------
    def contention_signature(self) -> object:
        """Return a value equal across contenders sharing one rate schedule.

        The skip-ahead scheduler only engages when every pending contender
        reports the same signature — a batch mixing, say, two different
        contender-count estimates is not a homogeneous Bernoulli field and
        falls back to the per-slot loop.
        """
        raise NotImplementedError

    def contention_rate(self, successes_seen: int) -> float:
        """Return the per-slot transmit probability after ``successes_seen``.

        Must be a pure function of the publicly heard success count so the
        scheduler can maintain it centrally instead of delivering every slot
        outcome to every contender.
        """
        raise NotImplementedError

    def contention_successes_seen(self) -> int:
        """Return how many successes this contender has already heard.

        The scheduler resumes its central success count from here, so a
        batch that already observed part of a schedule (e.g. survivors of a
        budget-failed run) keeps contending at the correct rate.
        """
        raise NotImplementedError

    def skip_ahead_rng(self) -> "random.Random":
        """Return the private random source driving this contender's draws."""
        raise NotImplementedError

    def commit_skip_ahead(self, slot: Optional[int], successes_seen: int) -> None:
        """Sync local state after a skip-ahead run touched this contender.

        Called with the winning ``slot`` when the contender is scheduled, or
        with ``slot=None`` when the run failed its budget while the contender
        was still pending.  ``successes_seen`` counts every success heard so
        far, including the contender's own.
        """
        if slot is not None:
            self._succeeded_in_slot = slot


@dataclass
class ScheduleOutcome:
    """Result of scheduling a set of contenders on the channel.

    Attributes:
        slots_used: total number of channel slots consumed.
        order: the contenders' identities in the order they succeeded.
        broadcasts: the payloads heard, in broadcast order.
        collisions: number of collision slots.
        idle: number of idle slots.
    """

    slots_used: int
    order: List[NodeId]
    broadcasts: List[Any]
    collisions: int
    idle: int


def run_contention(
    contenders: Sequence[ChannelContender],
    max_slots: int = 1_000_000,
    metrics: Optional[MetricsRecorder] = None,
    channel: Optional[SlottedChannel] = None,
    start_slot: int = 0,
    skip_ahead: bool = True,
) -> ScheduleOutcome:
    """Schedule ``contenders`` on a slotted channel until all are resolved.

    In the model every node hears every slot; the orchestration only delivers
    observations to the *unresolved* contenders, because a resolved contender
    never transmits again and its local state can no longer influence the
    schedule.  (Code that needs the full listening behaviour runs contenders
    on the simulator via :class:`ContenderProtocol` instead.)

    When every pending contender opts into ``GEOMETRIC_CONTENTION`` with a
    shared :meth:`~ChannelContender.contention_signature`, the schedule is
    sampled by the geometric skip-ahead scheduler
    (:func:`~repro.protocols.collision.geometric.run_geometric_contention`):
    identical outcome distribution, O(1) work per busy slot, idle runs
    skipped in one draw.  Pass ``skip_ahead=False`` to force the per-slot
    loop (the statistical-equivalence tests compare the two paths).

    A channel carrying a jamming adversity state forces the per-slot loop
    (the skip-ahead scheduler models a fault-free Bernoulli field, which
    jamming is not) and converts budget exhaustion into
    :class:`~repro.sim.errors.AdversityAbort` — under jamming, running out
    of slots is the adversary's doing, not a protocol bug.

    Raises:
        ProtocolError: if the contenders fail to resolve within ``max_slots``
            slots, which indicates a protocol bug or an unreachable schedule.
        AdversityAbort: if the budget is exhausted on a jammed channel.
    """
    channel = channel if channel is not None else SlottedChannel(metrics=metrics)
    adversity = channel.adversity
    if adversity is not None:
        skip_ahead = False
    order: List[NodeId] = []
    broadcasts: List[Any] = []
    collisions = 0
    idle = 0
    slot = start_slot
    used = 0
    # only unresolved contenders can transmit or act on what they hear, so
    # track them in a worklist instead of re-scanning the whole field every
    # slot
    # the worklist carries each contender with its two per-slot methods
    # pre-bound: both run once per contender per slot, where the attribute
    # lookups alone are measurable
    pending = [
        (contender, contender.wants_to_transmit, contender.observe)
        for contender in contenders
        if not contender.resolved
    ]
    if (
        skip_ahead
        and pending
        and all(type(entry[0]).GEOMETRIC_CONTENTION for entry in pending)
    ):
        # homogeneity covers the whole public schedule state: the shared
        # signature *and* an agreed count of successes already heard (a
        # partially-observed batch resumes at its current rate, not at zero)
        signatures = {
            (entry[0].contention_signature(), entry[0].contention_successes_seen())
            for entry in pending
        }
        if len(signatures) == 1:
            start_successes = pending[0][0].contention_successes_seen()
            return run_geometric_contention(
                pending,
                rate=pending[0][0].contention_rate(start_successes),
                channel=channel,
                metrics=metrics,
                max_slots=max_slots,
                start_slot=start_slot,
                start_successes=start_successes,
            )
    # when every contender resolves only in its own successful slot (the
    # declared default), the worklist can stay untouched after idle and
    # collision slots; and when none overrides `resolved`, the filter can
    # read the backing field instead of going through the property
    success_only = all(
        type(contender).RESOLVES_ONLY_ON_SUCCESS for contender, _, _ in pending
    )
    plain_resolved = all(
        type(contender).resolved is ChannelContender.resolved
        for contender, _, _ in pending
    )
    flags: List[bool] = []
    while pending:
        if used >= max_slots:
            if metrics is not None:
                metrics.record_round(used)
            if adversity is not None:
                raise AdversityAbort(used, len(pending))
            raise ProtocolError(
                f"contention did not resolve within {max_slots} slots"
            )
        writes: List[Tuple[NodeId, Any]] = []
        flags.clear()
        for contender, wants_to_transmit, _ in pending:
            transmitted = wants_to_transmit(slot)
            flags.append(transmitted)
            if transmitted:
                writes.append((contender.identity, contender.payload))
        event = channel.resolve_slot(slot, writes)
        public = event.public_view()
        state = event.state
        if state is SlotState.SUCCESS:
            order.append(event.writer)
            broadcasts.append(event.payload)
        elif state is SlotState.COLLISION:
            collisions += 1
        else:
            idle += 1
        # one fused pass: deliver the observation and, when this slot could
        # have resolved someone, rebuild the worklist in the same sweep
        # (`resolved` depends only on the contender's own state, so filtering
        # right after its observe() matches the old observe-then-filter)
        if success_only and state is not SlotState.SUCCESS:
            for entry, transmitted in zip(pending, flags):
                entry[2](public, transmitted)
        elif plain_resolved:
            next_pending = []
            for entry, transmitted in zip(pending, flags):
                entry[2](public, transmitted)
                if entry[0]._succeeded_in_slot is None:
                    next_pending.append(entry)
            pending = next_pending
        else:
            next_pending = []
            for entry, transmitted in zip(pending, flags):
                entry[2](public, transmitted)
                if not entry[0].resolved:
                    next_pending.append(entry)
            pending = next_pending
        slot += 1
        used += 1
    # rounds are recorded in one batch: every slot is one time unit, and no
    # caller reads the recorder mid-contention
    if metrics is not None:
        metrics.record_round(used)
    return ScheduleOutcome(
        slots_used=used,
        order=order,
        broadcasts=broadcasts,
        collisions=collisions,
        idle=idle,
    )


class ContenderProtocol(NodeProtocol):
    """Run a :class:`ChannelContender` as a node protocol on the simulator.

    Non-contending nodes simply listen and halt once they have heard the
    expected number of successful broadcasts (when that number is known) or
    once an externally supplied predicate fires.
    """

    def __init__(
        self,
        ctx: NodeContext,
        contender: Optional[ChannelContender],
        expected_successes: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self._contender = contender
        self._expected = expected_successes
        self._heard: List[Any] = []
        self._slot = 0

    @property
    def heard(self) -> List[Any]:
        """Return every payload heard on the channel so far."""
        return list(self._heard)

    def on_start(self) -> None:
        self._maybe_transmit()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        if channel.is_success():
            self._heard.append(channel.payload)
        if self._contender is not None:
            transmitted = self._last_transmitted
            self._contender.observe(channel, transmitted)
        if self._expected is not None and len(self._heard) >= self._expected:
            self.halt(self._heard)
            return
        if self._contender is not None and self._contender.resolved and self._expected is None:
            self.halt(self._heard)
            return
        self._slot += 1
        self._maybe_transmit()

    _last_transmitted = False

    def _maybe_transmit(self) -> None:
        self._last_transmitted = False
        if self._contender is None or self._contender.resolved:
            return
        if self._contender.wants_to_transmit(self._slot):
            self.channel_write(self._contender.payload)
            self._last_transmitted = True
