"""Greenberg–Ladner multiplicity estimation (1983) on a collision channel.

Section 7.4 of the paper uses this protocol to estimate the number of
processors ``n`` when it is not known in advance:

    "All the nodes start together rounds of coin tosses; at round ``i`` each
    coin has probability ``1/2^i`` for head.  A special busy tone is
    transmitted by all the nodes which flipped head.  The estimation
    terminates as soon as there is an idle slot.  When it terminates all
    nodes know ``k``, the number of rounds; ``2^k`` is then, with high
    probability, a good estimate (up to a multiplicative factor) for the
    number of processors."

The same primitive estimates the multiplicity of any set of contenders (e.g.
how many fragment roots exist), which the Las-Vegas variant of the randomized
partitioning algorithm relies on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.sim.channel import SlottedChannel
from repro.sim.events import ChannelEvent, Message
from repro.sim.flyweight import FlyweightEnvironment, FlyweightProtocol
from repro.sim.metrics import MetricsRecorder
from repro.sim.node import NodeContext, NodeProtocol

NodeId = Hashable


@dataclass
class MultiplicityEstimate:
    """Outcome of one Greenberg–Ladner estimation run.

    Attributes:
        rounds: the number of slots used (the first idle slot terminates the
            run and is included in the count).
        estimate: ``2^(rounds − 1)``, the estimate of the multiplicity; zero
            participants yield an estimate of 0 (the very first slot is idle).
    """

    rounds: int
    estimate: int


def estimate_multiplicity(
    num_participants: int,
    rng: Optional[random.Random] = None,
    metrics: Optional[MetricsRecorder] = None,
    max_rounds: int = 128,
) -> MultiplicityEstimate:
    """Run the estimation protocol over ``num_participants`` synchronized nodes.

    This is the channel-only core of the protocol (no point-to-point traffic),
    driven directly against a :class:`~repro.sim.channel.SlottedChannel`.

    Raises:
        ValueError: if ``num_participants`` is negative.
    """
    if num_participants < 0:
        raise ValueError("cannot estimate a negative multiplicity")
    rng = rng if rng is not None else random.Random()
    channel = SlottedChannel(metrics=metrics)
    still_flipping = num_participants
    for round_index in range(1, max_rounds + 1):
        probability = 1.0 / (2.0 ** round_index)
        writers = [
            (f"p{i}", "busy")
            for i in range(still_flipping)
            if rng.random() < probability
        ]
        event = channel.resolve_slot(round_index - 1, writers)
        if metrics is not None:
            metrics.record_round(1)
        if event.is_idle():
            return MultiplicityEstimate(
                rounds=round_index, estimate=2 ** (round_index - 1)
            )
    return MultiplicityEstimate(rounds=max_rounds, estimate=2 ** max_rounds)


def estimate_error_factor(true_value: int, estimate: int) -> float:
    """Return the multiplicative error ``max(est/true, true/est)`` of an estimate."""
    if true_value <= 0 or estimate <= 0:
        return math.inf
    return max(estimate / true_value, true_value / estimate)


class GreenbergLadnerEstimator(NodeProtocol):
    """Node-protocol form of the estimation, runnable on the full simulator.

    Every node participates; round ``i`` of the protocol occupies channel
    slot ``i − 1``.  When the first idle slot is observed every node halts
    with the common estimate ``2^(rounds − 1)`` as its result.
    """

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self._round = 1

    def _flip_and_maybe_write(self) -> None:
        probability = 1.0 / (2.0 ** self._round)
        if self.ctx.rng.random() < probability:
            self.channel_write("busy")

    def on_start(self) -> None:
        self._flip_and_maybe_write()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        if channel.is_idle() and channel.slot >= 0:
            self.halt(MultiplicityEstimate(rounds=self._round, estimate=2 ** (self._round - 1)))
            return
        self._round += 1
        self._flip_and_maybe_write()


class GreenbergLadnerFlyweight(FlyweightProtocol):
    """Flyweight twin of :class:`GreenbergLadnerEstimator` — columnar state.

    One shared instance holds every node's current round number in one
    integer column and materialises each node's private generator lazily
    from the environment's substream family, replacing n protocol objects,
    contexts and ``random.Random`` constructions with O(1) allocations.

    The protocol reacts to channel feedback every slot and never to
    point-to-point mail, so it keeps the default ``MESSAGE_DRIVEN = False``
    and the fault-free loop dispatches every active slot each round —
    exactly the classic full scan, with the per-node object tax removed.
    """

    def __init__(self, env: FlyweightEnvironment) -> None:
        """Allocate the per-slot round and generator columns."""
        super().__init__(env)
        num_slots = env.num_slots
        self._round: List[int] = [1] * num_slots
        self._rngs: List[Optional[random.Random]] = [None] * num_slots

    def _flip_and_maybe_write(self, slot: int) -> None:
        rng = self._rngs[slot]
        if rng is None:
            rng = self._rngs[slot] = self.env.streams.rng_for(self.env.nodes[slot])
        if rng.random() < 1.0 / (2.0 ** self._round[slot]):
            self.channel_write(self.env.nodes[slot], "busy")

    def on_start(self, slot: int) -> None:
        """Flip the round-1 coin for ``slot``."""
        self._flip_and_maybe_write(slot)

    def on_round(self, slot: int, inbox: List[Message], channel: ChannelEvent) -> None:
        """Halt on the first idle slot, otherwise advance and flip again."""
        if channel.is_idle() and channel.slot >= 0:
            rounds = self._round[slot]
            self.halt_slot(
                slot, MultiplicityEstimate(rounds=rounds, estimate=2 ** (rounds - 1))
            )
            return
        self._round[slot] += 1
        self._flip_and_maybe_write(slot)
