"""Capetanakis' deterministic tree conflict-resolution protocol (1979).

The protocol resolves a conflict among contenders with distinct identifiers
drawn from a known universe ``{0, …, 2^b − 1}`` by a depth-first traversal of
the binary trie of identifier prefixes.  A shared stack of identifier
intervals — reconstructible by every listener from the public slot outcomes —
starts with the whole universe.  In each slot the interval on top of the
stack is "enabled": every unresolved contender whose identifier lies in it
transmits.

* **collision** → the interval is split in half and both halves are pushed
  (left half processed first);
* **success** → that contender is scheduled, the interval is done;
* **idle** → the interval contains no contender, it is done.

For ``k`` contenders out of a universe of size ``2^b`` the traversal uses
O(k·b) = O(k log n) slots, which is exactly the bound the paper invokes when
it schedules the O(√n) fragment roots deterministically in O(√n log n) time
(Sections 5 and 6).

The implementation is a :class:`ChannelContender`, so both contenders and
passive listeners (who only need the shared stack) can follow the protocol;
the stack evolution depends only on the publicly observable slot states.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.protocols.collision.base import ChannelContender
from repro.sim.events import ChannelEvent

NodeId = Hashable


def universe_bits(universe_size: int) -> int:
    """Return the number of identifier bits needed for ``universe_size`` ids."""
    if universe_size < 1:
        raise ValueError("the identifier universe must be non-empty")
    return max(1, (universe_size - 1).bit_length())


class _SharedStack:
    """The interval stack every participant reconstructs from slot outcomes."""

    def __init__(self, universe_size: int) -> None:
        self.intervals: List[Tuple[int, int]] = [(0, universe_size)]

    def current(self) -> Optional[Tuple[int, int]]:
        return self.intervals[-1] if self.intervals else None

    def advance(self, event: ChannelEvent) -> None:
        if not self.intervals:
            return
        low, high = self.intervals.pop()
        if event.is_collision():
            mid = (low + high) // 2
            # push right half first so the left half is processed next
            if mid < high:
                self.intervals.append((mid, high))
            if low < mid:
                self.intervals.append((low, mid))
        # success and idle both retire the interval


class CapetanakisContender(ChannelContender):
    """One contender's view of the deterministic tree-splitting protocol.

    Args:
        identity: the contender's identifier; must be an integer in
            ``[0, universe_size)`` and distinct from every other contender's.
        universe_size: size of the identifier universe known to all nodes
            (the paper uses the O(log n)-bit processor identifiers, so the
            universe has polynomial size).
        payload: what to broadcast when scheduled.

    Raises:
        ValueError: if the identity lies outside the universe.
    """

    def __init__(self, identity: int, universe_size: int, payload=None) -> None:
        if not 0 <= identity < universe_size:
            raise ValueError(
                f"identity {identity} outside universe [0, {universe_size})"
            )
        super().__init__(identity, payload)
        self._stack = _SharedStack(universe_size)
        self._universe = universe_size

    def wants_to_transmit(self, slot: int) -> bool:
        interval = self._stack.current()
        if interval is None:
            return False
        low, high = interval
        return low <= self.identity < high

    def observe(self, event: ChannelEvent, transmitted: bool) -> None:
        super().observe(event, transmitted)
        self._stack.advance(event)

    @property
    def pending_intervals(self) -> int:
        """Return the number of identifier intervals still to be explored."""
        return len(self._stack.intervals)


class CapetanakisListener:
    """A passive participant that tracks the shared stack and heard payloads.

    Non-contending nodes use this to know when the resolution is over: the
    protocol terminates exactly when the shared stack empties.
    """

    def __init__(self, universe_size: int) -> None:
        self._stack = _SharedStack(universe_size)
        self.heard: List = []

    def observe(self, event: ChannelEvent) -> None:
        """Track one resolved slot."""
        if event.is_success():
            self.heard.append(event.payload)
        self._stack.advance(event)

    @property
    def finished(self) -> bool:
        """Return ``True`` once every identifier interval has been retired."""
        return not self._stack.intervals


def deterministic_schedule_bound(num_contenders: int, universe_size: int) -> int:
    """Return the worst-case slot bound O(k log N) for the tree protocol.

    Used by the experiments to compare measured slot counts against the bound
    the paper charges for root scheduling.
    """
    bits = universe_bits(universe_size)
    return max(1, 2 * num_contenders * (bits + 1))
