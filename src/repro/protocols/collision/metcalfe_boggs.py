"""Randomized channel access in the style of Metcalfe and Boggs (Ethernet, 1976).

The paper's randomized global-computation stage schedules the ≈√n fragment
roots on the channel using randomized access: because the algorithm has an
estimate ``k`` of the number of contenders, each unresolved contender simply
transmits in every slot with probability ``1/k̂`` where ``k̂`` is the current
estimate of the number of *remaining* contenders.  A slot is successful with
probability ``≈ 1/e``, so each contender is scheduled in O(1) expected slots
and all ``k`` contenders are scheduled in O(k) expected slots — the bound the
paper uses ("O(1) expected time per root", Section 5.1).

Every participant can maintain the same estimate because the number of
successes so far is public information (success slots are heard by all), so
the protocol needs no extra coordination.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from repro.protocols.collision.base import ChannelContender
from repro.sim.events import ChannelEvent, SlotState

NodeId = Hashable


class MetcalfeBoggsContender(ChannelContender):
    """Randomized p-persistent contender with a shared contender-count estimate.

    The per-slot transmit probability ``1/k̂`` is shared by every contender
    holding the same estimate and depends only on the publicly heard success
    count, so batches of these contenders qualify for the geometric
    skip-ahead scheduler (``GEOMETRIC_CONTENTION``; see
    :mod:`repro.protocols.collision.geometric`): idle runs are sampled in one
    inverse-transform draw instead of one coin flip per contender per slot.

    Args:
        identity: the contender's identifier (used only for bookkeeping).
        estimated_contenders: the publicly known estimate ``k`` of how many
            contenders there are.  The paper supplies this from the expected
            number of trees in the partition (≈√n).
        rng: private random source.
        payload: what to broadcast when scheduled.
        seed: alternative to ``rng`` — the private source is then built
            lazily from this seed on first draw.  Callers seeding whole
            batches (``seed=master.randrange(2**63)``) keep the exact master
            stream of the eager form while the geometric skip-ahead
            scheduler, which only ever draws from the batch's first
            contender, skips ``k − 1`` generator constructions.

    Raises:
        ValueError: if ``estimated_contenders`` is not positive, or both
            ``rng`` and ``seed`` are supplied.
    """

    GEOMETRIC_CONTENTION = True

    def __init__(
        self,
        identity: NodeId,
        estimated_contenders: int,
        rng: Optional[random.Random] = None,
        payload=None,
        seed: Optional[int] = None,
    ) -> None:
        if estimated_contenders < 1:
            raise ValueError("the contender estimate must be at least 1")
        if rng is not None and seed is not None:
            raise ValueError("supply either rng or seed, not both")
        super().__init__(identity, payload)
        self._initial_estimate = estimated_contenders
        self._successes_seen = 0
        self._seed = seed
        if seed is None:
            self._rng = rng if rng is not None else random.Random()
            # bound method cached once: wants_to_transmit runs once per
            # contender per slot, where the attribute chain is measurable
            self._draw = self._rng.random
        else:
            self._rng = None
            self._draw = None

    def _materialise_rng(self) -> random.Random:
        """Build the private generator from the stored seed on first use."""
        rng = random.Random(self._seed)
        self._rng = rng
        self._draw = rng.random
        return rng

    @property
    def rng(self) -> random.Random:
        """Return the private source, materialising a seed-deferred one."""
        return self._rng if self._rng is not None else self._materialise_rng()

    @property
    def remaining_estimate(self) -> int:
        """Return the current estimate of unresolved contenders (at least 1)."""
        return max(1, self._initial_estimate - self._successes_seen)

    def wants_to_transmit(self, slot: int) -> bool:
        draw = self._draw
        if draw is None:
            draw = self._materialise_rng().random
        remaining = self._initial_estimate - self._successes_seen
        if remaining > 1:
            return draw() < 1.0 / remaining
        # sole remaining contender: transmit, but still consume one draw so
        # the random stream is unchanged from the uniform-threshold form
        draw()
        return True

    def observe(self, event: ChannelEvent, transmitted: bool) -> None:
        # inlined base behaviour: this runs once per contender per slot
        if event.state is SlotState.SUCCESS:
            self._successes_seen += 1
            if transmitted:
                self._succeeded_in_slot = event.slot

    # ------------------------------------------------------------------
    # geometric skip-ahead capability
    # ------------------------------------------------------------------
    def contention_signature(self) -> object:
        """Contenders sharing one estimate share one probability schedule."""
        return self._initial_estimate

    def contention_rate(self, successes_seen: int) -> float:
        """Per-slot transmit probability after ``successes_seen`` successes."""
        return 1.0 / max(1, self._initial_estimate - successes_seen)

    def contention_successes_seen(self) -> int:
        """Successes already heard (the scheduler resumes counting here)."""
        return self._successes_seen

    def skip_ahead_rng(self):
        """The private source the skip-ahead scheduler draws from."""
        return self.rng

    def commit_skip_ahead(self, slot, successes_seen: int) -> None:
        """Adopt the publicly known state a per-slot run would have built."""
        self._successes_seen = successes_seen
        if slot is not None:
            self._succeeded_in_slot = slot


def expected_slots_per_success(estimate: int) -> float:
    """Return the expected number of slots per success for ``estimate`` contenders.

    With ``k`` contenders each transmitting with probability ``1/k`` the
    per-slot success probability is ``(1 − 1/k)^{k−1} ≥ 1/e``, so the expected
    number of slots until a success is at most ``e``.  Experiments compare the
    measured slot counts against ``e·k``.
    """
    if estimate < 1:
        raise ValueError("estimate must be at least 1")
    if estimate == 1:
        return 1.0
    p_success = (1.0 - 1.0 / estimate) ** (estimate - 1)
    return 1.0 / p_success
