"""Leader election over the multiaccess channel.

Section 2 of the paper observes that, given the classical conflict-resolution
techniques, "the election problem can be solved deterministically in O(log n)
time or in O(log log n) expected time without using the point-to-point
network.  Essentially, these techniques can be viewed as symmetry breaking
methods either by comparing the identifiers bit by bit deterministically or
by random coin flips."

Two protocols are provided:

* :class:`BitByBitLeaderElection` — the deterministic O(log n)-slot election:
  candidates reveal their identifiers from the most significant bit down;
  whenever some candidate with a 1-bit transmits (slot not idle), all
  candidates whose current bit is 0 withdraw.  The surviving candidate is the
  one with the maximum identifier.
* :class:`RandomizedLeaderElection` — repeated coin-flip thinning: in each
  slot every surviving candidate transmits with probability 1/2 of the
  current estimate of survivors; a success elects the transmitter.  With a
  constant number of candidates remaining the expected number of slots to a
  success is O(1); starting from ``n`` candidates the expectation is O(log n)
  without an estimate and O(log log n) with the Greenberg–Ladner estimate,
  matching the figures the paper quotes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.sim.channel import SlottedChannel
from repro.sim.events import ChannelEvent, Message
from repro.sim.flyweight import FlyweightEnvironment, FlyweightProtocol
from repro.sim.metrics import MetricsRecorder
from repro.sim.node import NodeContext, NodeProtocol

NodeId = Hashable


@dataclass
class ElectionOutcome:
    """Result of a channel leader election.

    Attributes:
        leader: the elected identifier.
        slots_used: number of channel slots consumed.
    """

    leader: NodeId
    slots_used: int


def elect_leader(
    identifiers: Sequence[int],
    id_bits: Optional[int] = None,
    metrics: Optional[MetricsRecorder] = None,
) -> ElectionOutcome:
    """Deterministic bit-by-bit election run directly against a channel.

    Args:
        identifiers: the distinct integer identifiers of the candidates.
        id_bits: number of identifier bits; defaults to the bit length of the
            largest identifier.
        metrics: optional complexity accountant (one round per slot charged).

    Returns:
        The maximum identifier, elected in exactly ``id_bits`` slots.

    Raises:
        ValueError: if there are no candidates or identifiers repeat.
    """
    if not identifiers:
        raise ValueError("cannot elect a leader among zero candidates")
    if len(set(identifiers)) != len(identifiers):
        raise ValueError("candidate identifiers must be distinct")
    if id_bits is None:
        id_bits = max(1, max(identifiers).bit_length())
    channel = SlottedChannel(metrics=metrics)
    alive = list(identifiers)
    slots = 0
    for bit in range(id_bits - 1, -1, -1):
        writers = [(ident, "bit") for ident in alive if (ident >> bit) & 1]
        event = channel.resolve_slot(slots, writers)
        if metrics is not None:
            metrics.record_round(1)
        slots += 1
        if not event.is_idle():
            alive = [ident for ident in alive if (ident >> bit) & 1]
    assert len(alive) == 1, "distinct identifiers guarantee a unique survivor"
    return ElectionOutcome(leader=alive[0], slots_used=slots)


class BitByBitLeaderElection(NodeProtocol):
    """Node-protocol form of the deterministic bit-by-bit election.

    Every node is a candidate; identifiers must be non-negative integers.
    All nodes learn the leader (the maximum identifier): candidates that
    withdraw keep reconstructing the leader's identifier from the public slot
    outcomes, because a non-idle slot at bit position ``b`` reveals that the
    leader's bit ``b`` is 1 and an idle slot that it is 0.
    """

    def __init__(self, ctx: NodeContext, id_bits: Optional[int] = None) -> None:
        super().__init__(ctx)
        if id_bits is None:
            n = ctx.n if ctx.n is not None else 2
            id_bits = max(1, (max(int(ctx.node_id), n)).bit_length())
        self._bits = id_bits
        self._bit = id_bits - 1
        self._candidate = True
        self._leader_prefix = 0

    def _transmit_if_set(self) -> None:
        if self._candidate and (int(self.node_id) >> self._bit) & 1:
            self.channel_write("bit")

    def on_start(self) -> None:
        self._transmit_if_set()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        my_bit = (int(self.node_id) >> self._bit) & 1
        if not channel.is_idle():
            self._leader_prefix = (self._leader_prefix << 1) | 1
            if self._candidate and my_bit == 0:
                self._candidate = False
        else:
            self._leader_prefix = self._leader_prefix << 1
        if self._bit == 0:
            self.halt(self._leader_prefix)
            return
        self._bit -= 1
        self._transmit_if_set()


class RandomizedLeaderElection(NodeProtocol):
    """Randomized thinning election; expected O(log n) slots from ``n`` candidates.

    Each surviving candidate transmits with probability ``1/2`` in every slot.
    On a success the transmitter is elected and every node halts with the
    winner's identifier.  On a collision, the candidates that transmitted
    survive and the rest withdraw (halving the field in expectation); on an
    idle slot nothing changes.  The protocol is a Las-Vegas election: it only
    ever terminates with a correct, unique leader.
    """

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self._candidate = True
        self._transmitted = False

    def _flip(self) -> None:
        self._transmitted = False
        if self._candidate and self.ctx.rng.random() < 0.5:
            self.channel_write(self.node_id)
            self._transmitted = True

    def on_start(self) -> None:
        self._flip()

    def on_round(self, inbox: List[Message], channel: ChannelEvent) -> None:
        if channel.is_success():
            self.halt(channel.payload)
            return
        if channel.is_collision() and self._candidate and not self._transmitted:
            self._candidate = False
        self._flip()


class RandomizedLeaderElectionFlyweight(FlyweightProtocol):
    """Flyweight twin of :class:`RandomizedLeaderElection` — columnar state.

    The per-node candidate and transmitted flags live in two ``bytearray``
    columns on one shared instance, and each slot's private generator is
    materialised lazily from the environment's substream family — no
    per-node protocol objects, contexts or ``random.Random`` constructions.

    Like the classic protocol it reacts to channel feedback every slot
    (never to point-to-point mail), so it keeps the default
    ``MESSAGE_DRIVEN = False`` full-scan dispatch.
    """

    def __init__(self, env: FlyweightEnvironment) -> None:
        """Allocate the candidate/transmitted flag and generator columns."""
        super().__init__(env)
        num_slots = env.num_slots
        self._candidate = bytearray(b"\x01") * num_slots
        self._transmitted = bytearray(num_slots)
        self._rngs: List[Optional[random.Random]] = [None] * num_slots

    def _flip(self, slot: int) -> None:
        self._transmitted[slot] = 0
        if not self._candidate[slot]:
            return
        rng = self._rngs[slot]
        if rng is None:
            rng = self._rngs[slot] = self.env.streams.rng_for(self.env.nodes[slot])
        if rng.random() < 0.5:
            node = self.env.nodes[slot]
            self.channel_write(node, node)
            self._transmitted[slot] = 1

    def on_start(self, slot: int) -> None:
        """Flip the first coin for ``slot``."""
        self._flip(slot)

    def on_round(self, slot: int, inbox: List[Message], channel: ChannelEvent) -> None:
        """Halt on a success; withdraw non-transmitters on a collision."""
        if channel.is_success():
            self.halt_slot(slot, channel.payload)
            return
        if channel.is_collision() and self._candidate[slot] and not self._transmitted[slot]:
            self._candidate[slot] = 0
        self._flip(slot)
