"""Multiaccess-channel conflict-resolution protocols.

All protocols here are *channel-only*: they never use the point-to-point
network.  They come in two forms:

* a **contender state machine** (:class:`~repro.protocols.collision.base.ChannelContender`)
  that larger algorithms embed to schedule a set of contenders (e.g. fragment
  roots) on the channel slot by slot, and
* a :class:`~repro.sim.node.NodeProtocol` wrapper so each protocol can also be
  run stand-alone on a :class:`~repro.sim.multimedia.MultimediaNetwork` for
  unit tests and the model-variation experiments.
"""

from repro.protocols.collision.base import (
    ChannelContender,
    ContenderProtocol,
    ScheduleOutcome,
    run_contention,
)
from repro.protocols.collision.geometric import (
    collision_multiplicity,
    geometric_idle_run,
    run_geometric_contention,
    success_given_busy,
)
from repro.protocols.collision.capetanakis import CapetanakisContender
from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender
from repro.protocols.collision.greenberg_ladner import (
    GreenbergLadnerEstimator,
    GreenbergLadnerFlyweight,
    estimate_multiplicity,
)
from repro.protocols.collision.leader_election import (
    BitByBitLeaderElection,
    RandomizedLeaderElection,
    RandomizedLeaderElectionFlyweight,
    elect_leader,
)

__all__ = [
    "ChannelContender",
    "ContenderProtocol",
    "ScheduleOutcome",
    "run_contention",
    "collision_multiplicity",
    "geometric_idle_run",
    "run_geometric_contention",
    "success_given_busy",
    "CapetanakisContender",
    "MetcalfeBoggsContender",
    "GreenbergLadnerEstimator",
    "GreenbergLadnerFlyweight",
    "estimate_multiplicity",
    "BitByBitLeaderElection",
    "RandomizedLeaderElection",
    "RandomizedLeaderElectionFlyweight",
    "elect_leader",
]
