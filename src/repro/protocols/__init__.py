"""Distributed protocol building blocks used by the paper's algorithms.

Three families:

* :mod:`repro.protocols.collision` — multiaccess-channel conflict-resolution
  protocols (Capetanakis deterministic tree splitting, Metcalfe–Boggs
  randomized access, Greenberg–Ladner multiplicity estimation, channel leader
  election).  The paper uses these to schedule the O(√n) fragment roots on
  the channel.
* :mod:`repro.protocols.symmetry` — deterministic symmetry breaking on rooted
  forests (Cole–Vishkin deterministic coin tossing, Goldberg–Plotkin–Shannon
  3-colouring, and the MIS recolouring of Steps 4–5 of the deterministic
  partitioning algorithm).
* :mod:`repro.protocols.spanning` — point-to-point tree primitives
  (distributed BFS, broadcast-and-respond / PIF, GHS-style fragment
  bookkeeping and the synchronous point-to-point-only MST baseline).
"""
