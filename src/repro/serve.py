"""``repro serve``: a read-side JSON API over the results corpus.

The ROADMAP's production story is *precompute on a farm, serve from a
cache*: the distributed executor (:mod:`repro.experiments.distributed`)
covers the precompute half, and this module is the serving half — a thin
stdlib HTTP service (no new dependencies) exposing the experiment
catalog, the run-directory checkpoints, and the ``BENCH_core.json``
performance trajectory as JSON:

===========================  =========================================
``GET /experiments``         the registered experiment catalog
``GET /runs``                run directories with completion status
``GET /runs/<name>``         one run's checkpoints merged into the
                             standard :class:`ExperimentResult` JSON
``GET /bench/trajectory``    the benchmark trajectory file, labels
                             ordered by sequence
``GET /bench/diff``          per-experiment speedups between two labels
                             (``?from=X&to=Y``; defaults to the last
                             two recorded labels)
===========================  =========================================

Every 200 reply carries a strong ``ETag`` (a hash of the exact body) and
honours ``If-None-Match`` with a 304, responses are memoised for a
configurable TTL so a hot endpoint costs one merge per window, and a
token-bucket rate limiter answers 429 when a client exceeds its budget.
The service is read-only by construction — it opens every file through
the same digest-validated readers the executors use, so a corrupt or
foreign checkpoint is simply absent from the served result, never an
error page.

``ServeApp.respond`` is a plain function from request to
``(status, headers, body)``; ``tests/test_serve.py`` drives it directly
(with fake clocks for the TTL and bucket) and over a real socket.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.experiments.executors import (
    MANIFEST_NAME,
    default_run_root,
    merge_checkpoints,
    shard_indices,
)
from repro.experiments.registry import all_experiments, get_experiment, load_all
from repro.experiments.runner import ExperimentResult
from repro.experiments.trajectory import default_output, label_order, pair_speedups

JSON_TYPE = "application/json; charset=utf-8"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``allow`` is thread-safe (the HTTP server is threaded) and the clock is
    injectable so the 429 path is testable without sleeping.  A
    non-positive ``rate`` disables limiting entirely.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Start full: the first ``burst`` requests always pass."""
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def allow(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means rate-limited."""
        if self.rate <= 0:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False


class TTLCache:
    """Response memoiser: body + ETag per key, expiring after ``ttl`` seconds.

    A non-positive ``ttl`` disables caching (every request recomputes).
    """

    def __init__(
        self, ttl: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        """An empty cache with injectable clock (for TTL-expiry tests)."""
        self.ttl = float(ttl)
        self._clock = clock
        self._entries: Dict[str, Tuple[float, bytes, str]] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Tuple[bytes, str]]:
        """Return the fresh ``(body, etag)`` for ``key``, or ``None``."""
        if self.ttl <= 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            expires, body, etag = entry
            if expires <= self._clock():
                del self._entries[key]
                return None
            return body, etag

    def put(self, key: str, body: bytes, etag: str) -> None:
        """Store ``(body, etag)`` under ``key`` for the next TTL window."""
        if self.ttl <= 0:
            return
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl, body, etag)


def _etag(body: bytes) -> str:
    """A strong ETag for an exact body (quoted, per RFC 9110)."""
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


class ServeApp:
    """The routing core of ``repro serve``, independent of any socket.

    Attributes:
        run_root: directory whose children are sharded/distributed run
            directories (default: the executors' ``.repro_runs/``).
        bench_path: the benchmark trajectory file (default:
            ``BENCH_core.json`` at the repo root).
    """

    def __init__(
        self,
        run_root: Optional[Path] = None,
        bench_path: Optional[Path] = None,
        ttl: float = 5.0,
        rate: float = 20.0,
        burst: float = 40.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Configure paths, cache TTL and rate limits; loads the registry."""
        load_all()
        self.run_root = Path(run_root) if run_root is not None else default_run_root()
        self.bench_path = (
            Path(bench_path) if bench_path is not None else default_output()
        )
        self.cache = TTLCache(ttl, clock)
        self.limiter = TokenBucket(rate, burst, clock)

    # -- the request entry point ---------------------------------------
    def respond(
        self,
        path: str,
        query: str = "",
        if_none_match: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Answer one GET: returns ``(status, headers, body)``.

        Rate limiting happens before the cache (a cached body still costs a
        token — the limiter protects the socket, not just the disk), then
        fresh cached bodies short-circuit recomputation, and a matching
        ``If-None-Match`` turns either outcome into an empty 304.
        """
        if not self.limiter.allow():
            return self._reply(
                429,
                {"error": "rate limited", "path": path},
                extra={"Retry-After": "1"},
            )
        key = f"{path}?{query}"
        cached = self.cache.get(key)
        if cached is not None:
            body, etag = cached
        else:
            status, payload = self._route(path, parse_qs(query))
            if status != 200:
                return self._reply(status, payload)
            body = _body_bytes(payload)
            etag = _etag(body)
            self.cache.put(key, body, etag)
        headers = {
            "Content-Type": JSON_TYPE,
            "ETag": etag,
            "Cache-Control": f"max-age={max(int(self.cache.ttl), 0)}",
        }
        if if_none_match is not None and etag in (
            tag.strip() for tag in if_none_match.split(",")
        ):
            return 304, headers, b""
        return 200, headers, body

    def _reply(
        self,
        status: int,
        payload: Mapping[str, Any],
        extra: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """An uncached (error) reply."""
        headers = {"Content-Type": JSON_TYPE}
        if extra:
            headers.update(extra)
        return status, headers, _body_bytes(payload)

    # -- routing --------------------------------------------------------
    def _route(
        self, path: str, params: Mapping[str, List[str]]
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch a path to its payload builder."""
        path = path.rstrip("/") or "/"
        if path == "/":
            return 200, {
                "service": "repro serve",
                "endpoints": [
                    "/experiments",
                    "/runs",
                    "/runs/<name>",
                    "/bench/trajectory",
                    "/bench/diff?from=<label>&to=<label>",
                ],
            }
        if path == "/experiments":
            return self._experiments()
        if path == "/runs":
            return self._runs()
        if path.startswith("/runs/"):
            return self._run(path[len("/runs/"):])
        if path == "/bench/trajectory":
            return self._trajectory()
        if path == "/bench/diff":
            return self._diff(params)
        return 404, {"error": "unknown endpoint", "path": path}

    def _experiments(self) -> Tuple[int, Dict[str, Any]]:
        """The registered experiment catalog."""
        return 200, {
            "experiments": [
                {
                    "id": spec.id,
                    "description": spec.description,
                    "presets": sorted(spec.presets),
                    "columns": list(spec.columns),
                    "topologies": list(spec.topologies),
                    "adversities": list(spec.adversities),
                }
                for spec in all_experiments()
            ]
        }

    def _run_summaries(self) -> List[Dict[str, Any]]:
        """One summary per readable run directory under ``run_root``."""
        summaries = []
        if not self.run_root.is_dir():
            return summaries
        for run_dir in sorted(self.run_root.iterdir()):
            manifest = _read_manifest(run_dir)
            if manifest is None:
                continue
            merged = self._merge(manifest, run_dir)
            summary = {
                "name": run_dir.name,
                "experiment": manifest.get("experiment"),
                "preset": manifest.get("preset"),
                "num_points": manifest.get("num_points"),
                "shard_count": manifest.get("shard_count"),
                "digest": manifest.get("digest"),
            }
            if merged is not None:
                rows_by_index, _ = merged
                summary["completed_points"] = len(rows_by_index)
                summary["pending_points"] = (
                    int(manifest["num_points"]) - len(rows_by_index)
                )
            summaries.append(summary)
        return summaries

    def _runs(self) -> Tuple[int, Dict[str, Any]]:
        """The run-directory index."""
        return 200, {
            "run_root": str(self.run_root),
            "runs": self._run_summaries(),
        }

    def _run(self, name: str) -> Tuple[int, Dict[str, Any]]:
        """One run's checkpoints merged into ``ExperimentResult`` JSON."""
        if not name or "/" in name or name in (".", ".."):
            return 404, {"error": "unknown run", "run": name}
        run_dir = self.run_root / name
        manifest = _read_manifest(run_dir)
        if manifest is None:
            return 404, {"error": "unknown run", "run": name}
        merged = self._merge(manifest, run_dir)
        if merged is None:
            return 404, {
                "error": "run references an unknown experiment",
                "run": name,
                "experiment": manifest.get("experiment"),
            }
        rows_by_index, compute_seconds = merged
        spec = get_experiment(manifest["experiment"])
        params = dict(manifest.get("params", {}))
        result = ExperimentResult(
            experiment_id=spec.id,
            title=spec.render_title(params),
            columns=spec.columns,
            rows=[rows_by_index[i] for i in sorted(rows_by_index)],
            params=params,
            preset=manifest.get("preset", "default"),
            wall_seconds=compute_seconds,
            invocation_seconds=0.0,
            pending_points=int(manifest["num_points"]) - len(rows_by_index),
            executor="serve-merge",
        )
        return 200, result.to_json_dict()

    def _merge(
        self, manifest: Mapping[str, Any], run_dir: Path
    ) -> Optional[Tuple[Dict[int, Dict[str, Any]], float]]:
        """Digest-validated checkpoint merge; ``None`` on an unknown spec."""
        try:
            spec = get_experiment(manifest["experiment"])
            plan = shard_indices(
                int(manifest["num_points"]), int(manifest["shard_count"])
            )
        except (KeyError, TypeError, ValueError):
            return None
        return merge_checkpoints(
            run_dir, plan, spec.columns, manifest["digest"]
        )

    def _trajectory(self) -> Tuple[int, Dict[str, Any]]:
        """The benchmark trajectory, labels ordered by sequence."""
        data = _read_json(self.bench_path)
        if data is None:
            return 404, {
                "error": "no trajectory file",
                "path": str(self.bench_path),
            }
        payload = dict(data)
        payload["labels"] = label_order(data.get("runs", {}))
        return 200, payload

    def _diff(
        self, params: Mapping[str, List[str]]
    ) -> Tuple[int, Dict[str, Any]]:
        """Per-experiment speedups between two trajectory labels."""
        data = _read_json(self.bench_path)
        if data is None:
            return 404, {
                "error": "no trajectory file",
                "path": str(self.bench_path),
            }
        runs = data.get("runs", {})
        ordered = label_order(runs)
        before = params.get("from", ordered[-2:-1] or [None])[0]
        after = params.get("to", ordered[-1:] or [None])[0]
        if before is None or after is None:
            return 400, {
                "error": "need ?from=<label>&to=<label> "
                "(fewer than two labels recorded)",
                "labels": ordered,
            }
        missing = [label for label in (before, after) if label not in runs]
        if missing:
            return 404, {"error": "unknown label(s)", "labels": missing}
        return 200, {
            "from": before,
            "to": after,
            "speedups": pair_speedups(
                runs[before].get("experiments", {}),
                runs[after].get("experiments", {}),
            ),
        }


def _body_bytes(payload: Mapping[str, Any]) -> bytes:
    """Serialize a payload deterministically (stable bodies → stable ETags)."""
    return json.dumps(payload, indent=2, sort_keys=True).encode("utf-8") + b"\n"


def _read_manifest(run_dir: Path) -> Optional[Dict[str, Any]]:
    """Read a run directory's manifest; ``None`` when absent/unreadable."""
    if not run_dir.is_dir():
        return None
    data = _read_json(run_dir / MANIFEST_NAME)
    if not isinstance(data, dict) or "digest" not in data:
        return None
    return data


def _read_json(path: Path) -> Optional[Any]:
    """Read a JSON file; ``None`` when absent or unparseable."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# the HTTP shell
# ----------------------------------------------------------------------
class ServeServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the :class:`ServeApp` for its handlers."""

    daemon_threads = True
    allow_reuse_address = True
    app: ServeApp


class _ServeHandler(BaseHTTPRequestHandler):
    """GET-only handler delegating to :meth:`ServeApp.respond`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server naming contract)
        """Answer one GET request."""
        split = urlsplit(self.path)
        status, headers, body = self.server.app.respond(
            split.path, split.query, self.headers.get("If-None-Match")
        )
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (the service is a library too)."""


def create_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> ServeServer:
    """Bind a :class:`ServeServer` for ``app`` (port 0 picks an ephemeral one)."""
    server = ServeServer((host, port), _ServeHandler)
    server.app = app
    return server


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro serve``)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the experiment/run/benchmark corpus as a JSON API.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=8035,
                        help="bind port (0 picks an ephemeral one)")
    parser.add_argument("--run-root", type=Path, default=None,
                        help="run-directory root (default: .repro_runs/)")
    parser.add_argument("--bench", type=Path, default=None,
                        help="trajectory file (default: BENCH_core.json)")
    parser.add_argument("--ttl", type=float, default=5.0,
                        help="response cache TTL in seconds (0 disables)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="sustained requests/second budget (0 disables)")
    parser.add_argument("--burst", type=float, default=40.0,
                        help="rate-limiter burst capacity")
    args = parser.parse_args(argv)

    app = ServeApp(
        run_root=args.run_root,
        bench_path=args.bench,
        ttl=args.ttl,
        rate=args.rate,
        burst=args.burst,
    )
    server = create_server(app, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}  (run_root={app.run_root}, "
          f"bench={app.bench_path}) — Ctrl-C stops")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
