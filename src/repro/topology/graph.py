"""Undirected weighted graph used as the point-to-point topology.

The graph is deliberately small and explicit: node identifiers are arbitrary
hashable values (the simulator uses integers), edges are undirected and carry
a weight, and adjacency is kept as an ordered mapping so that iteration order
is deterministic.  Determinism matters because the paper's algorithms break
ties by node identifier and because every experiment must be reproducible
from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

NodeId = Hashable


def edge_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Return the canonical (sorted) key for the undirected edge ``{u, v}``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge.

    Attributes:
        u: one endpoint.
        v: the other endpoint.
        weight: the link weight.  The paper assumes distinct weights for the
            MST-related algorithms; :mod:`repro.topology.weights` provides
            helpers to enforce that.
    """

    u: NodeId
    v: NodeId
    weight: float = 1.0

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """Return both endpoints as a tuple."""
        return (self.u, self.v)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint different from ``node``.

        Raises:
            ValueError: if ``node`` is not an endpoint of this edge.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def key(self) -> Tuple[NodeId, NodeId]:
        """Return the canonical undirected key of this edge."""
        return edge_key(self.u, self.v)


class WeightedGraph:
    """An undirected weighted graph with deterministic iteration order.

    The class intentionally exposes only the operations the distributed
    algorithms and the simulator need: adding nodes and edges, neighbour
    queries, weight lookups, and a handful of whole-graph accessors.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[NodeId, Dict[NodeId, float]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` to the graph (no-op if already present)."""
        if node not in self._adjacency:
            self._adjacency[node] = {}

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with ``weight``.

        Adding an edge that already exists overwrites its weight.  Self loops
        are rejected because the network model has no use for them.

        Raises:
            ValueError: if ``u == v``.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adjacency[u]:
            self._edge_count += 1
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1

    def set_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Set the weight of an existing edge.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` when ``node`` is in the graph."""
        return node in self._adjacency

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Return the weight of the edge ``{u, v}``.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        return self._adjacency[u][v]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the neighbours of ``node`` in insertion order."""
        return list(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        return len(self._adjacency[node])

    def incident_edges(self, node: NodeId) -> List[Edge]:
        """Return the edges incident to ``node``."""
        return [Edge(node, v, w) for v, w in self._adjacency[node].items()]

    def nodes(self) -> List[NodeId]:
        """Return all nodes in insertion order."""
        return list(self._adjacency)

    def edges(self) -> List[Edge]:
        """Return every undirected edge exactly once."""
        seen = set()
        result: List[Edge] = []
        for u, nbrs in self._adjacency.items():
            for v, w in nbrs.items():
                key = edge_key(u, v)
                if key in seen:
                    continue
                seen.add(key)
                result.append(Edge(u, v, w))
        return result

    def num_nodes(self) -> int:
        """Return ``n``, the number of nodes."""
        return len(self._adjacency)

    def num_edges(self) -> int:
        """Return ``m``, the number of undirected edges."""
        return self._edge_count

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return sum(edge.weight for edge in self.edges())

    def __contains__(self, node: NodeId) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.num_nodes()

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __repr__(self) -> str:
        return (
            f"WeightedGraph(n={self.num_nodes()}, m={self.num_edges()})"
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        """Return a deep copy of this graph."""
        clone = WeightedGraph()
        clone.add_nodes(self.nodes())
        for edge in self.edges():
            clone.add_edge(edge.u, edge.v, edge.weight)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "WeightedGraph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        sub = WeightedGraph()
        for node in self.nodes():
            if node in keep:
                sub.add_node(node)
        for edge in self.edges():
            if edge.u in keep and edge.v in keep:
                sub.add_edge(edge.u, edge.v, edge.weight)
        return sub

    def relabeled(self, mapping: Optional[Dict[NodeId, NodeId]] = None) -> "WeightedGraph":
        """Return a copy with node identifiers replaced via ``mapping``.

        When ``mapping`` is ``None`` the nodes are renamed ``0..n-1`` in
        insertion order, which is what the simulator expects.
        """
        if mapping is None:
            mapping = {node: index for index, node in enumerate(self.nodes())}
        renamed = WeightedGraph()
        for node in self.nodes():
            renamed.add_node(mapping[node])
        for edge in self.edges():
            renamed.add_edge(mapping[edge.u], mapping[edge.v], edge.weight)
        return renamed
