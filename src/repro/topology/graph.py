"""Undirected weighted graph used as the point-to-point topology.

The graph is deliberately small and explicit: node identifiers are arbitrary
hashable values (the simulator uses integers), edges are undirected and carry
a weight, and adjacency is kept as an ordered mapping so that iteration order
is deterministic.  Determinism matters because the paper's algorithms break
ties by node identifier and because every experiment must be reproducible
from a seed.

The class sits under every hot loop of the partition/MST algorithms, so the
whole-graph accessors are cached: a mutation counter (``_version``) is bumped
by every mutation (edge changes and node insertions alike), the canonical
edge list is rebuilt at most once per
mutation generation, and the total weight is maintained incrementally.  The
``iter_neighbors``/``neighbor_items`` views expose the adjacency dict without
the per-call list allocation of :meth:`neighbors`.

On top of the dict API sits the columnar core (:class:`CSRView`,
:meth:`WeightedGraph.csr`): an immutable compressed-sparse-row snapshot —
stdlib ``array('q')`` offsets/targets plus a parallel weight column — built
at most once per mutation generation under the same version-counter
invalidation.  The generators construct graphs directly in CSR form
(:meth:`WeightedGraph._from_csr_edges`) and the nested dicts materialise
lazily only when something actually asks for them, so the partition-bound
sweeps never pay for per-edge dict insertion at all.
"""

from __future__ import annotations

import numbers
from array import array
from typing import (
    Dict,
    Hashable,
    ItemsView,
    Iterable,
    Iterator,
    KeysView,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

NodeId = Hashable


def edge_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Return the canonical (sorted) key for the undirected edge ``{u, v}``.

    Endpoints are ordered by direct comparison when the values are mutually
    comparable (the common case: integer node identifiers), which is both
    fast and correct for distinct values.  Incomparable endpoints (mixed
    types) fall back to ordering by ``(type name, repr)``.  The old
    repr-only ordering was a hot spot *and* wrong for distinct nodes whose
    reprs collide: ``edge_key(u, v)`` and ``edge_key(v, u)`` disagreed, so
    the same physical link could appear under two keys.
    """
    try:
        if u < v:  # type: ignore[operator]
            return (u, v)
        if v < u:  # type: ignore[operator]
            return (v, u)
    except TypeError:
        pass
    if u == v:
        return (u, v)
    # incomparable types, or a partial order where neither side is smaller
    # (e.g. disjoint frozensets): order by (type name, repr) instead
    if (type(u).__name__, repr(u)) <= (type(v).__name__, repr(v)):
        return (u, v)
    return (v, u)


def is_identity_enumeration(nodes: Sequence[NodeId]) -> bool:
    """True when ``nodes`` is exactly the int sequence ``0, 1, …, n-1``.

    Every standard generator numbers its nodes this way, which lets
    array-indexed hot loops (the partitioners) skip the node→index
    translation outright.  The type check matters: ``2.0 == 2`` compares
    equal to its position yet is no use as a list index.
    """
    return all(type(node) is int and node == i for i, node in enumerate(nodes))


def sorted_incident_links(
    graph: "WeightedGraph",
) -> Dict[NodeId, List[Tuple[float, NodeId, Tuple[NodeId, NodeId]]]]:
    """Return every node's incident links as ``(weight, neighbour, edge key)``
    triples in increasing ``(weight, repr(neighbour))`` order — the GHS scan
    order, with the canonical key precomputed once per physical link.

    With globally distinct weights (the standard assumption of the MST
    algorithms) a single global edge sort populates every node's list, which
    is substantially cheaper than one sort per node; graphs with repeated
    weights fall back to per-node sorts with the repr tie-break.
    """
    links: Dict[NodeId, List[Tuple[float, NodeId, Tuple[NodeId, NodeId]]]] = {
        node: [] for node in graph.nodes()
    }
    csr = graph.csr()
    edge_u, edge_v, edge_w = csr.canonical_edges()
    if len(set(edge_w)) == len(edge_w):
        nodes = csr.nodes
        for j in sorted(range(len(edge_w)), key=edge_w.__getitem__):
            u, v, w = nodes[edge_u[j]], nodes[edge_v[j]], edge_w[j]
            key = edge_key(u, v)
            links[u].append((w, v, key))
            links[v].append((w, u, key))
    else:
        for node in links:
            links[node] = sorted(
                (
                    (w, v, edge_key(node, v))
                    for v, w in graph.neighbor_items(node)
                ),
                key=lambda item: (item[0], repr(item[1])),
            )
    return links


class Edge(NamedTuple):
    """An undirected weighted edge.

    A named tuple rather than a (frozen) dataclass: edge lists are rebuilt
    wholesale by the graph accessors, and tuple construction is several
    times cheaper than frozen-dataclass construction.

    Attributes:
        u: one endpoint.
        v: the other endpoint.
        weight: the link weight.  The paper assumes distinct weights for the
            MST-related algorithms; :mod:`repro.topology.weights` provides
            helpers to enforce that.
    """

    u: NodeId
    v: NodeId
    weight: float = 1.0

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """Return both endpoints as a tuple."""
        return (self.u, self.v)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint different from ``node``.

        Raises:
            ValueError: if ``node`` is not an endpoint of this edge.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def key(self) -> Tuple[NodeId, NodeId]:
        """Return the canonical undirected key of this edge."""
        return edge_key(self.u, self.v)


class CSRView:
    """An immutable compressed-sparse-row snapshot of a :class:`WeightedGraph`.

    The columnar layout the hot loops walk instead of the nested adjacency
    dicts: ``offsets`` is an ``array('q')`` of length ``n + 1``, ``targets``
    holds the ``2m`` neighbour *slot indices* row by row, and ``weights`` is
    the parallel ``array('d')`` weight column.  Slot ``i`` is node
    ``nodes[i]`` — the graph's insertion-order enumeration, so slot space is
    exactly the index space the partitioners already use.  On
    identity-labelled graphs (:func:`is_identity_enumeration`) ``nodes`` is a
    ``range`` and ``index_of`` is ``None``: labels *are* slots and no
    translation dict is ever built; arbitrary hashable labels get a ``tuple``
    plus a label→slot dict.

    Row order within a node equals the adjacency dict's insertion order, so a
    consumer that walks ``targets[offsets[i]:offsets[i + 1]]`` visits
    neighbours in exactly the order ``iter_neighbors`` would yield them —
    that row-order contract is what keeps CSR-walking consumers bit-identical
    to their dict-walking predecessors.

    Views are snapshots: :meth:`WeightedGraph.csr` hands out one view per
    mutation generation and a mutation makes the next call rebuild.  A stale
    view stays internally consistent (nothing is mutated in place) but no
    longer describes the graph.
    """

    __slots__ = (
        "n",
        "offsets",
        "targets",
        "weights",
        "nodes",
        "index_of",
        "identity",
        "_canonical",
    )

    def __init__(
        self,
        n: int,
        offsets: array,
        targets: array,
        weights: array,
        nodes: Sequence[NodeId],
        index_of: Optional[Dict[NodeId, int]],
        identity: bool,
    ) -> None:
        """Bind the column arrays; built by the graph, not by callers."""
        self.n = n
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.nodes = nodes
        self.index_of = index_of
        self.identity = identity
        self._canonical: Optional[Tuple[array, array, array]] = None

    @property
    def num_edges(self) -> int:
        """Return ``m``, the number of undirected edges in the snapshot."""
        return len(self.targets) // 2

    def canonical_edges(self) -> Tuple[array, array, array]:
        """Return ``(edge_u, edge_v, edge_w)`` columns in canonical edge order.

        One entry per undirected edge, endpoints as slot indices with
        ``edge_u[j] < edge_v[j]``, in exactly the order
        :meth:`WeightedGraph.edges` enumerates (first-endpoint insertion
        order).  Computed once per view and cached, so repeated consumers
        (weight assignment, the partition scan builders) share the arrays.
        """
        if self._canonical is None:
            offsets = self.offsets
            targets = self.targets
            weights = self.weights
            edge_u = array("q")
            edge_v = array("q")
            edge_w = array("d")
            start = 0
            for u in range(self.n):
                end = offsets[u + 1]
                for k in range(start, end):
                    t = targets[k]
                    if t > u:
                        edge_u.append(u)
                        edge_v.append(t)
                        edge_w.append(weights[k])
                start = end
            self._canonical = (edge_u, edge_v, edge_w)
        return self._canonical


def _csr_from_adjacency(adjacency: Dict[NodeId, Dict[NodeId, float]]) -> CSRView:
    """Build a :class:`CSRView` mirroring ``adjacency`` rows exactly."""
    nodes_list = list(adjacency)
    n = len(nodes_list)
    identity = is_identity_enumeration(nodes_list)
    offsets = array("q", bytes(8 * (n + 1)))
    targets = array("q")
    weights = array("d")
    if identity:
        nodes: Sequence[NodeId] = range(n)
        index_of = None
        try:
            for i, row in enumerate(adjacency.values()):
                targets.extend(row.keys())
                weights.extend(row.values())
                offsets[i + 1] = len(targets)
        except TypeError:
            # a numeric alias of an integer label (add_edge(1, 2.0)) snuck
            # into a row: redo slot by slot with explicit conversion
            del targets[:]
            del weights[:]
            for i, row in enumerate(adjacency.values()):
                for v, w in row.items():
                    targets.append(int(v))
                    weights.append(w)
                offsets[i + 1] = len(targets)
    else:
        nodes = tuple(nodes_list)
        index_of = {node: i for i, node in enumerate(nodes_list)}
        for i, row in enumerate(adjacency.values()):
            for v, w in row.items():
                targets.append(index_of[v])
                weights.append(w)
            offsets[i + 1] = len(targets)
    return CSRView(n, offsets, targets, weights, nodes, index_of, identity)


class WeightedGraph:
    """An undirected weighted graph with deterministic iteration order.

    The class intentionally exposes only the operations the distributed
    algorithms and the simulator need: adding nodes and edges, neighbour
    queries, weight lookups, and a handful of whole-graph accessors.
    """

    def __init__(self) -> None:
        """Create an empty graph."""
        # nested adjacency dicts, or None while a CSR-built graph has not
        # needed them yet (see _materialize_adjacency)
        self._adj: Optional[Dict[NodeId, Dict[NodeId, float]]] = {}
        self._edge_count = 0
        self._total_weight = 0.0
        # cache generation: bumped by every mutation (edges and node
        # insertions — the CSR snapshot encodes the node set); whole-graph
        # views derived from the adjacency are rebuilt lazily when stale
        self._version = 0
        self._edges_cache: List[Edge] = []
        self._edges_cache_version = -1
        self._csr_cache: Optional[CSRView] = None
        self._csr_cache_version = -1

    @property
    def _adjacency(self) -> Dict[NodeId, Dict[NodeId, float]]:
        """The nested adjacency dicts, materialised from CSR on first use."""
        adj = self._adj
        if adj is None:
            adj = self._materialize_adjacency()
        return adj

    @_adjacency.setter
    def _adjacency(self, value: Dict[NodeId, Dict[NodeId, float]]) -> None:
        self._adj = value

    def _materialize_adjacency(self) -> Dict[NodeId, Dict[NodeId, float]]:
        """Build the nested dicts from the pending CSR snapshot.

        Only reachable on a graph constructed in CSR form (``_adj is None``),
        whose snapshot is by construction current.  Row insertion order is
        the CSR row order, i.e. exactly what the equivalent ``add_edge``
        sequence would have produced; materialising is therefore invisible
        (no version bump).
        """
        csr = self._csr_cache
        offsets = csr.offsets
        targets = csr.targets
        weights = csr.weights
        adj: Dict[NodeId, Dict[NodeId, float]] = {}
        start = 0
        if csr.identity:
            for i in range(csr.n):
                end = offsets[i + 1]
                adj[i] = {
                    targets[k]: weights[k] for k in range(start, end)
                }
                start = end
        else:
            nodes = csr.nodes
            for i in range(csr.n):
                end = offsets[i + 1]
                adj[nodes[i]] = {
                    nodes[targets[k]]: weights[k] for k in range(start, end)
                }
                start = end
        self._adj = adj
        return adj

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_csr_edges(
        cls,
        n: int,
        edge_u: Sequence[int],
        edge_v: Sequence[int],
        edge_weights: Optional[Sequence[float]] = None,
        nodes: Optional[Sequence[NodeId]] = None,
        index_of: Optional[Dict[NodeId, int]] = None,
    ) -> "WeightedGraph":
        """Build a graph directly in CSR form from an edge stream.

        ``edge_u``/``edge_v`` give one entry per undirected edge as slot
        indices; ``edge_weights`` is the parallel weight column (``None`` ⇒
        unit weights).  ``nodes`` maps slots to labels (``None`` ⇒ the
        identity enumeration ``0..n-1``).  The stream must not repeat an
        edge.

        The counting-sort fill places each edge at its endpoints' cursors in
        stream order, so row order — and hence every downstream iteration
        order — is exactly what per-edge :meth:`add_edge` calls in the same
        order would have produced.  The nested adjacency dicts are *not*
        built here; they materialise lazily on first dict-shaped access,
        which the partition-only workloads never perform.
        """
        m = len(edge_u)
        degree = array("q", bytes(8 * n)) if n else array("q")
        for u in edge_u:
            degree[u] += 1
        for v in edge_v:
            degree[v] += 1
        offsets = array("q", bytes(8 * (n + 1)))
        run = 0
        for i in range(n):
            run += degree[i]
            offsets[i + 1] = run
        cursor = offsets[:n]
        targets = array("q", bytes(16 * m))
        total = 0.0
        if edge_weights is None:
            weights = array("d", [1.0]) * (2 * m)
            for j in range(m):
                u = edge_u[j]
                v = edge_v[j]
                cu = cursor[u]
                targets[cu] = v
                cursor[u] = cu + 1
                cv = cursor[v]
                targets[cv] = u
                cursor[v] = cv + 1
            total = float(m)
        else:
            weights = array("d", bytes(16 * m))
            for j in range(m):
                u = edge_u[j]
                v = edge_v[j]
                w = edge_weights[j]
                cu = cursor[u]
                targets[cu] = v
                weights[cu] = w
                cursor[u] = cu + 1
                cv = cursor[v]
                targets[cv] = u
                weights[cv] = w
                cursor[v] = cv + 1
                # accumulate in stream order: bit-identical to the same
                # sequence of add_edge calls
                total += w
        if nodes is None:
            view = CSRView(n, offsets, targets, weights, range(n), None, True)
        else:
            if index_of is None:
                index_of = {node: i for i, node in enumerate(nodes)}
            view = CSRView(n, offsets, targets, weights, nodes, index_of, False)
        graph = cls()
        graph._adj = None
        graph._edge_count = m
        graph._total_weight = total
        graph._csr_cache = view
        graph._csr_cache_version = graph._version
        return graph

    def add_node(self, node: NodeId) -> None:
        """Add ``node`` to the graph (no-op if already present)."""
        adjacency = self._adjacency
        if node not in adjacency:
            adjacency[node] = {}
            # the CSR snapshot encodes the node set (n, offsets, nodes), so
            # inserting even an isolated node invalidates it exactly like an
            # edge mutation does
            self._version += 1

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with ``weight``.

        Adding an edge that already exists overwrites its weight.  Self loops
        are rejected because the network model has no use for them.

        Raises:
            ValueError: if ``u == v``.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        existing = self._adjacency[u].get(v)
        if existing is None:
            self._edge_count += 1
            self._total_weight += weight
        else:
            self._total_weight += weight - existing
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._version += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._total_weight -= self._adjacency[u][v]
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1
        if self._edge_count == 0:
            self._total_weight = 0.0  # clear float residue exactly
        self._version += 1

    def set_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Set the weight of an existing edge.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._total_weight += weight - self._adjacency[u][v]
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` when ``node`` is in the graph."""
        adj = self._adj
        if adj is not None:
            return node in adj
        csr = self._csr_cache
        if csr.index_of is not None:
            return node in csr.index_of
        # identity enumeration: the node set is exactly the ints 0..n-1.
        # Reproduce the dict lookup's ==/hash semantics without delegating
        # to range.__contains__, whose equality fallback is an O(n) scan
        # for anything but exact ints:
        hash(node)  # unhashable labels raise TypeError, as the dict did
        if isinstance(node, int):  # bools and int subclasses included
            return 0 <= node < csr.n
        if isinstance(node, float):
            return node.is_integer() and 0 <= node < csr.n
        if isinstance(node, numbers.Number):
            # exotic numeric aliases (Decimal, Fraction, complex, …) keep
            # the exact dict-equality semantics; rare enough that range's
            # linear scan is acceptable
            return node in csr.nodes
        return False

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Return the weight of the edge ``{u, v}``.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        return self._adjacency[u][v]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the neighbours of ``node`` in insertion order."""
        return list(self._adjacency[node])

    def iter_neighbors(self, node: NodeId) -> KeysView:
        """Return a zero-copy view of ``node``'s neighbours (insertion order).

        The view reflects later mutations; do not add or remove edges at
        ``node`` while iterating it.
        """
        return self._adjacency[node].keys()

    def neighbor_items(self, node: NodeId) -> ItemsView:
        """Return a zero-copy ``(neighbour, weight)`` view for ``node``.

        Saves the per-neighbour :meth:`weight` lookup in hot loops; the same
        mutation caveat as :meth:`iter_neighbors` applies.
        """
        return self._adjacency[node].items()

    def adjacency(self) -> Dict[NodeId, Dict[NodeId, float]]:
        """Return the live ``node → (neighbour → weight)`` mapping.

        This is the graph's own adjacency structure, not a copy: callers must
        treat it as read-only.  It exists for the tightest loops (BFS sweeps,
        the simulator's per-round link validation) where even the bound-method
        dispatch of :meth:`iter_neighbors` per node is measurable.
        """
        return self._adjacency

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        return len(self._adjacency[node])

    def incident_edges(self, node: NodeId) -> List[Edge]:
        """Return the edges incident to ``node``."""
        return [Edge(node, v, w) for v, w in self._adjacency[node].items()]

    def nodes(self) -> List[NodeId]:
        """Return all nodes in insertion order."""
        adj = self._adj
        if adj is not None:
            return list(adj)
        return list(self._csr_cache.nodes)

    def edges(self) -> List[Edge]:
        """Return every undirected edge exactly once.

        Edges are listed in first-endpoint insertion order (the order the
        old on-demand scan produced); the list is rebuilt at most once per
        mutation generation and copied per call, so callers may mutate it.
        """
        if self._edges_cache_version != self._version:
            adj = self._adj
            if adj is None:
                # CSR-built graph: canonical edge order falls straight out of
                # the row scan, no need to materialise the dicts
                csr = self._csr_cache
                edge_u, edge_v, edge_w = csr.canonical_edges()
                if csr.identity:
                    result = [
                        Edge(u, v, w)
                        for u, v, w in zip(edge_u, edge_v, edge_w)
                    ]
                else:
                    labels = csr.nodes
                    result = [
                        Edge(labels[u], labels[v], w)
                        for u, v, w in zip(edge_u, edge_v, edge_w)
                    ]
            else:
                position = {node: index for index, node in enumerate(adj)}
                result = []
                for u, nbrs in adj.items():
                    pos_u = position[u]
                    for v, w in nbrs.items():
                        if position[v] > pos_u:
                            result.append(Edge(u, v, w))
            self._edges_cache = result
            self._edges_cache_version = self._version
        return list(self._edges_cache)

    def csr(self) -> "CSRView":
        """Return the CSR snapshot of the current mutation generation.

        Built at most once per generation (the same version-counter
        invalidation :meth:`edges` uses) and shared by every caller until
        the next mutation.  Graphs constructed by the generators are born
        with the snapshot already in place, so this is free for them.
        """
        if self._csr_cache_version != self._version:
            self._csr_cache = _csr_from_adjacency(self._adj)
            self._csr_cache_version = self._version
        return self._csr_cache

    def num_nodes(self) -> int:
        """Return ``n``, the number of nodes."""
        adj = self._adj
        if adj is not None:
            return len(adj)
        return self._csr_cache.n

    def num_edges(self) -> int:
        """Return ``m``, the number of undirected edges."""
        return self._edge_count

    def total_weight(self) -> float:
        """Return the sum of all edge weights.

        Maintained incrementally across mutations, so after many
        ``remove_edge``/``set_weight`` calls on non-integral weights the
        value can differ from a fresh summation by float rounding residue
        (it is exact for integral weights, and resets exactly to 0.0 when
        the last edge is removed).  Compare with a tolerance when weights
        are fractional.
        """
        return self._total_weight

    def __contains__(self, node: NodeId) -> bool:
        """Return ``True`` when ``node`` is a node of the graph."""
        return self.has_node(node)

    def __len__(self) -> int:
        """Return the number of nodes."""
        return self.num_nodes()

    def __iter__(self) -> Iterator[NodeId]:
        """Iterate over the nodes in insertion order."""
        adj = self._adj
        if adj is not None:
            return iter(adj)
        return iter(self._csr_cache.nodes)

    def __repr__(self) -> str:
        """Return a compact ``n``/``m`` summary for debugging."""
        return (
            f"WeightedGraph(n={self.num_nodes()}, m={self.num_edges()})"
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        """Return a deep copy of this graph."""
        clone = WeightedGraph()
        if self._adj is None:
            # CSR-built and never materialised: the snapshot is immutable, so
            # the clone shares it; whichever side mutates first materialises
            # its own dicts from the shared view
            clone._adj = None
            clone._edge_count = self._edge_count
            clone._total_weight = self._total_weight
            clone._csr_cache = self._csr_cache
            clone._csr_cache_version = clone._version
            return clone
        adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            node: {} for node in self._adjacency
        }
        for edge in self.edges():
            adjacency[edge.u][edge.v] = edge.weight
            adjacency[edge.v][edge.u] = edge.weight
        clone._adjacency = adjacency
        clone._edge_count = self._edge_count
        clone._total_weight = self._total_weight
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "WeightedGraph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        sub = WeightedGraph()
        adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            node: {} for node in self.nodes() if node in keep
        }
        count = 0
        total = 0.0
        for edge in self.edges():
            if edge.u in keep and edge.v in keep:
                adjacency[edge.u][edge.v] = edge.weight
                adjacency[edge.v][edge.u] = edge.weight
                count += 1
                total += edge.weight
        sub._adjacency = adjacency
        sub._edge_count = count
        sub._total_weight = total
        return sub

    def relabeled(self, mapping: Optional[Dict[NodeId, NodeId]] = None) -> "WeightedGraph":
        """Return a copy with node identifiers replaced via ``mapping``.

        When ``mapping`` is ``None`` the nodes are renamed ``0..n-1`` in
        insertion order, which is what the simulator expects.
        """
        if mapping is None:
            mapping = {node: index for index, node in enumerate(self.nodes())}
        renamed = WeightedGraph()
        adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            mapping[node]: {} for node in self.nodes()
        }
        # count and total are re-derived rather than copied: a non-injective
        # mapping may merge edges (last weight wins, as with add_edge) or
        # collapse an edge into a self loop, which is rejected
        count = 0
        total = 0.0
        for edge in self.edges():
            u, v = mapping[edge.u], mapping[edge.v]
            if u == v:
                raise ValueError(f"self loops are not allowed (node {u!r})")
            existing = adjacency[u].get(v)
            if existing is None:
                count += 1
                total += edge.weight
            else:
                total += edge.weight - existing
            adjacency[u][v] = edge.weight
            adjacency[v][u] = edge.weight
        renamed._adjacency = adjacency
        renamed._edge_count = count
        renamed._total_weight = total
        return renamed
