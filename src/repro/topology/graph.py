"""Undirected weighted graph used as the point-to-point topology.

The graph is deliberately small and explicit: node identifiers are arbitrary
hashable values (the simulator uses integers), edges are undirected and carry
a weight, and adjacency is kept as an ordered mapping so that iteration order
is deterministic.  Determinism matters because the paper's algorithms break
ties by node identifier and because every experiment must be reproducible
from a seed.

The class sits under every hot loop of the partition/MST algorithms, so the
whole-graph accessors are cached: a mutation counter (``_version``) is bumped
by every edge mutation, the canonical edge list is rebuilt at most once per
mutation generation, and the total weight is maintained incrementally.  The
``iter_neighbors``/``neighbor_items`` views expose the adjacency dict without
the per-call list allocation of :meth:`neighbors`.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    ItemsView,
    Iterable,
    Iterator,
    KeysView,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

NodeId = Hashable


def edge_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Return the canonical (sorted) key for the undirected edge ``{u, v}``.

    Endpoints are ordered by direct comparison when the values are mutually
    comparable (the common case: integer node identifiers), which is both
    fast and correct for distinct values.  Incomparable endpoints (mixed
    types) fall back to ordering by ``(type name, repr)``.  The old
    repr-only ordering was a hot spot *and* wrong for distinct nodes whose
    reprs collide: ``edge_key(u, v)`` and ``edge_key(v, u)`` disagreed, so
    the same physical link could appear under two keys.
    """
    try:
        if u < v:  # type: ignore[operator]
            return (u, v)
        if v < u:  # type: ignore[operator]
            return (v, u)
    except TypeError:
        pass
    if u == v:
        return (u, v)
    # incomparable types, or a partial order where neither side is smaller
    # (e.g. disjoint frozensets): order by (type name, repr) instead
    if (type(u).__name__, repr(u)) <= (type(v).__name__, repr(v)):
        return (u, v)
    return (v, u)


def is_identity_enumeration(nodes: Sequence[NodeId]) -> bool:
    """True when ``nodes`` is exactly the int sequence ``0, 1, …, n-1``.

    Every standard generator numbers its nodes this way, which lets
    array-indexed hot loops (the partitioners) skip the node→index
    translation outright.  The type check matters: ``2.0 == 2`` compares
    equal to its position yet is no use as a list index.
    """
    return all(type(node) is int and node == i for i, node in enumerate(nodes))


def sorted_incident_links(
    graph: "WeightedGraph",
) -> Dict[NodeId, List[Tuple[float, NodeId, Tuple[NodeId, NodeId]]]]:
    """Return every node's incident links as ``(weight, neighbour, edge key)``
    triples in increasing ``(weight, repr(neighbour))`` order — the GHS scan
    order, with the canonical key precomputed once per physical link.

    With globally distinct weights (the standard assumption of the MST
    algorithms) a single global edge sort populates every node's list, which
    is substantially cheaper than one sort per node; graphs with repeated
    weights fall back to per-node sorts with the repr tie-break.
    """
    links: Dict[NodeId, List[Tuple[float, NodeId, Tuple[NodeId, NodeId]]]] = {
        node: [] for node in graph.nodes()
    }
    edges = graph.edges()
    weights = [edge.weight for edge in edges]
    if len(set(weights)) == len(weights):
        edges.sort(key=lambda edge: edge.weight)
        for edge in edges:
            key = edge_key(edge.u, edge.v)
            links[edge.u].append((edge.weight, edge.v, key))
            links[edge.v].append((edge.weight, edge.u, key))
    else:
        for node in links:
            links[node] = sorted(
                (
                    (w, v, edge_key(node, v))
                    for v, w in graph.neighbor_items(node)
                ),
                key=lambda item: (item[0], repr(item[1])),
            )
    return links


class Edge(NamedTuple):
    """An undirected weighted edge.

    A named tuple rather than a (frozen) dataclass: edge lists are rebuilt
    wholesale by the graph accessors, and tuple construction is several
    times cheaper than frozen-dataclass construction.

    Attributes:
        u: one endpoint.
        v: the other endpoint.
        weight: the link weight.  The paper assumes distinct weights for the
            MST-related algorithms; :mod:`repro.topology.weights` provides
            helpers to enforce that.
    """

    u: NodeId
    v: NodeId
    weight: float = 1.0

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """Return both endpoints as a tuple."""
        return (self.u, self.v)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint different from ``node``.

        Raises:
            ValueError: if ``node`` is not an endpoint of this edge.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def key(self) -> Tuple[NodeId, NodeId]:
        """Return the canonical undirected key of this edge."""
        return edge_key(self.u, self.v)


class WeightedGraph:
    """An undirected weighted graph with deterministic iteration order.

    The class intentionally exposes only the operations the distributed
    algorithms and the simulator need: adding nodes and edges, neighbour
    queries, weight lookups, and a handful of whole-graph accessors.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[NodeId, Dict[NodeId, float]] = {}
        self._edge_count = 0
        self._total_weight = 0.0
        # cache generation: bumped by every edge mutation; whole-graph views
        # derived from the adjacency are rebuilt lazily when stale
        self._version = 0
        self._edges_cache: List[Edge] = []
        self._edges_cache_version = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` to the graph (no-op if already present)."""
        if node not in self._adjacency:
            self._adjacency[node] = {}

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with ``weight``.

        Adding an edge that already exists overwrites its weight.  Self loops
        are rejected because the network model has no use for them.

        Raises:
            ValueError: if ``u == v``.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        existing = self._adjacency[u].get(v)
        if existing is None:
            self._edge_count += 1
            self._total_weight += weight
        else:
            self._total_weight += weight - existing
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._version += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._total_weight -= self._adjacency[u][v]
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1
        if self._edge_count == 0:
            self._total_weight = 0.0  # clear float residue exactly
        self._version += 1

    def set_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Set the weight of an existing edge.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._total_weight += weight - self._adjacency[u][v]
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` when ``node`` is in the graph."""
        return node in self._adjacency

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Return the weight of the edge ``{u, v}``.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        return self._adjacency[u][v]

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the neighbours of ``node`` in insertion order."""
        return list(self._adjacency[node])

    def iter_neighbors(self, node: NodeId) -> KeysView:
        """Return a zero-copy view of ``node``'s neighbours (insertion order).

        The view reflects later mutations; do not add or remove edges at
        ``node`` while iterating it.
        """
        return self._adjacency[node].keys()

    def neighbor_items(self, node: NodeId) -> ItemsView:
        """Return a zero-copy ``(neighbour, weight)`` view for ``node``.

        Saves the per-neighbour :meth:`weight` lookup in hot loops; the same
        mutation caveat as :meth:`iter_neighbors` applies.
        """
        return self._adjacency[node].items()

    def adjacency(self) -> Dict[NodeId, Dict[NodeId, float]]:
        """Return the live ``node → (neighbour → weight)`` mapping.

        This is the graph's own adjacency structure, not a copy: callers must
        treat it as read-only.  It exists for the tightest loops (BFS sweeps,
        the simulator's per-round link validation) where even the bound-method
        dispatch of :meth:`iter_neighbors` per node is measurable.
        """
        return self._adjacency

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        return len(self._adjacency[node])

    def incident_edges(self, node: NodeId) -> List[Edge]:
        """Return the edges incident to ``node``."""
        return [Edge(node, v, w) for v, w in self._adjacency[node].items()]

    def nodes(self) -> List[NodeId]:
        """Return all nodes in insertion order."""
        return list(self._adjacency)

    def edges(self) -> List[Edge]:
        """Return every undirected edge exactly once.

        Edges are listed in first-endpoint insertion order (the order the
        old on-demand scan produced); the list is rebuilt at most once per
        mutation generation and copied per call, so callers may mutate it.
        """
        if self._edges_cache_version != self._version:
            position = {node: index for index, node in enumerate(self._adjacency)}
            result: List[Edge] = []
            for u, nbrs in self._adjacency.items():
                pos_u = position[u]
                for v, w in nbrs.items():
                    if position[v] > pos_u:
                        result.append(Edge(u, v, w))
            self._edges_cache = result
            self._edges_cache_version = self._version
        return list(self._edges_cache)

    def num_nodes(self) -> int:
        """Return ``n``, the number of nodes."""
        return len(self._adjacency)

    def num_edges(self) -> int:
        """Return ``m``, the number of undirected edges."""
        return self._edge_count

    def total_weight(self) -> float:
        """Return the sum of all edge weights.

        Maintained incrementally across mutations, so after many
        ``remove_edge``/``set_weight`` calls on non-integral weights the
        value can differ from a fresh summation by float rounding residue
        (it is exact for integral weights, and resets exactly to 0.0 when
        the last edge is removed).  Compare with a tolerance when weights
        are fractional.
        """
        return self._total_weight

    def __contains__(self, node: NodeId) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.num_nodes()

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __repr__(self) -> str:
        return (
            f"WeightedGraph(n={self.num_nodes()}, m={self.num_edges()})"
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        """Return a deep copy of this graph."""
        clone = WeightedGraph()
        adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            node: {} for node in self._adjacency
        }
        for edge in self.edges():
            adjacency[edge.u][edge.v] = edge.weight
            adjacency[edge.v][edge.u] = edge.weight
        clone._adjacency = adjacency
        clone._edge_count = self._edge_count
        clone._total_weight = self._total_weight
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "WeightedGraph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        sub = WeightedGraph()
        adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            node: {} for node in self._adjacency if node in keep
        }
        count = 0
        total = 0.0
        for edge in self.edges():
            if edge.u in keep and edge.v in keep:
                adjacency[edge.u][edge.v] = edge.weight
                adjacency[edge.v][edge.u] = edge.weight
                count += 1
                total += edge.weight
        sub._adjacency = adjacency
        sub._edge_count = count
        sub._total_weight = total
        return sub

    def relabeled(self, mapping: Optional[Dict[NodeId, NodeId]] = None) -> "WeightedGraph":
        """Return a copy with node identifiers replaced via ``mapping``.

        When ``mapping`` is ``None`` the nodes are renamed ``0..n-1`` in
        insertion order, which is what the simulator expects.
        """
        if mapping is None:
            mapping = {node: index for index, node in enumerate(self._adjacency)}
        renamed = WeightedGraph()
        adjacency: Dict[NodeId, Dict[NodeId, float]] = {
            mapping[node]: {} for node in self._adjacency
        }
        # count and total are re-derived rather than copied: a non-injective
        # mapping may merge edges (last weight wins, as with add_edge) or
        # collapse an edge into a self loop, which is rejected
        count = 0
        total = 0.0
        for edge in self.edges():
            u, v = mapping[edge.u], mapping[edge.v]
            if u == v:
                raise ValueError(f"self loops are not allowed (node {u!r})")
            existing = adjacency[u].get(v)
            if existing is None:
                count += 1
                total += edge.weight
            else:
                total += edge.weight - existing
            adjacency[u][v] = edge.weight
            adjacency[v][u] = edge.weight
        renamed._adjacency = adjacency
        renamed._edge_count = count
        renamed._total_weight = total
        return renamed
