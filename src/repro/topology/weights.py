"""Link-weight assignment helpers.

Sections 3 and 6 of the paper assume, w.l.o.g., that link weights are
distinct (the standard GHS assumption; ties can always be broken by the
endpoint identifiers).  These helpers assign random weights and enforce
distinctness deterministically so that the MST of a generated topology is
unique, which makes the "each fragment is a subtree of the MST" invariant
checkable.
"""

from __future__ import annotations

import random
from array import array
from typing import Optional, Tuple

from repro.topology.graph import WeightedGraph


def assign_random_weights(
    graph: WeightedGraph,
    low: float = 1.0,
    high: float = 100.0,
    seed: Optional[int] = None,
) -> WeightedGraph:
    """Return a copy of ``graph`` with i.i.d. uniform random edge weights.

    The weights drawn are *not* guaranteed distinct; combine with
    :func:`ensure_distinct_weights` or use :func:`assign_distinct_weights`.
    """
    if low > high:
        raise ValueError("low must not exceed high")
    rng = random.Random(seed)
    csr = graph.csr()
    edge_u, edge_v, _ = csr.canonical_edges()
    # draw in canonical edge order (the same order the copy-then-reweight
    # implementation used), then counting-sort the reweighted edge stream
    # straight into the copy's CSR form — the row order per-edge add_edge
    # calls would have produced, without ever building the nested dicts
    uniform = rng.uniform
    drawn = array("d", (uniform(low, high) for _ in range(len(edge_u))))
    return _weighted_copy(csr, edge_u, edge_v, drawn)


def assign_distinct_weights(
    graph: WeightedGraph,
    seed: Optional[int] = None,
) -> WeightedGraph:
    """Return a copy of ``graph`` with distinct positive integer weights.

    A random permutation of ``1..m`` is assigned to the edges, so the MST is
    unique and every weight fits in O(log m) bits — matching the paper's
    assumption that a message carries O(log n) bits plus one data element.
    """
    rng = random.Random(seed)
    csr = graph.csr()
    edge_u, edge_v, _ = csr.canonical_edges()
    weights = list(range(1, len(edge_u) + 1))
    rng.shuffle(weights)
    # assign in canonical edge order (identical to the old copy-then-reweight
    # pairing); array('d') conversion is exactly float(weight)
    return _weighted_copy(csr, edge_u, edge_v, array("d", weights))


def _weighted_copy(csr, edge_u, edge_v, weights) -> WeightedGraph:
    """Build the reweighted copy of a graph directly in CSR form.

    ``csr`` is the source graph's snapshot; ``weights`` pairs with its
    canonical edge columns.  Node labels (and the label→slot dict, when the
    enumeration is not the identity) are shared with the source — both are
    immutable in use.
    """
    if csr.identity:
        return WeightedGraph._from_csr_edges(csr.n, edge_u, edge_v, weights)
    return WeightedGraph._from_csr_edges(
        csr.n, edge_u, edge_v, weights, nodes=csr.nodes, index_of=csr.index_of
    )


def ensure_distinct_weights(graph: WeightedGraph) -> WeightedGraph:
    """Return a copy of ``graph`` whose weights are perturbed to be distinct.

    Ties are broken lexicographically by the canonical edge key, exactly the
    tie-breaking rule Gallager, Humblet and Spira suggest: the effective
    weight becomes the tuple ``(weight, min endpoint, max endpoint)`` encoded
    as a float by adding a rank-scaled epsilon.  The relative order of
    originally-distinct weights is preserved.
    """
    weighted = graph.copy()
    edges = sorted(
        weighted.edges(), key=lambda e: (e.weight, repr(e.key()[0]), repr(e.key()[1]))
    )
    if not edges:
        return weighted
    max_weight = max(abs(edge.weight) for edge in edges)
    epsilon = (max_weight + 1.0) * 1e-9
    for rank, edge in enumerate(edges):
        weighted.set_weight(edge.u, edge.v, edge.weight + rank * epsilon)
    return weighted


def weight_bits(graph: WeightedGraph) -> int:
    """Return the number of bits needed to represent the largest edge weight.

    Used to check the model assumption that a data element fits in a single
    channel slot alongside the O(log n)-bit header.
    """
    max_weight = 0
    for edge in graph.edges():
        max_weight = max(max_weight, int(abs(edge.weight)))
    return max(1, max_weight).bit_length()


def minimum_spanning_tree_edges(graph: WeightedGraph) -> Tuple[float, list]:
    """Return ``(total weight, edges)`` of the MST via Kruskal's algorithm.

    This is the sequential reference implementation used by the validation
    code; the distributed implementations live under :mod:`repro.core.mst`.

    Raises:
        ValueError: if the graph is disconnected (no spanning tree exists).
    """
    from repro.topology.properties import is_connected

    if graph.num_nodes() > 0 and not is_connected(graph):
        raise ValueError("graph is disconnected; no spanning tree exists")
    parent = {node: node for node in graph.nodes()}

    def find(node):
        """Return ``node``'s union-find root with path halving."""
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    chosen = []
    total = 0.0
    for edge in sorted(graph.edges(), key=lambda e: (e.weight, repr(e.key()))):
        ru, rv = find(edge.u), find(edge.v)
        if ru == rv:
            continue
        parent[ru] = rv
        chosen.append(edge)
        total += edge.weight
    return total, chosen
