"""Topology substrate: weighted graphs, generators, and graph-theoretic properties.

The multimedia network model of Afek, Landau, Schieber and Yung (1988/1990)
assumes an arbitrary-topology point-to-point network.  This package provides
the graph data structure used throughout the reproduction, a collection of
topology generators (including the ray graphs used in the paper's lower-bound
argument, Section 5.2), utilities to assign the distinct link weights assumed
by the MST-related algorithms, and graph-property helpers (diameter, radius,
connectivity) needed by the experiments.
"""

from repro.topology.graph import Edge, WeightedGraph
from repro.topology.generators import (
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    ray_graph,
    ring_graph,
    torus_graph,
)
from repro.topology.properties import (
    breadth_first_levels,
    connected_components,
    diameter,
    eccentricity,
    graph_radius,
    is_connected,
    shortest_path_lengths,
)
from repro.topology.weights import (
    assign_distinct_weights,
    assign_random_weights,
    ensure_distinct_weights,
)

__all__ = [
    "Edge",
    "WeightedGraph",
    "complete_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "random_geometric_graph",
    "random_tree",
    "ray_graph",
    "ring_graph",
    "torus_graph",
    "breadth_first_levels",
    "connected_components",
    "diameter",
    "eccentricity",
    "graph_radius",
    "is_connected",
    "shortest_path_lengths",
    "assign_distinct_weights",
    "assign_random_weights",
    "ensure_distinct_weights",
]
