"""Graph-theoretic properties needed by the algorithms and the experiments.

All helpers operate on :class:`~repro.topology.graph.WeightedGraph` and treat
edges as unit length (hop distance), which is what the paper's time
complexities are stated in — the diameter ``d`` of Theorem 2 is the hop
diameter of the point-to-point network.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional

from repro.topology.graph import WeightedGraph

NodeId = Hashable


def breadth_first_levels(graph: WeightedGraph, source: NodeId) -> Dict[NodeId, int]:
    """Return a mapping ``node -> hop distance from source``.

    Nodes unreachable from ``source`` do not appear in the result.

    Raises:
        KeyError: if ``source`` is not a node of ``graph``.
    """
    csr = graph.csr()
    if csr.index_of is not None:
        if source not in csr.index_of:
            raise KeyError(f"{source!r} is not a node of the graph")
        start = csr.index_of[source]
    elif type(source) is int and 0 <= source < csr.n:
        start = source
    elif isinstance(source, (int, float)) and source in csr.nodes:
        # bool/float alias of an identity label (True, 2.0): same ==/hash
        # semantics the adjacency-dict lookup had
        start = int(source)
    else:
        raise KeyError(f"{source!r} is not a node of the graph")
    offsets = csr.offsets
    targets = csr.targets
    nodes = csr.nodes
    # frontier-at-a-time sweep over the CSR rows: same visit order as the
    # node-at-a-time deque (FIFO within each level, neighbours in row
    # order), with byte-flag visit marks instead of per-neighbour hashing
    seen = bytearray(csr.n)
    seen[start] = 1
    levels: Dict[NodeId, int] = {source: 0}
    frontier = [start]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: List[int] = []
        for slot in frontier:
            for target in targets[offsets[slot]:offsets[slot + 1]]:
                if not seen[target]:
                    seen[target] = 1
                    levels[nodes[target]] = depth
                    next_frontier.append(target)
        frontier = next_frontier
    return levels


def bfs_tree_parents(graph: WeightedGraph, source: NodeId) -> Dict[NodeId, Optional[NodeId]]:
    """Return a BFS-tree parent map rooted at ``source`` (root maps to ``None``)."""
    if not graph.has_node(source):
        raise KeyError(f"{source!r} is not a node of the graph")
    parents: Dict[NodeId, Optional[NodeId]] = {source: None}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.iter_neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def connected_components(graph: WeightedGraph) -> List[List[NodeId]]:
    """Return the connected components of ``graph`` as lists of nodes."""
    seen = set()
    components: List[List[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        levels = breadth_first_levels(graph, start)
        component = list(levels)
        seen.update(component)
        components.append(component)
    return components


def is_connected(graph: WeightedGraph) -> bool:
    """Return ``True`` when ``graph`` is connected (the empty graph counts)."""
    if graph.num_nodes() == 0:
        return True
    first = graph.nodes()[0]
    return len(breadth_first_levels(graph, first)) == graph.num_nodes()


def eccentricity(graph: WeightedGraph, node: NodeId) -> int:
    """Return the eccentricity of ``node`` (max hop distance to any node).

    Raises:
        ValueError: if the graph is not connected, because eccentricity is
            undefined then.
    """
    levels = breadth_first_levels(graph, node)
    if len(levels) != graph.num_nodes():
        raise ValueError("eccentricity is undefined on a disconnected graph")
    return max(levels.values()) if levels else 0


def _slot_rows(graph: WeightedGraph) -> List[List[int]]:
    """Return per-slot neighbour lists (Python ints) from the CSR view.

    One O(m) materialisation shared by the all-sources sweeps below: list
    rows make the inner BFS loop iterate existing int objects instead of
    allocating an ``array`` slice (and boxing its entries) per visited node,
    which is what dominates when every node is a BFS source.
    """
    csr = graph.csr()
    targets = list(csr.targets)
    offsets = csr.offsets
    return [targets[offsets[i]:offsets[i + 1]] for i in range(csr.n)]


def _slot_eccentricity(rows: List[List[int]], n: int, start: int) -> int:
    """Return the eccentricity of slot ``start`` over ``rows``.

    Raises:
        ValueError: if the sweep does not reach all ``n`` slots.
    """
    seen = bytearray(n)
    seen[start] = 1
    visited = 1
    frontier = [start]
    depth = 0
    while frontier:
        next_frontier: List[int] = []
        for slot in frontier:
            for target in rows[slot]:
                if not seen[target]:
                    seen[target] = 1
                    next_frontier.append(target)
        if not next_frontier:
            break
        depth += 1
        visited += len(next_frontier)
        frontier = next_frontier
    if visited != n:
        raise ValueError("eccentricity is undefined on a disconnected graph")
    return depth


def diameter(graph: WeightedGraph) -> int:
    """Return the hop diameter of a connected ``graph``.

    Every node is a BFS source, so the sweep runs on shared slot rows
    (:func:`_slot_rows`) and tracks only depths — no per-source level map.

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    n = graph.num_nodes()
    if n == 0:
        raise ValueError("the diameter of an empty graph is undefined")
    rows = _slot_rows(graph)
    return max(_slot_eccentricity(rows, n, start) for start in range(n))


def approximate_diameter(graph: WeightedGraph) -> int:
    """Return a double-sweep lower bound on the hop diameter.

    Runs one BFS from the graph's first node, then a second BFS from a node
    the first sweep found farthest away; the larger eccentricity is a lower
    bound on the diameter that is exact on trees and empirically tight on the
    small-world topologies the large-``n`` sweeps use.  Deterministic (no
    randomness, ties broken by BFS visit order), and two BFS passes instead
    of the ``n`` passes :func:`diameter` needs.

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if graph.num_nodes() == 0:
        raise ValueError("the diameter of an empty graph is undefined")
    first = graph.nodes()[0]
    levels = breadth_first_levels(graph, first)
    if len(levels) != graph.num_nodes():
        raise ValueError("the diameter of a disconnected graph is undefined")
    first_ecc = 0
    farthest = first
    for node, level in levels.items():
        if level > first_ecc:
            first_ecc = level
            farthest = node
    second_levels = breadth_first_levels(graph, farthest)
    return max(first_ecc, max(second_levels.values()))


def graph_radius(graph: WeightedGraph) -> int:
    """Return the hop radius (minimum eccentricity) of a connected ``graph``."""
    n = graph.num_nodes()
    if n == 0:
        raise ValueError("the radius of an empty graph is undefined")
    rows = _slot_rows(graph)
    return min(_slot_eccentricity(rows, n, start) for start in range(n))


def shortest_path_lengths(graph: WeightedGraph) -> Dict[NodeId, Dict[NodeId, int]]:
    """Return all-pairs hop distances (only reachable pairs are present)."""
    return {node: breadth_first_levels(graph, node) for node in graph.nodes()}


def tree_radius_from_root(parents: Dict[NodeId, Optional[NodeId]], root: NodeId) -> int:
    """Return the depth of the deepest node in a parent-map tree rooted at ``root``.

    The ``parents`` map must describe a tree: every non-root node maps to its
    parent and the root maps to ``None``.

    Raises:
        ValueError: if ``root`` is not in the map, or a cycle is detected.
    """
    if root not in parents:
        raise ValueError("root is not part of the parent map")
    if parents[root] is not None:
        raise ValueError("the root of a parent-map tree must map to None")
    depth_cache: Dict[NodeId, int] = {root: 0}

    def depth(node: NodeId) -> int:
        """Return ``node``'s depth, path-caching every ancestor on the way."""
        chain = []
        current = node
        while current not in depth_cache:
            chain.append(current)
            current = parents[current]
            if current is None:
                raise ValueError("parent map contains a second root")
            if len(chain) > len(parents):
                raise ValueError("parent map contains a cycle")
        base = depth_cache[current]
        for offset, member in enumerate(reversed(chain), start=1):
            depth_cache[member] = base + offset
        return depth_cache[node]

    return max(depth(node) for node in parents) if parents else 0
