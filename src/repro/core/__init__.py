"""The paper's primary contribution.

Subpackages:

* :mod:`repro.core.partition` — the deterministic (Section 3) and randomized
  (Section 4) algorithms that partition a multimedia network into O(√n)
  rooted fragments of radius O(√n), plus the forest data structures and the
  invariant validators.
* :mod:`repro.core.global_function` — computing global sensitive functions
  (Section 5): the commutative-semigroup abstraction, the two-stage multimedia
  algorithms, and the point-to-point-only / channel-only baselines used in
  the model-separation experiments.
* :mod:`repro.core.mst` — the multimedia minimum-spanning-tree algorithm
  (Section 6), the sequential Kruskal reference and the synchronous
  point-to-point-only baseline.
* :mod:`repro.core.lower_bounds` — the analytic lower bounds of Section 5.2
  and the ray-graph experiment helpers.
* :mod:`repro.core.size_estimation` — the deterministic network-size
  computation and the Greenberg–Ladner randomized estimate (Sections 7.3/7.4).
"""
