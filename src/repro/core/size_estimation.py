"""Computing and estimating the network size ``n`` (Sections 7.3 and 7.4).

The base model assumes every processor knows ``n``.  Section 7 removes the
assumption:

* **Deterministic computation (7.3)** — run the deterministic partitioning
  algorithm phase by phase; after phase ``i`` try to schedule the fragment
  cores on the channel with Capetanakis' resolution for ``2^i`` rounds
  (``2^i · log|id|`` slots).  The first phase in which every core gets
  scheduled has at most ``2^i`` fragments, at which point the exact ``n`` is
  obtained by computing the global sensitive function "sum of ones" with the
  Section 5 algorithm.  Total: O(√n log|id|) time.
* **Randomized estimation (7.4)** — the Greenberg–Ladner protocol: rounds of
  coin flips with halving probabilities; the first idle slot at round ``k``
  yields the estimate ``2^k``, within a constant factor of ``n`` with high
  probability.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.global_function.multimedia import compute_global_function
from repro.core.global_function.semigroup import INTEGER_ADDITION
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.protocols.collision.base import run_contention
from repro.protocols.collision.capetanakis import CapetanakisContender
from repro.protocols.collision.greenberg_ladner import (
    MultiplicityEstimate,
    estimate_multiplicity,
)
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import WeightedGraph
from repro.topology.weights import assign_distinct_weights

NodeId = Hashable


@dataclass
class DeterministicSizeResult:
    """Result of the deterministic network-size computation.

    Attributes:
        n: the exact size computed (equals the true number of nodes).
        phases_used: partition phases run before the cores could be scheduled.
        scheduling_slots: channel slots spent on the successful schedule.
        metrics: combined accounting.
    """

    n: int
    phases_used: int
    scheduling_slots: int
    metrics: MetricsSnapshot


def compute_size_deterministically(
    graph: WeightedGraph,
    id_bits: Optional[int] = None,
    seed: Optional[int] = None,
    metrics: Optional[MetricsRecorder] = None,
) -> DeterministicSizeResult:
    """Compute ``n`` exactly without assuming it is known (Section 7.3).

    The reproduction runs the partition to increasing target sizes ``2^i``
    (mirroring "check at the end of each phase ``i`` whether the number of
    fragments is ≤ 2^i"), attempts the Capetanakis schedule with a slot
    budget of ``2^i · id_bits``, and on the first success counts the nodes
    with the global-sum algorithm over the resulting forest.

    Raises:
        ValueError: if the graph is empty.
    """
    if graph.num_nodes() == 0:
        raise ValueError("cannot size an empty network")
    recorder = metrics if metrics is not None else MetricsRecorder()
    true_n = graph.num_nodes()
    if id_bits is None:
        id_bits = max(1, max(int(node) for node in graph.nodes()).bit_length())
    weighted = assign_distinct_weights(graph, seed=seed)

    phases_used = 0
    scheduling_slots = 0
    forest = None
    max_exponent = max(1, math.ceil(math.log2(max(2, true_n))))
    for exponent in range(1, max_exponent + 1):
        phases_used = exponent
        target = 2 ** exponent
        # running the partition to target min-size 2^exponent leaves ≤ n/2^exponent
        # fragments … but the *node* does not know n, so it verifies by trying
        # to schedule the cores within the slot budget
        partitioner = DeterministicPartitioner(
            weighted, target_size=min(target, true_n), metrics=recorder
        )
        forest = partitioner.run().forest
        budget = (2 ** exponent) * id_bits * 2
        universe = 2 ** id_bits
        contenders = [
            CapetanakisContender(identity=int(core) % universe, universe_size=universe, payload=core)
            for core in forest.cores
        ]
        recorder.set_phase("size-scheduling")
        try:
            outcome = run_contention(contenders, max_slots=budget, metrics=recorder)
            scheduling_slots = outcome.slots_used
            recorder.set_phase(None)
            break
        except Exception:
            recorder.set_phase(None)
            forest = None
            continue
    if forest is None:
        raise RuntimeError("the schedule never fit its budget; this is a bug")

    computation = compute_global_function(
        graph=weighted,
        function=INTEGER_ADDITION,
        inputs={node: 1 for node in graph.nodes()},
        method="deterministic",
        forest=forest,
        seed=seed,
        metrics=recorder,
    )
    return DeterministicSizeResult(
        n=int(computation.value),
        phases_used=phases_used,
        scheduling_slots=scheduling_slots,
        metrics=recorder.snapshot(),
    )


@dataclass
class RandomizedSizeEstimate:
    """Result of the Greenberg–Ladner randomized size estimation.

    Attributes:
        estimate: the estimate ``2^(rounds−1)``.
        rounds: channel slots used.
        true_n: the actual network size (for error reporting).
    """

    estimate: int
    rounds: int
    true_n: int

    @property
    def error_factor(self) -> float:
        """Return the multiplicative error ``max(est/n, n/est)``."""
        if self.true_n <= 0 or self.estimate <= 0:
            return math.inf
        return max(self.estimate / self.true_n, self.true_n / self.estimate)


def estimate_size_randomized(
    graph: WeightedGraph,
    seed: Optional[int] = None,
    metrics: Optional[MetricsRecorder] = None,
) -> RandomizedSizeEstimate:
    """Estimate ``n`` with the Greenberg–Ladner protocol (Section 7.4)."""
    if graph.num_nodes() == 0:
        raise ValueError("cannot size an empty network")
    estimate: MultiplicityEstimate = estimate_multiplicity(
        graph.num_nodes(), rng=random.Random(seed), metrics=metrics
    )
    return RandomizedSizeEstimate(
        estimate=estimate.estimate,
        rounds=estimate.rounds,
        true_n=graph.num_nodes(),
    )
