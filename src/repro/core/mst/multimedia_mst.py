"""Minimum spanning tree in a multimedia network (Section 6).

Three stages:

1. **Partition** — the deterministic Section 3 algorithm builds initial
   fragments (subtrees of the MST, size ≥ √n, radius ≤ 8√n).
2. **Scheduling** — the cores of the initial fragments obtain a channel
   schedule with Capetanakis' deterministic resolution (O(√n log n) slots).
3. **Merging** — repeated phases on *current fragments* (initially the
   initial fragments).  In each phase every initial fragment converge-casts
   the minimum-weight link leaving its *current* fragment (no inter-fragment
   communication needed, because every node knows which initial fragment is
   across each incident link and which initial fragments make up each current
   fragment); then every core broadcasts its candidate over the channel in
   its scheduled slot, every node locally determines the minimum outgoing
   link of every current fragment, and the current fragments are merged along
   those links.  The number of current fragments at least halves per phase,
   so there are O(log n) phases of O(√n) time each.

Total: O(√n log n) time and O(m + n log n log* n) messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.mst.kruskal import MSTEdges
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.core.partition.forest import SpanningForest
from repro.protocols.collision.base import run_contention
from repro.protocols.collision.capetanakis import CapetanakisContender
from repro.sim.adversity import AdversityState
from repro.sim.channel import SlottedChannel
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import Edge, WeightedGraph, edge_key
from repro.topology.properties import is_connected

NodeId = Hashable


@dataclass
class MergePhaseRecord:
    """Statistics of one merge phase of the third stage."""

    phase: int
    current_fragments_before: int
    current_fragments_after: int
    rounds: int
    messages: int


@dataclass
class MultimediaMSTResult:
    """Result of the multimedia MST algorithm.

    Attributes:
        mst: the computed spanning tree edges.
        metrics: combined accounting of all three stages.
        initial_fragments: number of initial fragments of stage 1.
        scheduling_slots: channel slots used by stage 2.
        merge_phases: per-phase records of stage 3.
        partition_rounds: rounds spent in stage 1.
    """

    mst: MSTEdges
    metrics: MetricsSnapshot
    initial_fragments: int
    scheduling_slots: int
    merge_phases: List[MergePhaseRecord]
    partition_rounds: int

    @property
    def total_rounds(self) -> int:
        """Return the end-to-end time in rounds/slots."""
        return self.metrics.rounds


class MultimediaMST:
    """Runs the Section 6 algorithm on a weighted multimedia network."""

    def __init__(
        self,
        graph: WeightedGraph,
        metrics: Optional[MetricsRecorder] = None,
        adversity: Optional[AdversityState] = None,
    ) -> None:
        """Create the solver.

        Args:
            graph: connected topology with distinct link weights.
            metrics: externally owned recorder to charge.
            adversity: optional adversity state.  Only stage 2 (channel
                scheduling) runs on the simulated channel, so only jamming
                reaches this algorithm; stages 1 and 3 are charged
                analytically and sit outside the schedule's reach.

        Raises:
            ValueError: if the graph is empty, disconnected, or has repeated
                weights (the paper assumes distinct weights w.l.o.g.).
        """
        if graph.num_nodes() == 0:
            raise ValueError("cannot compute the MST of an empty network")
        if not is_connected(graph):
            raise ValueError("the topology must be connected")
        weights = [edge.weight for edge in graph.edges()]
        if len(weights) != len(set(weights)):
            raise ValueError(
                "link weights must be distinct; use assign_distinct_weights()"
            )
        self._graph = graph
        self._n = graph.num_nodes()
        self._metrics = metrics if metrics is not None else MetricsRecorder()
        self._adversity = adversity

    # ------------------------------------------------------------------
    def run(self) -> MultimediaMSTResult:
        """Execute the three stages and return the MST."""
        # ---------------- stage 1: initial fragments ----------------------
        rounds_before = self._metrics.rounds
        partitioner = DeterministicPartitioner(self._graph, metrics=self._metrics)
        partition = partitioner.run()
        forest = partition.forest
        partition_rounds = self._metrics.rounds - rounds_before

        # ---------------- stage 2: schedule the cores ---------------------
        self._metrics.set_phase("scheduling")
        universe = max(
            self._n, max((int(core) for core in forest.cores), default=0) + 1
        )
        contenders = [
            CapetanakisContender(identity=int(core), universe_size=universe, payload=core)
            for core in forest.cores
        ]
        if self._adversity is not None:
            channel = SlottedChannel(
                metrics=self._metrics,
                adversity=self._adversity.channel_adversity(),
            )
            schedule_outcome = run_contention(
                contenders,
                metrics=self._metrics,
                channel=channel,
                max_slots=self._adversity.round_budget(self._n),
            )
        else:
            schedule_outcome = run_contention(contenders, metrics=self._metrics)
        schedule = schedule_outcome.order
        scheduling_slots = schedule_outcome.slots_used
        self._metrics.set_phase(None)

        # ---------------- stage 3: merge current fragments ----------------
        mst_keys, merge_records = self._merge_stage(forest, schedule)
        mst_edges = [
            Edge(u, v, self._graph.weight(u, v)) for u, v in sorted(mst_keys, key=repr)
        ]
        mst = MSTEdges(
            edges=mst_edges, total_weight=sum(edge.weight for edge in mst_edges)
        )
        return MultimediaMSTResult(
            mst=mst,
            metrics=self._metrics.snapshot(),
            initial_fragments=forest.num_fragments(),
            scheduling_slots=scheduling_slots,
            merge_phases=merge_records,
            partition_rounds=partition_rounds,
        )

    # ------------------------------------------------------------------
    def _merge_stage(
        self,
        forest: SpanningForest,
        schedule: List[NodeId],
    ) -> Tuple[Set[Tuple[NodeId, NodeId]], List[MergePhaseRecord]]:
        """Run the Kruskal-style merge phases and return the MST edge keys.

        Each initial fragment's candidate links live in one weight-sorted
        boundary column built once up front; a per-fragment start pointer
        advances past links that have become internal to the fragment's
        current fragment.  Merging only ever grows current fragments, so an
        internal link stays internal and the pointer never needs to back up —
        every boundary link is examined O(1) times across all phases instead
        of once per phase, and the selected candidates (hence the MST and all
        recorded metrics) are identical to the per-phase rescan's.
        """
        self._metrics.set_phase("merge")
        initial_of: Dict[NodeId, NodeId] = {
            node: forest.core_of(node) for node in self._graph.nodes()
        }
        initial_members: Dict[NodeId, List[NodeId]] = {
            fragment.core: fragment.members for fragment in forest.fragments
        }
        initial_radius: Dict[NodeId, int] = {
            fragment.core: fragment.radius for fragment in forest.fragments
        }
        # the MST edges inside the initial fragments are already known
        mst_keys: Set[Tuple[NodeId, NodeId]] = {
            edge_key(child, parent) for child, parent in forest.tree_edges()
        }

        # "first, each node finds out which initial fragment is on the other
        # side of each of its incident links": one exchange per link
        self._metrics.record_round(1)
        self._metrics.record_messages(2 * self._graph.num_edges())

        # every node knows the composition of every current fragment; we track
        # it centrally as a mapping initial fragment -> current fragment id
        current_of: Dict[NodeId, NodeId] = {core: core for core in initial_members}

        # boundary columns: per initial fragment, its links to other initial
        # fragments sorted by (weight, node, neighbor) — the comparison order
        # the per-phase minimum always used
        boundary: Dict[NodeId, List[Tuple[float, NodeId, NodeId]]] = {
            core: [] for core in initial_members
        }
        # walk the CSR rows (same neighbour order as neighbor_items) with a
        # per-slot home column, so the inner test indexes a list instead of
        # hashing a node identifier per directed edge
        csr = self._graph.csr()
        offsets = csr.offsets
        csr_targets = csr.targets
        csr_weights = csr.weights
        csr_nodes = csr.nodes
        slot_home = [initial_of[node] for node in csr_nodes]
        start = 0
        for i in range(csr.n):
            end = offsets[i + 1]
            home = slot_home[i]
            links = boundary[home]
            node = csr_nodes[i]
            for k in range(start, end):
                target = csr_targets[k]
                if slot_home[target] != home:
                    links.append((csr_weights[k], node, csr_nodes[target]))
            start = end
        for links in boundary.values():
            links.sort()
        boundary_start: Dict[NodeId, int] = {core: 0 for core in initial_members}

        records: List[MergePhaseRecord] = []
        phase = 0
        while len(set(current_of.values())) > 1:
            phase += 1
            messages_start = self._metrics.point_to_point_messages
            currents_before = len(set(current_of.values()))
            rounds = 0

            # Step 1: every initial fragment converge-casts the minimum-weight
            # link leaving its *current* fragment (pure point-to-point work).
            # The minimum is the first boundary-column entry whose far side is
            # in a different current fragment; entries skipped on the way are
            # internal for good and the start pointer prunes them permanently.
            candidate_per_initial: Dict[NodeId, Tuple[float, NodeId, NodeId]] = {}
            for core, members in initial_members.items():
                current_core = current_of[core]
                links = boundary[core]
                index = boundary_start[core]
                limit = len(links)
                while (
                    index < limit
                    and current_of[initial_of[links[index][2]]] == current_core
                ):
                    index += 1
                boundary_start[core] = index
                if index < limit:
                    candidate_per_initial[core] = links[index]
                self._metrics.record_messages(2 * max(0, len(members) - 1))
            rounds += 2 * max(initial_radius.values(), default=0)

            # Step 2: the cores broadcast their candidates in their scheduled
            # slots; every node hears everything and updates locally
            rounds += len(schedule)
            self._metrics.record_round(rounds)

            # every node now computes the minimum outgoing link of every
            # current fragment and merges along those links (local work)
            best_per_current: Dict[NodeId, Tuple[float, NodeId, NodeId]] = {}
            for core, candidate in candidate_per_initial.items():
                current = current_of[core]
                if current not in best_per_current or candidate < best_per_current[current]:
                    best_per_current[current] = candidate
            merge_map: Dict[NodeId, NodeId] = {}
            for current, (weight, u, v) in best_per_current.items():
                mst_keys.add(edge_key(u, v))
                merge_map[current] = current_of[initial_of[v]]

            # contract the merge graph (union along chosen links)
            current_of = _contract(current_of, merge_map)

            records.append(
                MergePhaseRecord(
                    phase=phase,
                    current_fragments_before=currents_before,
                    current_fragments_after=len(set(current_of.values())),
                    rounds=rounds,
                    messages=self._metrics.point_to_point_messages - messages_start,
                )
            )
        self._metrics.set_phase(None)
        return mst_keys, records


def _contract(
    current_of: Dict[NodeId, NodeId],
    merge_map: Dict[NodeId, NodeId],
) -> Dict[NodeId, NodeId]:
    """Union current fragments along the chosen minimum outgoing links."""
    parent: Dict[NodeId, NodeId] = {}
    currents = set(current_of.values())
    for current in currents:
        parent[current] = current

    def find(x: NodeId) -> NodeId:
        """Return ``x``'s current-fragment root with path halving."""
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for source, target in merge_map.items():
        rs, rt = find(source), find(target)
        if rs != rt:
            parent[rs] = rt
    return {initial: find(current) for initial, current in current_of.items()}
