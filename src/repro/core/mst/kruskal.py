"""Sequential Kruskal MST — the correctness reference (Kruskal, 1956).

The paper's Section 6 algorithm "is actually an implementation of the
sequential algorithm of Kruskal"; this module provides that sequential
algorithm (with union-find) so the distributed results can be checked edge
for edge.  With distinct weights the MST is unique, which makes the check
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from repro.topology.graph import Edge, WeightedGraph
from repro.topology.properties import is_connected

NodeId = Hashable


@dataclass
class MSTEdges:
    """A minimum spanning tree described by its edge set.

    Attributes:
        edges: the chosen edges.
        total_weight: sum of the chosen edges' weights.
    """

    edges: List[Edge]
    total_weight: float

    def edge_keys(self) -> Set[Tuple[NodeId, NodeId]]:
        """Return the canonical undirected keys of the chosen edges."""
        return {edge.key() for edge in self.edges}

    def __len__(self) -> int:
        """Return the number of chosen edges."""
        return len(self.edges)


class _UnionFind:
    def __init__(self, nodes) -> None:
        """Make every node its own singleton set."""
        self._parent: Dict[NodeId, NodeId] = {node: node for node in nodes}
        self._rank: Dict[NodeId, int] = {node: 0 for node in nodes}

    def find(self, node: NodeId) -> NodeId:
        """Return ``node``'s set representative with path compression."""
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: NodeId, b: NodeId) -> bool:
        """Merge the sets of ``a`` and ``b``; ``False`` if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True


def kruskal_mst(graph: WeightedGraph) -> MSTEdges:
    """Return the minimum spanning tree of a connected weighted graph.

    Ties between equal weights are broken by the canonical edge key so the
    result is deterministic even when weights repeat (the distributed
    algorithms additionally assume distinct weights).

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if graph.num_nodes() == 0:
        raise ValueError("the MST of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("the graph is disconnected; no spanning tree exists")
    union_find = _UnionFind(graph.nodes())
    chosen: List[Edge] = []
    total = 0.0
    for edge in sorted(graph.edges(), key=lambda e: (e.weight, repr(e.key()))):
        if union_find.union(edge.u, edge.v):
            chosen.append(edge)
            total += edge.weight
    return MSTEdges(edges=chosen, total_weight=total)


def same_tree(first: MSTEdges, second: MSTEdges) -> bool:
    """Return ``True`` when two MSTs consist of exactly the same edges."""
    return first.edge_keys() == second.edge_keys()


def spanning_tree_weight(graph: WeightedGraph, keys: Set[Tuple[NodeId, NodeId]]) -> float:
    """Return the total weight of the edges named by ``keys`` in ``graph``.

    Raises:
        KeyError: if a key does not name an edge of the graph.
    """
    total = 0.0
    for u, v in keys:
        total += graph.weight(u, v)
    return total
