"""Point-to-point-only MST baseline (synchronous GHS / Borůvka fragments).

Used by experiment E9 as the "what if we had no channel" comparison: the
classic synchronous fragment-merging MST algorithm in the style of Gallager,
Humblet and Spira (1983).  Fragments start as singletons; in each phase every
fragment finds its minimum-weight outgoing link (broadcast + GHS-style
sequential link testing + convergecast on its own tree) and the fragments are
merged along the chosen links.  The number of fragments at least halves per
phase, giving O(log n) phases; each phase costs time proportional to the
largest fragment diameter, which can reach Θ(n) on high-diameter topologies —
hence the overall O(n log n) time that the multimedia algorithm's
O(√n log n) beats.

The execution style and the accounting match the deterministic partitioner
(orchestrated simulation with per-step charges derived from the actual tree
radii and the GHS edge-rejection discipline), so the comparison between the
baseline and the multimedia algorithm is apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.mst.kruskal import MSTEdges
from repro.protocols.spanning.tree_utils import node_depths, reroot
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import Edge, WeightedGraph, edge_key, sorted_incident_links
from repro.topology.properties import is_connected

NodeId = Hashable


@dataclass
class PointToPointMSTResult:
    """Result of the point-to-point-only MST baseline.

    Attributes:
        mst: the computed spanning tree.
        metrics: time/message accounting.
        phases: number of merge phases executed.
    """

    mst: MSTEdges
    metrics: MetricsSnapshot
    phases: int

    @property
    def total_rounds(self) -> int:
        """Return the end-to-end time in rounds."""
        return self.metrics.rounds


class PointToPointMST:
    """Synchronous fragment-merging MST using only the point-to-point network."""

    def __init__(
        self,
        graph: WeightedGraph,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        """Create the solver.

        Raises:
            ValueError: if the graph is empty, disconnected or has repeated
                weights.
        """
        if graph.num_nodes() == 0:
            raise ValueError("cannot compute the MST of an empty network")
        if not is_connected(graph):
            raise ValueError("the topology must be connected")
        weights = [edge.weight for edge in graph.edges()]
        if len(weights) != len(set(weights)):
            raise ValueError(
                "link weights must be distinct; use assign_distinct_weights()"
            )
        self._graph = graph
        self._metrics = metrics if metrics is not None else MetricsRecorder()

    def run(self) -> PointToPointMSTResult:
        """Execute the algorithm and return the MST."""
        graph = self._graph
        parents: Dict[NodeId, Optional[NodeId]] = {v: None for v in graph.nodes()}
        core_of: Dict[NodeId, NodeId] = {v: v for v in graph.nodes()}
        rejected: Set[Tuple[NodeId, NodeId]] = set()
        mst_keys: Set[Tuple[NodeId, NodeId]] = set()

        # per-node incident links sorted once, with a persistent scan pointer
        # past the permanently rejected prefix (same discipline as the
        # deterministic partitioner)
        sorted_links = sorted_incident_links(graph)
        link_pos: Dict[NodeId, int] = {node: 0 for node in sorted_links}

        self._metrics.set_phase("ghs")
        phases = 0
        depths: Optional[Dict[NodeId, int]] = None
        while True:
            members = _members_by_core(core_of)
            if len(members) <= 1:
                break
            phases += 1
            if depths is None:
                depths = node_depths(parents)
            radii = {core: 0 for core in members}
            for v, depth in depths.items():
                core = core_of[v]
                if depth > radii[core]:
                    radii[core] = depth
            rounds = 2 * max(radii.values(), default=0)
            self._metrics.record_messages(
                2 * (graph.num_nodes() - len(members))
            )

            # find each fragment's minimum-weight outgoing link (GHS testing)
            chosen: Dict[NodeId, Tuple[float, NodeId, NodeId]] = {}
            max_tests = 0
            total_tests = 0
            for core, nodes in members.items():
                best: Optional[Tuple[float, NodeId, NodeId]] = None
                for node in nodes:
                    tests = 0
                    links = sorted_links[node]
                    index = link_pos[node]
                    while index < len(links):
                        weight, neighbor, key = links[index]
                        if key in rejected:
                            index += 1
                            continue
                        tests += 1  # test + accept/reject: 2 messages
                        if core_of[neighbor] == core:
                            rejected.add(key)
                            index += 1
                            continue
                        candidate = (weight, node, neighbor)
                        if best is None or candidate < best:
                            best = candidate
                        break
                    link_pos[node] = index
                    total_tests += tests
                    if tests > max_tests:
                        max_tests = tests
                if best is not None:
                    chosen[core] = best
            self._metrics.record_messages(2 * total_tests)
            rounds += 2 * max_tests

            # merge the fragments along the chosen links
            out_edge = {core: core_of[v] for core, (_, _, v) in chosen.items()}
            groups = _merge_components(out_edge)
            merge_rounds = 0
            merged_members: List[List[NodeId]] = []
            for group_root, group in groups.items():
                if len(group) == 1:
                    continue
                spliced = 0
                for core in group:
                    if core == group_root:
                        continue
                    weight, u, v = chosen[core]
                    mst_keys.add(edge_key(u, v))
                    reroot(parents, members[core], u)
                    parents[u] = v
                    spliced += len(members[core])
                new_members: List[NodeId] = []
                for core in group:
                    new_members.extend(members[core])
                for node in new_members:
                    core_of[node] = group_root
                self._metrics.record_messages(2 * spliced + len(new_members))
                merged_members.append(new_members)
            if merged_members:
                # one walk of the post-merge forest serves every group's new
                # radius and the next phase's depth pass
                depths = node_depths(parents)
                for new_members in merged_members:
                    merge_rounds = max(
                        merge_rounds,
                        max((depths[node] for node in new_members), default=0),
                    )
            rounds += merge_rounds
            self._metrics.record_round(rounds)
        self._metrics.set_phase(None)

        edges = [Edge(u, v, graph.weight(u, v)) for u, v in sorted(mst_keys, key=repr)]
        mst = MSTEdges(edges=edges, total_weight=sum(edge.weight for edge in edges))
        return PointToPointMSTResult(
            mst=mst, metrics=self._metrics.snapshot(), phases=phases
        )


def _members_by_core(core_of: Dict[NodeId, NodeId]) -> Dict[NodeId, List[NodeId]]:
    members: Dict[NodeId, List[NodeId]] = {}
    for node, core in core_of.items():
        try:
            members[core].append(node)
        except KeyError:
            members[core] = [node]
    return members


def _merge_components(out_edge: Dict[NodeId, NodeId]) -> Dict[NodeId, List[NodeId]]:
    """Group fragments into merge components and pick each component's root.

    Every fragment has (at most) one outgoing edge in the fragment graph; each
    weakly connected component contains exactly one 2-cycle (the component's
    minimum-weight link, chosen by both endpoint fragments) — or a vertex with
    no outgoing edge when the component's target fragment chose a link into a
    different component.  The component is rooted at the higher-identifier
    endpoint of the 2-cycle (matching the paper's rule) or at the sink vertex.
    """
    # vertices in first-mention order (deterministic: out_edge is ordered);
    # the start order only affects which vertex discovers each component,
    # not the chosen root, so no repr sort is needed
    vertices: List[NodeId] = []
    known: Set[NodeId] = set()
    for source, target in out_edge.items():
        if source not in known:
            known.add(source)
            vertices.append(source)
        if target not in known:
            known.add(target)
            vertices.append(target)

    # undirected adjacency for component discovery (a 2-cycle lists its
    # partner twice, which the seen-set below absorbs)
    adjacency: Dict[NodeId, List[NodeId]] = {v: [] for v in vertices}
    for source, target in out_edge.items():
        adjacency[source].append(target)
        adjacency[target].append(source)

    seen: Set[NodeId] = set()
    groups: Dict[NodeId, List[NodeId]] = {}
    for start in vertices:
        if start in seen:
            continue
        stack = [start]
        component: List[NodeId] = []
        seen.add(start)
        while stack:
            vertex = stack.pop()
            component.append(vertex)
            for neighbor in adjacency[vertex]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        root = None
        for vertex in component:
            if vertex not in out_edge:
                root = vertex
                break
            partner = out_edge[vertex]
            if out_edge.get(partner) == vertex:
                root = max(vertex, partner, key=repr)
                break
        if root is None:
            # cannot happen for a finite functional graph, kept as a guard
            root = component[0]
        groups[root] = component
    return groups
