"""Minimum spanning tree algorithms.

* :mod:`repro.core.mst.kruskal` — the sequential reference (the distributed
  results are checked against it; with distinct weights the MST is unique).
* :mod:`repro.core.mst.multimedia_mst` — the Section 6 algorithm: partition
  into initial fragments, schedule their cores on the channel, then repeat
  Borůvka/Kruskal-style merge phases in which every initial fragment
  announces its current fragment's candidate edge over the channel.
  O(√n log n) time, O(m + n log n log* n) messages.
* :mod:`repro.core.mst.ghs_baseline` — the point-to-point-only synchronous
  baseline (Gallager–Humblet–Spira-style fragment merging without the
  channel), used by experiment E9 to show the multimedia speed-up on
  high-diameter topologies.
"""

from repro.core.mst.kruskal import kruskal_mst, MSTEdges
from repro.core.mst.multimedia_mst import MultimediaMST, MultimediaMSTResult
from repro.core.mst.ghs_baseline import PointToPointMST, PointToPointMSTResult

__all__ = [
    "kruskal_mst",
    "MSTEdges",
    "MultimediaMST",
    "MultimediaMSTResult",
    "PointToPointMST",
    "PointToPointMSTResult",
]
