"""Partitioning a multimedia network into O(√n) low-radius fragments.

The partition is the "divide" stage of every algorithm in the paper: it
produces a spanning forest whose trees are small enough in radius that the
local (point-to-point) stage finishes in O(√n) time, and few enough in number
that the global (channel) stage finishes in Õ(√n) slots.
"""

from repro.core.partition.forest import Fragment, SpanningForest
from repro.core.partition.deterministic import (
    DeterministicPartitioner,
    DeterministicPartitionResult,
    PhaseRecord,
)
from repro.core.partition.randomized import (
    RandomizedPartitioner,
    RandomizedPartitionResult,
)
from repro.core.partition.validation import (
    PartitionReport,
    validate_partition,
)

__all__ = [
    "Fragment",
    "SpanningForest",
    "DeterministicPartitioner",
    "DeterministicPartitionResult",
    "PhaseRecord",
    "RandomizedPartitioner",
    "RandomizedPartitionResult",
    "PartitionReport",
    "validate_partition",
]
