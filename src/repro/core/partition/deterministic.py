"""The deterministic partitioning algorithm (Section 3).

The algorithm builds a spanning forest whose trees are subtrees of the MST,
have size ≥ √n and radius ≤ 8√n, in O(√n log* n) time and
O(m + n log n log* n) messages.  It proceeds in synchronized phases; in phase
``i`` every fragment has size ≥ 2^i, and the *active* fragments (those of
level exactly ``i``) each merge with at least one neighbour, so after
``⌈log₂ √n⌉`` phases every fragment has at least √n nodes.  The radius is
kept in check by 3-colouring the fragment graph F (Goldberg–Plotkin–Shannon),
extracting an MIS that contains every root of F (Steps 4–5), and cutting the
trees of F at the MIS vertices so each group of merging fragments has
constant diameter in F (Step 6).

Execution style
---------------
The phases are executed as an *orchestrated simulation*: the per-node state
(parent pointer, core identity, list of not-yet-rejected incident links) is
explicit, every step is realised through the distributed tree primitives
(broadcast, convergecast, GHS-style link testing, core-to-core routing over
fragment branches), and the time and message cost of every step is charged
from the actual tree radii and sizes involved — i.e. the costs are the costs
of the message-passing execution, not wall-clock proxies.  The paper's phase
synchronisation ("each phase takes exactly 5·2^i·log* n rounds", Section 3)
is reproduced by padding each phase to its precomputed length; the result
records both the padded (model) time and the busy time actually used.

Fidelity note: for the per-node minimum-outgoing-link search (Step 2,
substep 2) the nodes test incident links sequentially in weight order, as in
Gallager–Humblet–Spira; a link found internal is rejected forever.  On dense
graphs a node may have to test many links in one phase, so the *measured*
busy time of a phase can exceed the 5·2^i·log* n budget even though the
total message count stays within O(m + n log n log* n); the experiments
report both numbers.

Implementation notes (hot loops, round 2)
-----------------------------------------
The orchestration state is **array-indexed**: nodes are enumerated once and
parent pointers, depths, core membership and the per-node link-scan state
live in flat integer lists indexed by that enumeration, so the inner loops
index lists instead of hashing node objects.  Fragment bookkeeping
(members, sizes, radii, first-appearance order) is maintained
*incrementally* across phases — only the fragments a merge actually touches
are updated, where earlier revisions re-derived all of it from scratch every
phase.  Link rejection marks a dead flag on **both** endpoints' scan lists
at rejection time (a batched candidate-edge scan with no per-test set
hashing), replacing the global rejected-edge-key set.  The small fragment
graph F — whose construction, 3-colouring, MIS and cut are order-sensitive —
is still built over the original node objects, so the outputs stay
bit-identical to the pre-optimization implementation (pinned by the v1
goldens).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.partition.forest import Fragment, SpanningForest
from repro.protocols.spanning.tree_utils import children_map
from repro.protocols.symmetry.cole_vishkin import log_star
from repro.protocols.symmetry.mis import mis_from_three_coloring
from repro.protocols.symmetry.three_coloring import three_color_rooted_forest
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import (
    WeightedGraph,
    is_identity_enumeration,
    sorted_incident_links,
)
from repro.topology.properties import is_connected

NodeId = Hashable


@dataclass
class PhaseRecord:
    """Per-phase statistics recorded by the deterministic partitioner.

    Attributes:
        phase: the phase index ``i``.
        active_fragments: number of fragments of level exactly ``i``.
        fragments_before / fragments_after: fragment counts around the phase.
        busy_rounds: rounds of actual activity in the phase.
        charged_rounds: rounds charged after padding to the synchronized
            phase length ``5 · 2^i · log* n`` (equal to ``busy_rounds`` when
            synchronization padding is disabled).
        messages: point-to-point messages sent during the phase.
        coloring_rounds: parent→child communication rounds used by the
            3-colouring + MIS computation on the fragment graph F.
    """

    phase: int
    active_fragments: int
    fragments_before: int
    fragments_after: int
    busy_rounds: int
    charged_rounds: int
    messages: int
    coloring_rounds: int


@dataclass
class DeterministicPartitionResult:
    """Result of the deterministic partitioning algorithm.

    Attributes:
        forest: the spanning forest (each tree a subtree of the MST).
        metrics: time/message accounting of the whole run.
        phases: per-phase records.
        busy_rounds: total rounds of actual activity (≤ ``metrics.rounds``,
            which includes the synchronization padding).
        target_size: the size threshold the algorithm was run to (√n by
            default; the tightened-balance variant of Section 5.1 uses
            ``√(n / (log n log* n))``).
    """

    forest: SpanningForest
    metrics: MetricsSnapshot
    phases: List[PhaseRecord]
    busy_rounds: int
    target_size: int

    @property
    def num_fragments(self) -> int:
        """Return the number of trees in the forest."""
        return self.forest.num_fragments()


class DeterministicPartitioner:
    """Runs the Section 3 algorithm on a weighted multimedia network."""

    def __init__(
        self,
        graph: WeightedGraph,
        target_size: Optional[int] = None,
        synchronized_phases: bool = True,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        """Create a partitioner.

        Args:
            graph: connected point-to-point topology with distinct link
                weights (use :func:`repro.topology.weights.assign_distinct_weights`).
            target_size: stop once every fragment has at least this many
                nodes; defaults to ``⌈√n⌉``.  Section 5.1's tightened variant
                passes ``⌈√(n / (log n · log* n))⌉``.
            synchronized_phases: pad every phase to the precomputed length
                ``5 · 2^i · log* n`` exactly as the paper does; when disabled
                only the busy rounds are charged.
            metrics: externally owned recorder to charge (the MST algorithm
                passes its own so all stages share one accountant).

        Raises:
            ValueError: if the graph is empty or disconnected.
        """
        if graph.num_nodes() == 0:
            raise ValueError("cannot partition an empty network")
        if not is_connected(graph):
            raise ValueError("the point-to-point topology must be connected")
        self._graph = graph
        self._n = graph.num_nodes()
        self._target = target_size if target_size is not None else max(
            1, math.isqrt(self._n - 1) + 1 if self._n > 1 else 1
        )
        if self._target < 1:
            raise ValueError("target_size must be at least 1")
        self._synchronized = synchronized_phases
        self._metrics = metrics if metrics is not None else MetricsRecorder()

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self) -> DeterministicPartitionResult:
        """Execute the algorithm and return the resulting forest."""
        n = self._n
        log_star_n = max(1, log_star(max(2, n)))
        # enumerate the nodes once; all hot state below is indexed by this
        # enumeration (graph iteration order), not keyed by node objects
        nodes: List[NodeId] = list(self._graph.nodes())
        index_of: Dict[NodeId, int] = {node: i for i, node in enumerate(nodes)}
        # when the nodes are their own 0..n-1 enumeration, index space *is*
        # node space and the per-phase translation dictionaries are skipped
        identity = is_identity_enumeration(nodes)
        # Phase 0 state: every node is a depth-0 singleton fragment whose
        # core is itself (-1 encodes "no parent")
        parent_idx: List[int] = [-1] * n
        core_arr: List[int] = list(range(n))
        depths: List[int] = [0] * n
        # Each node scans its incident links in (weight, repr) order across
        # all phases (the GHS discipline), so sort them once up front and
        # remember, per node, how far the scan has permanently advanced:
        # every link before the pointer has been rejected forever.  A
        # rejection marks BOTH endpoints' scan entries dead via the
        # precomputed reverse positions, so the scan never hashes edge keys.
        link_nbr: List[List[int]] = [[] for _ in range(n)]
        link_w: List[List[float]] = [[] for _ in range(n)]
        link_back: List[List[int]] = [[] for _ in range(n)]
        edge_u, edge_v, edge_w = self._graph.csr().canonical_edges()
        if len(set(edge_w)) == len(edge_w):
            # distinct weights (the standard assumption): one stable argsort
            # of the CSR weight column populates every node's scan list in
            # (weight, repr) order — the same order sorted_incident_links
            # produces — and both reverse positions are known at append
            # time.  CSR slots are exactly this enumeration's indices, so
            # the scan build never hashes a node or edge key at all.
            for j in sorted(range(len(edge_w)), key=edge_w.__getitem__):
                u = edge_u[j]
                v = edge_v[j]
                w = edge_w[j]
                link_back[u].append(len(link_nbr[v]))
                link_back[v].append(len(link_nbr[u]))
                link_nbr[u].append(v)
                link_nbr[v].append(u)
                link_w[u].append(w)
                link_w[v].append(w)
        else:
            # repeated weights: fall back to the per-node (weight, repr)
            # sort, then derive the reverse positions
            for node, entries in sorted_incident_links(self._graph).items():
                i = index_of[node]
                link_nbr[i] = [index_of[neighbor] for _, neighbor, _ in entries]
                link_w[i] = [weight for weight, _, _ in entries]
            positions: List[Dict[int, int]] = [
                {neighbor: pos for pos, neighbor in enumerate(neighbors)}
                for neighbors in link_nbr
            ]
            link_back = [
                [positions[neighbor][i] for neighbor in neighbors]
                for i, neighbors in enumerate(link_nbr)
            ]
        link_dead: List[bytearray] = [
            bytearray(len(neighbors)) for neighbors in link_nbr
        ]
        link_pos: List[int] = [0] * n

        # fragment bookkeeping, maintained incrementally across phases (only
        # the fragments a merge touches are updated); first_pos records the
        # smallest member index, which is exactly the order fragments appear
        # in a full scan over the nodes — the historical active-set order
        members: Dict[int, List[int]] = {i: [i] for i in range(n)}
        sizes: Dict[int, int] = dict.fromkeys(range(n), 1)
        radii: Dict[int, int] = dict.fromkeys(range(n), 0)
        first_pos: Dict[int, int] = {i: i for i in range(n)}

        phase_records: List[PhaseRecord] = []
        busy_total = 0
        max_phases = max(1, math.ceil(math.log2(max(2, self._target))) + 1)

        self._metrics.set_phase("partition")
        for phase in range(max_phases):
            if len(members) <= 1 or min(sizes.values()) >= self._target:
                break
            active = [
                core for core in members
                if sizes[core].bit_length() - 1 == phase
            ]
            active.sort(key=first_pos.__getitem__)
            fragments_before = len(members)
            phase_messages_start = self._metrics.point_to_point_messages
            busy = 0

            # ---------------- Step 1: count fragment sizes ----------------
            # broadcast-and-respond on every fragment
            busy += 2 * max(radii.values(), default=0)
            self._metrics.record_messages(2 * (n - len(members)))

            if active:
                # ------------- Step 2: minimum outgoing links -------------
                chosen, step2_busy = self._find_min_outgoing_links(
                    active, members, sizes, radii, core_arr, nodes,
                    link_nbr, link_w, link_back, link_dead, link_pos,
                )
                busy += step2_busy

                # ------------- Steps 3-5: colour F and find the MIS -------
                # F is small (one vertex per active fragment plus targets)
                # and its colouring/cut is order-sensitive, so it is built
                # over the original node objects exactly as before
                # resolve every chosen link's far-side core while the link
                # endpoints are still indices (no hashing per lookup)
                if identity:
                    chosen_links = chosen
                    target_cores = {
                        core: core_arr[v] for core, (_, _, v) in chosen.items()
                    }
                else:
                    chosen_links = {
                        nodes[core]: (weight, nodes[u], nodes[v])
                        for core, (weight, u, v) in chosen.items()
                    }
                    target_cores = {
                        nodes[core]: nodes[core_arr[v]]
                        for core, (_, _, v) in chosen.items()
                    }
                f_parents, f_edges = self._build_fragment_forest(
                    chosen_links, target_cores
                )
                coloring = three_color_rooted_forest(
                    f_parents, identifiers=_core_identifiers(f_parents)
                )
                mis = mis_from_three_coloring(f_parents, coloring.colors)
                coloring_rounds = coloring.communication_rounds + mis.communication_rounds
                # each colouring round is a core-to-core exchange routed over
                # the fragment branches: O(max radius) time, and at most one
                # relay message per node of every fragment involved in F
                f_vertex_idx = (
                    list(f_parents) if identity
                    else [index_of[core] for core in f_parents]
                )
                involved_nodes = sum(sizes[i] for i in f_vertex_idx)
                max_involved_radius = max(
                    (radii[i] for i in f_vertex_idx), default=0
                )
                busy += coloring_rounds * (2 * max_involved_radius + 1)
                self._metrics.record_messages(coloring_rounds * involved_nodes)

                # ------------- Step 6: cut F at the MIS and merge ----------
                merge_busy = self._merge_groups(
                    f_parents,
                    f_edges,
                    mis.independent_set,
                    index_of,
                    parent_idx,
                    core_arr,
                    members,
                    sizes,
                    radii,
                    first_pos,
                    depths,
                )
                busy += merge_busy
            else:
                coloring_rounds = 0

            # ---------------- phase synchronization ----------------------
            charged = busy
            if self._synchronized:
                charged = max(busy, 5 * (2 ** phase) * log_star_n)
            self._metrics.record_round(charged)
            busy_total += busy

            phase_records.append(
                PhaseRecord(
                    phase=phase,
                    active_fragments=len(active),
                    fragments_before=fragments_before,
                    fragments_after=len(members),
                    busy_rounds=busy,
                    charged_rounds=charged,
                    messages=self._metrics.point_to_point_messages - phase_messages_start,
                    coloring_rounds=coloring_rounds,
                )
            )

        self._metrics.set_phase(None)
        # translate the index-space state back to node-keyed maps in graph
        # iteration order (the order the historical dict-based state kept)
        parents: Dict[NodeId, Optional[NodeId]] = {}
        core_of: Dict[NodeId, NodeId] = {}
        for i, node in enumerate(nodes):
            parent = parent_idx[i]
            parents[node] = nodes[parent] if parent >= 0 else None
            core_of[node] = nodes[core_arr[i]]
        forest = _forest_from_state(parents, core_of)
        return DeterministicPartitionResult(
            forest=forest,
            metrics=self._metrics.snapshot(),
            phases=phase_records,
            busy_rounds=busy_total,
            target_size=self._target,
        )

    # ------------------------------------------------------------------
    # Step 2: minimum-weight outgoing link of every active fragment
    # ------------------------------------------------------------------
    def _find_min_outgoing_links(
        self,
        active: List[int],
        members: Dict[int, List[int]],
        sizes: Dict[int, int],
        radii: Dict[int, int],
        core_arr: List[int],
        nodes: List[NodeId],
        link_nbr: List[List[int]],
        link_w: List[List[float]],
        link_back: List[List[int]],
        link_dead: List[bytearray],
        link_pos: List[int],
    ) -> Tuple[Dict[int, Tuple[float, int, int]], int]:
        """Return each active core's chosen link and the rounds the step takes.

        The chosen link is ``(weight, u, v)`` with ``u`` inside the fragment
        and ``v`` outside (all three in index space).  Per the GHS
        discipline, every node scans its incident links in increasing weight
        order, testing each link not yet rejected; internal links are
        rejected permanently (2 messages each, charged once over the whole
        execution), and the first outgoing link found is the node's candidate
        (2 messages, re-tested in later phases).  The scan state persists
        across phases: ``link_pos`` only moves past permanently rejected
        links, and a rejection flips the dead flag on *both* endpoints' scan
        lists (via ``link_back``), so the partner skips the link without
        re-testing it and no edge key is ever hashed in the loop.
        """
        busy = 0
        max_active_radius = max((radii[c] for c in active), default=0)
        # substep 1: "you are active" broadcast
        busy += max_active_radius
        self._metrics.record_messages(sum(sizes[c] - 1 for c in active))

        chosen: Dict[int, Tuple[float, int, int]] = {}
        max_tests = 0
        total_tests = 0
        for core in active:
            best_w: Optional[float] = None
            best_u = best_v = -1
            for node in members[core]:
                tests = 0
                neighbors = link_nbr[node]
                weights = link_w[node]
                dead = link_dead[node]
                back = link_back[node]
                limit = len(neighbors)
                index = link_pos[node]
                while index < limit:
                    if dead[index]:
                        index += 1
                        continue
                    tests += 1  # test + accept/reject: 2 messages
                    neighbor = neighbors[index]
                    if core_arr[neighbor] == core:
                        dead[index] = 1
                        link_dead[neighbor][back[index]] = 1
                        index += 1
                        continue
                    weight = weights[index]
                    # distinct weights decide almost always; the node-object
                    # tie-break preserves the historical (weight, u, v)
                    # tuple comparison on graphs with repeated weights
                    if (
                        best_w is None
                        or weight < best_w
                        or (
                            weight == best_w
                            and (nodes[node], nodes[neighbor])
                            < (nodes[best_u], nodes[best_v])
                        )
                    ):
                        best_w, best_u, best_v = weight, node, neighbor
                    break
                link_pos[node] = index
                total_tests += tests
                if tests > max_tests:
                    max_tests = tests
            if best_w is not None:
                chosen[core] = (best_w, best_u, best_v)
        self._metrics.record_messages(2 * total_tests)
        # substep 2 time: sequential testing, nodes in parallel
        busy += 2 * max_tests
        # substep 3: convergecast of the minimum to the core
        busy += max_active_radius
        self._metrics.record_messages(sum(sizes[c] - 1 for c in active))
        return chosen, busy

    # ------------------------------------------------------------------
    # fragment forest F construction (Section 3, after Step 2)
    # ------------------------------------------------------------------
    def _build_fragment_forest(
        self,
        chosen_links: Dict[NodeId, Tuple[float, NodeId, NodeId]],
        target_cores: Dict[NodeId, NodeId],
    ) -> Tuple[Dict[NodeId, Optional[NodeId]], Dict[NodeId, Tuple[NodeId, NodeId]]]:
        """Return the rooted fragment forest F and each F-edge's physical link.

        Vertices of F are fragment cores (node objects; ``target_cores``
        maps each choosing core to the core on the far side of its chosen
        link).  Every active fragment has one outgoing F-edge (to the
        fragment on the other side of its chosen link); the single cycle
        that can arise when two fragments choose the same link is broken at
        the higher-core-id fragment, exactly as in the paper.
        """
        out_edge: Dict[NodeId, NodeId] = {}
        physical: Dict[NodeId, Tuple[NodeId, NodeId]] = {}
        vertices: Set[NodeId] = set()
        for core, (_, u, v) in chosen_links.items():
            target = target_cores[core]
            out_edge[core] = target
            physical[core] = (u, v)
            vertices.add(core)
            vertices.add(target)

        # break 2-cycles (both fragments chose the same connecting link);
        # the dropped side (max by repr) is the same whichever endpoint is
        # visited first, so a snapshot of the keys is order-enough
        for core in list(out_edge):
            target = out_edge.get(core)
            if target is None:
                continue
            if out_edge.get(target) == core:
                drop = max(core, target, key=repr)
                if drop in out_edge:
                    del out_edge[drop]
                    del physical[drop]

        f_parents: Dict[NodeId, Optional[NodeId]] = {
            vertex: out_edge.get(vertex) for vertex in vertices
        }
        return f_parents, physical

    # ------------------------------------------------------------------
    # Step 6: merge the fragments of every subtree of the cut forest
    # ------------------------------------------------------------------
    def _merge_groups(
        self,
        f_parents: Dict[NodeId, Optional[NodeId]],
        f_edges: Dict[NodeId, Tuple[NodeId, NodeId]],
        independent_set: Set[NodeId],
        index_of: Dict[NodeId, int],
        parent_idx: List[int],
        core_arr: List[int],
        members: Dict[int, List[int]],
        sizes: Dict[int, int],
        radii: Dict[int, int],
        first_pos: Dict[int, int],
        depths: List[int],
    ) -> int:
        """Cut F at red internal vertices and merge each resulting subtree.

        Returns the step's busy rounds.  The index-space fragment
        bookkeeping (``members``/``sizes``/``radii``/``first_pos``) and the
        per-node ``depths`` are updated in place for exactly the fragments a
        merge touches; untouched fragments keep their existing entries, so
        the per-phase maintenance is proportional to the work the merge
        actually did.
        """
        f_children = children_map(f_parents)
        cut_parents = dict(f_parents)
        for vertex in f_parents:
            is_leaf = not f_children[vertex]
            if vertex in independent_set and not is_leaf and cut_parents[vertex] is not None:
                cut_parents[vertex] = None

        # group the fragments by the root of their subtree in the cut forest
        group_of: Dict[NodeId, NodeId] = {}

        def find_group(vertex: NodeId) -> NodeId:
            """Return ``vertex``'s cut-forest root, path-caching the chain."""
            chain = []
            current = vertex
            while current not in group_of:
                parent = cut_parents[current]
                if parent is None:
                    group_of[current] = current
                    break
                chain.append(current)
                current = parent
            root = group_of[current]
            for member in chain:
                group_of[member] = root
            return root

        groups: Dict[NodeId, List[NodeId]] = {}
        for vertex in f_parents:
            groups.setdefault(find_group(vertex), []).append(vertex)

        busy = 0
        for group_root, group_vertices in groups.items():
            if len(group_vertices) == 1:
                continue
            root_idx = index_of[group_root]
            # splice every non-root fragment of the group onto its F-parent
            # via the selected physical link, re-rooting it at the link's
            # inside endpoint (this is the distributed "merge broadcast")
            reroot_radius = 0
            spliced_nodes = 0
            for vertex in group_vertices:
                if vertex == group_root:
                    continue
                u, v = f_edges[vertex]
                u_idx = index_of[u]
                _reroot_indexed(parent_idx, u_idx)
                parent_idx[u_idx] = index_of[v]
                vertex_idx = index_of[vertex]
                vertex_radius = radii[vertex_idx]
                if vertex_radius > reroot_radius:
                    reroot_radius = vertex_radius
                spliced_nodes += sizes[vertex_idx]
            # one broadcast over every spliced fragment performs the
            # re-rooting and the new-core announcement
            self._metrics.record_messages(2 * spliced_nodes)
            new_members: List[int] = []
            new_first = first_pos[root_idx]
            for vertex in group_vertices:
                vertex_idx = index_of[vertex]
                new_members.extend(members[vertex_idx])
                vertex_first = first_pos[vertex_idx]
                if vertex_first < new_first:
                    new_first = vertex_first
                if vertex_idx != root_idx:
                    del members[vertex_idx]
                    del sizes[vertex_idx]
                    del radii[vertex_idx]
                    del first_pos[vertex_idx]
            for node in new_members:
                core_arr[node] = root_idx
            # the new-core announcement travels to the whole merged fragment
            self._metrics.record_messages(len(new_members))
            # re-walk just the merged tree to refresh depths and obtain its
            # new radius (the depth assignment is order-independent): mark
            # every member unknown, then chase each unknown node's parent
            # chain to the nearest known depth and back-fill — each node is
            # walked once, with no children index to build
            for node in new_members:
                depths[node] = -1
            depths[root_idx] = 0
            new_radius = 0
            for node in new_members:
                if depths[node] >= 0:
                    continue
                chain: List[int] = []
                current = node
                while depths[current] < 0:
                    chain.append(current)
                    current = parent_idx[current]
                depth = depths[current]
                for link in reversed(chain):
                    depth += 1
                    depths[link] = depth
                if depth > new_radius:
                    new_radius = depth
            # keep the member list in ascending index order — the order the
            # historical per-phase rebuild produced.  It is load-bearing:
            # a link rejection marks BOTH endpoints' scan entries dead, so
            # whichever member scans first pays the test, and the per-node
            # test counts feed the busy-rounds accounting
            new_members.sort()
            members[root_idx] = new_members
            sizes[root_idx] = len(new_members)
            radii[root_idx] = new_radius
            first_pos[root_idx] = new_first
            group_busy = 2 * reroot_radius + new_radius + 1
            if group_busy > busy:
                busy = group_busy
        return busy


# ----------------------------------------------------------------------
# module-level helpers
# ----------------------------------------------------------------------
def _reroot_indexed(parent_idx: List[int], new_root: int) -> None:
    """Re-root a tree at ``new_root`` in the flat parent-index array.

    The index-space twin of :func:`repro.protocols.spanning.tree_utils.reroot`:
    only the parent pointers along the path from ``new_root`` to the old
    root are reversed (``-1`` encodes "no parent").
    """
    path = [new_root]
    current = parent_idx[new_root]
    while current >= 0:
        path.append(current)
        current = parent_idx[current]
    for index in range(len(path) - 1, 0, -1):
        parent_idx[path[index]] = path[index - 1]
    parent_idx[new_root] = -1


def _members_by_core(core_of: Dict[NodeId, NodeId]) -> Dict[NodeId, List[NodeId]]:
    members: Dict[NodeId, List[NodeId]] = {}
    for node, core in core_of.items():
        try:
            members[core].append(node)
        except KeyError:
            members[core] = [node]
    return members


def _core_identifiers(f_parents: Dict[NodeId, Optional[NodeId]]) -> Dict[NodeId, int]:
    """Assign distinct integer identifiers to the vertices of F.

    Fragment cores are network nodes; when they are integers they are used
    directly (they are distinct), otherwise a deterministic enumeration by
    ``repr`` order is used.
    """
    if all(isinstance(core, int) for core in f_parents):
        return {core: int(core) for core in f_parents}
    ordered = sorted(f_parents, key=repr)
    return {core: index for index, core in enumerate(ordered)}


def _forest_from_state(
    parents: Dict[NodeId, Optional[NodeId]],
    core_of: Dict[NodeId, NodeId],
) -> SpanningForest:
    members = _members_by_core(core_of)
    fragments = []
    for core, nodes in members.items():
        fragment_parents = {node: parents[node] for node in nodes}
        fragments.append(Fragment(core=core, parents=fragment_parents))
    return SpanningForest(fragments)
