"""The deterministic partitioning algorithm (Section 3).

The algorithm builds a spanning forest whose trees are subtrees of the MST,
have size ≥ √n and radius ≤ 8√n, in O(√n log* n) time and
O(m + n log n log* n) messages.  It proceeds in synchronized phases; in phase
``i`` every fragment has size ≥ 2^i, and the *active* fragments (those of
level exactly ``i``) each merge with at least one neighbour, so after
``⌈log₂ √n⌉`` phases every fragment has at least √n nodes.  The radius is
kept in check by 3-colouring the fragment graph F (Goldberg–Plotkin–Shannon),
extracting an MIS that contains every root of F (Steps 4–5), and cutting the
trees of F at the MIS vertices so each group of merging fragments has
constant diameter in F (Step 6).

Execution style
---------------
The phases are executed as an *orchestrated simulation*: the per-node state
(parent pointer, core identity, list of not-yet-rejected incident links) is
explicit, every step is realised through the distributed tree primitives
(broadcast, convergecast, GHS-style link testing, core-to-core routing over
fragment branches), and the time and message cost of every step is charged
from the actual tree radii and sizes involved — i.e. the costs are the costs
of the message-passing execution, not wall-clock proxies.  The paper's phase
synchronisation ("each phase takes exactly 5·2^i·log* n rounds", Section 3)
is reproduced by padding each phase to its precomputed length; the result
records both the padded (model) time and the busy time actually used.

Fidelity note: for the per-node minimum-outgoing-link search (Step 2,
substep 2) the nodes test incident links sequentially in weight order, as in
Gallager–Humblet–Spira; a link found internal is rejected forever.  On dense
graphs a node may have to test many links in one phase, so the *measured*
busy time of a phase can exceed the 5·2^i·log* n budget even though the
total message count stays within O(m + n log n log* n); the experiments
report both numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.partition.forest import Fragment, SpanningForest
from repro.protocols.spanning.tree_utils import (
    children_map,
    reroot,
)
from repro.protocols.symmetry.cole_vishkin import log_star
from repro.protocols.symmetry.mis import mis_from_three_coloring
from repro.protocols.symmetry.three_coloring import three_color_rooted_forest
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import WeightedGraph, sorted_incident_links
from repro.topology.properties import is_connected

NodeId = Hashable


@dataclass
class PhaseRecord:
    """Per-phase statistics recorded by the deterministic partitioner.

    Attributes:
        phase: the phase index ``i``.
        active_fragments: number of fragments of level exactly ``i``.
        fragments_before / fragments_after: fragment counts around the phase.
        busy_rounds: rounds of actual activity in the phase.
        charged_rounds: rounds charged after padding to the synchronized
            phase length ``5 · 2^i · log* n`` (equal to ``busy_rounds`` when
            synchronization padding is disabled).
        messages: point-to-point messages sent during the phase.
        coloring_rounds: parent→child communication rounds used by the
            3-colouring + MIS computation on the fragment graph F.
    """

    phase: int
    active_fragments: int
    fragments_before: int
    fragments_after: int
    busy_rounds: int
    charged_rounds: int
    messages: int
    coloring_rounds: int


@dataclass
class DeterministicPartitionResult:
    """Result of the deterministic partitioning algorithm.

    Attributes:
        forest: the spanning forest (each tree a subtree of the MST).
        metrics: time/message accounting of the whole run.
        phases: per-phase records.
        busy_rounds: total rounds of actual activity (≤ ``metrics.rounds``,
            which includes the synchronization padding).
        target_size: the size threshold the algorithm was run to (√n by
            default; the tightened-balance variant of Section 5.1 uses
            ``√(n / (log n log* n))``).
    """

    forest: SpanningForest
    metrics: MetricsSnapshot
    phases: List[PhaseRecord]
    busy_rounds: int
    target_size: int

    @property
    def num_fragments(self) -> int:
        """Return the number of trees in the forest."""
        return self.forest.num_fragments()


class DeterministicPartitioner:
    """Runs the Section 3 algorithm on a weighted multimedia network."""

    def __init__(
        self,
        graph: WeightedGraph,
        target_size: Optional[int] = None,
        synchronized_phases: bool = True,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        """Create a partitioner.

        Args:
            graph: connected point-to-point topology with distinct link
                weights (use :func:`repro.topology.weights.assign_distinct_weights`).
            target_size: stop once every fragment has at least this many
                nodes; defaults to ``⌈√n⌉``.  Section 5.1's tightened variant
                passes ``⌈√(n / (log n · log* n))⌉``.
            synchronized_phases: pad every phase to the precomputed length
                ``5 · 2^i · log* n`` exactly as the paper does; when disabled
                only the busy rounds are charged.
            metrics: externally owned recorder to charge (the MST algorithm
                passes its own so all stages share one accountant).

        Raises:
            ValueError: if the graph is empty or disconnected.
        """
        if graph.num_nodes() == 0:
            raise ValueError("cannot partition an empty network")
        if not is_connected(graph):
            raise ValueError("the point-to-point topology must be connected")
        self._graph = graph
        self._n = graph.num_nodes()
        self._target = target_size if target_size is not None else max(
            1, math.isqrt(self._n - 1) + 1 if self._n > 1 else 1
        )
        if self._target < 1:
            raise ValueError("target_size must be at least 1")
        self._synchronized = synchronized_phases
        self._metrics = metrics if metrics is not None else MetricsRecorder()

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self) -> DeterministicPartitionResult:
        """Execute the algorithm and return the resulting forest."""
        n = self._n
        log_star_n = max(1, log_star(max(2, n)))
        # Phase 0 state: every node is a singleton fragment whose core is itself.
        parents: Dict[NodeId, Optional[NodeId]] = {v: None for v in self._graph.nodes()}
        core_of: Dict[NodeId, NodeId] = {v: v for v in self._graph.nodes()}
        rejected: Set[Tuple[NodeId, NodeId]] = set()
        # Each node scans its incident links in (weight, repr) order across
        # all phases (the GHS discipline), so sort them once up front and
        # remember, per node, how far the scan has permanently advanced:
        # every link before the pointer has been rejected forever.
        sorted_links = sorted_incident_links(self._graph)
        link_pos: Dict[NodeId, int] = {node: 0 for node in sorted_links}

        phase_records: List[PhaseRecord] = []
        busy_total = 0
        max_phases = max(1, math.ceil(math.log2(max(2, self._target))) + 1)

        self._metrics.set_phase("partition")
        # node depths are maintained incrementally: every node starts as a
        # depth-0 singleton, and each merge re-walks only the trees it
        # touched, so settled fragments are never re-derived
        depths: Dict[NodeId, int] = {v: 0 for v in self._graph.nodes()}
        for phase in range(max_phases):
            members = _members_by_core(core_of)
            # one pass over the fragments yields the sizes, the smallest
            # size (the stop condition) and the active set (level == phase)
            sizes: Dict[NodeId, int] = {}
            min_size = n
            active: List[NodeId] = []
            for core, nodes in members.items():
                size = len(nodes)
                sizes[core] = size
                if size < min_size:
                    min_size = size
                if size.bit_length() - 1 == phase:
                    active.append(core)
            if len(members) <= 1 or min_size >= self._target:
                break
            fragments_before = len(members)
            radii = {core: 0 for core in members}
            for v, depth in depths.items():
                core = core_of[v]
                if depth > radii[core]:
                    radii[core] = depth
            phase_messages_start = self._metrics.point_to_point_messages
            busy = 0

            # ---------------- Step 1: count fragment sizes ----------------
            # broadcast-and-respond on every fragment
            busy += 2 * max(radii.values(), default=0)
            self._metrics.record_messages(2 * (n - len(members)))

            if active:
                # ------------- Step 2: minimum outgoing links -------------
                chosen_links, step2_busy = self._find_min_outgoing_links(
                    active, members, radii, core_of, rejected, sorted_links, link_pos
                )
                busy += step2_busy

                # ------------- Steps 3-5: colour F and find the MIS -------
                f_parents, f_edges = self._build_fragment_forest(chosen_links, core_of)
                coloring = three_color_rooted_forest(
                    f_parents, identifiers=_core_identifiers(f_parents)
                )
                mis = mis_from_three_coloring(f_parents, coloring.colors)
                coloring_rounds = coloring.communication_rounds + mis.communication_rounds
                # each colouring round is a core-to-core exchange routed over
                # the fragment branches: O(max radius) time, and at most one
                # relay message per node of every fragment involved in F
                involved_nodes = sum(sizes[core] for core in f_parents)
                max_involved_radius = max(
                    (radii[core] for core in f_parents), default=0
                )
                busy += coloring_rounds * (2 * max_involved_radius + 1)
                self._metrics.record_messages(coloring_rounds * involved_nodes)

                # ------------- Step 6: cut F at the MIS and merge ----------
                merge_busy = self._merge_groups(
                    f_parents,
                    f_edges,
                    mis.independent_set,
                    parents,
                    core_of,
                    members,
                    radii,
                    depths,
                )
                busy += merge_busy
            else:
                chosen_links = {}
                coloring_rounds = 0

            # ---------------- phase synchronization ----------------------
            charged = busy
            if self._synchronized:
                charged = max(busy, 5 * (2 ** phase) * log_star_n)
            self._metrics.record_round(charged)
            busy_total += busy

            phase_records.append(
                PhaseRecord(
                    phase=phase,
                    active_fragments=len(active),
                    fragments_before=fragments_before,
                    fragments_after=len(set(core_of.values())),
                    busy_rounds=busy,
                    charged_rounds=charged,
                    messages=self._metrics.point_to_point_messages - phase_messages_start,
                    coloring_rounds=coloring_rounds,
                )
            )

        self._metrics.set_phase(None)
        forest = _forest_from_state(parents, core_of)
        return DeterministicPartitionResult(
            forest=forest,
            metrics=self._metrics.snapshot(),
            phases=phase_records,
            busy_rounds=busy_total,
            target_size=self._target,
        )

    # ------------------------------------------------------------------
    # Step 2: minimum-weight outgoing link of every active fragment
    # ------------------------------------------------------------------
    def _find_min_outgoing_links(
        self,
        active: List[NodeId],
        members: Dict[NodeId, List[NodeId]],
        radii: Dict[NodeId, int],
        core_of: Dict[NodeId, NodeId],
        rejected: Set[Tuple[NodeId, NodeId]],
        sorted_links: Dict[NodeId, List[Tuple[float, NodeId, Tuple[NodeId, NodeId]]]],
        link_pos: Dict[NodeId, int],
    ) -> Tuple[Dict[NodeId, Tuple[float, NodeId, NodeId]], int]:
        """Return each active core's chosen link and the rounds the step takes.

        The chosen link is ``(weight, u, v)`` with ``u`` inside the fragment
        and ``v`` outside.  Per the GHS discipline, every node scans its
        incident links in increasing weight order, testing each link not yet
        rejected; internal links are rejected permanently (2 messages each,
        charged once over the whole execution), and the first outgoing link
        found is the node's candidate (2 messages, re-tested in later
        phases).  ``sorted_links``/``link_pos`` carry the scan state across
        phases: the pointer only moves past permanently rejected links, so a
        node never re-examines them.
        """
        busy = 0
        max_active_radius = max((radii[c] for c in active), default=0)
        # substep 1: "you are active" broadcast
        busy += max_active_radius
        self._metrics.record_messages(sum(len(members[c]) - 1 for c in active))

        chosen: Dict[NodeId, Tuple[float, NodeId, NodeId]] = {}
        max_tests = 0
        total_tests = 0
        for core in active:
            best: Optional[Tuple[float, NodeId, NodeId]] = None
            for node in members[core]:
                tests = 0
                links = sorted_links[node]
                index = link_pos[node]
                while index < len(links):
                    weight, neighbor, key = links[index]
                    if key in rejected:
                        index += 1
                        continue
                    tests += 1  # test + accept/reject: 2 messages
                    if core_of[neighbor] == core:
                        rejected.add(key)
                        index += 1
                        continue
                    candidate = (weight, node, neighbor)
                    if best is None or candidate < best:
                        best = candidate
                    break
                link_pos[node] = index
                total_tests += tests
                if tests > max_tests:
                    max_tests = tests
            if best is not None:
                chosen[core] = best
        self._metrics.record_messages(2 * total_tests)
        # substep 2 time: sequential testing, nodes in parallel
        busy += 2 * max_tests
        # substep 3: convergecast of the minimum to the core
        busy += max_active_radius
        self._metrics.record_messages(sum(len(members[c]) - 1 for c in active))
        return chosen, busy

    # ------------------------------------------------------------------
    # fragment forest F construction (Section 3, after Step 2)
    # ------------------------------------------------------------------
    def _build_fragment_forest(
        self,
        chosen_links: Dict[NodeId, Tuple[float, NodeId, NodeId]],
        core_of: Dict[NodeId, NodeId],
    ) -> Tuple[Dict[NodeId, Optional[NodeId]], Dict[NodeId, Tuple[NodeId, NodeId]]]:
        """Return the rooted fragment forest F and each F-edge's physical link.

        Vertices of F are fragment cores.  Every active fragment has one
        outgoing F-edge (to the fragment on the other side of its chosen
        link); the single cycle that can arise when two fragments choose the
        same link is broken at the higher-core-id fragment, exactly as in the
        paper.
        """
        out_edge: Dict[NodeId, NodeId] = {}
        physical: Dict[NodeId, Tuple[NodeId, NodeId]] = {}
        vertices: Set[NodeId] = set()
        for core, (_, u, v) in chosen_links.items():
            target = core_of[v]
            out_edge[core] = target
            physical[core] = (u, v)
            vertices.add(core)
            vertices.add(target)

        # break 2-cycles (both fragments chose the same connecting link);
        # the dropped side (max by repr) is the same whichever endpoint is
        # visited first, so a snapshot of the keys is order-enough
        for core in list(out_edge):
            target = out_edge.get(core)
            if target is None:
                continue
            if out_edge.get(target) == core:
                drop = max(core, target, key=repr)
                if drop in out_edge:
                    del out_edge[drop]
                    del physical[drop]

        f_parents: Dict[NodeId, Optional[NodeId]] = {
            vertex: out_edge.get(vertex) for vertex in vertices
        }
        return f_parents, physical

    # ------------------------------------------------------------------
    # Step 6: merge the fragments of every subtree of the cut forest
    # ------------------------------------------------------------------
    def _merge_groups(
        self,
        f_parents: Dict[NodeId, Optional[NodeId]],
        f_edges: Dict[NodeId, Tuple[NodeId, NodeId]],
        independent_set: Set[NodeId],
        parents: Dict[NodeId, Optional[NodeId]],
        core_of: Dict[NodeId, NodeId],
        members: Dict[NodeId, List[NodeId]],
        radii: Dict[NodeId, int],
        depths: Dict[NodeId, int],
    ) -> int:
        """Cut F at red internal vertices and merge each resulting subtree.

        Returns the step's busy rounds.  ``depths`` is updated in place for
        every node of a merged tree; nodes of untouched fragments keep their
        existing depths, so the per-phase depth maintenance is proportional
        to the work the merge actually did.
        """
        f_children = children_map(f_parents)
        cut_parents = dict(f_parents)
        for vertex in f_parents:
            is_leaf = not f_children[vertex]
            if vertex in independent_set and not is_leaf and cut_parents[vertex] is not None:
                cut_parents[vertex] = None

        # group the fragments by the root of their subtree in the cut forest
        group_of: Dict[NodeId, NodeId] = {}

        def find_group(vertex: NodeId) -> NodeId:
            chain = []
            current = vertex
            while current not in group_of:
                parent = cut_parents[current]
                if parent is None:
                    group_of[current] = current
                    break
                chain.append(current)
                current = parent
            root = group_of[current]
            for member in chain:
                group_of[member] = root
            return root

        groups: Dict[NodeId, List[NodeId]] = {}
        for vertex in f_parents:
            groups.setdefault(find_group(vertex), []).append(vertex)

        busy = 0
        for group_root, group_vertices in groups.items():
            if len(group_vertices) == 1:
                continue
            # splice every non-root fragment of the group onto its F-parent
            # via the selected physical link, re-rooting it at the link's
            # inside endpoint (this is the distributed "merge broadcast")
            reroot_radius = 0
            spliced_nodes = 0
            for vertex in group_vertices:
                if vertex == group_root:
                    continue
                u, v = f_edges[vertex]
                reroot(parents, members[vertex], u)
                parents[u] = v
                vertex_radius = radii[vertex]
                if vertex_radius > reroot_radius:
                    reroot_radius = vertex_radius
                spliced_nodes += len(members[vertex])
            # one broadcast over every spliced fragment performs the
            # re-rooting and the new-core announcement
            self._metrics.record_messages(2 * spliced_nodes)
            new_members: List[NodeId] = []
            for vertex in group_vertices:
                new_members.extend(members[vertex])
            for node in new_members:
                core_of[node] = group_root
            # the new-core announcement travels to the whole merged fragment
            self._metrics.record_messages(len(new_members))
            # re-walk just the merged tree to refresh depths and obtain its
            # new radius (the depth assignment is order-independent)
            children: Dict[NodeId, List[NodeId]] = {}
            for node in new_members:
                node_parent = parents[node]
                if node_parent is not None:
                    try:
                        children[node_parent].append(node)
                    except KeyError:
                        children[node_parent] = [node]
            depths[group_root] = 0
            new_radius = 0
            stack = [group_root]
            empty: List[NodeId] = []
            while stack:
                node = stack.pop()
                child_depth = depths[node] + 1
                for child in children.get(node, empty):
                    depths[child] = child_depth
                    if child_depth > new_radius:
                        new_radius = child_depth
                    stack.append(child)
            group_busy = 2 * reroot_radius + new_radius + 1
            if group_busy > busy:
                busy = group_busy
        return busy


# ----------------------------------------------------------------------
# module-level helpers
# ----------------------------------------------------------------------
def _members_by_core(core_of: Dict[NodeId, NodeId]) -> Dict[NodeId, List[NodeId]]:
    members: Dict[NodeId, List[NodeId]] = {}
    for node, core in core_of.items():
        try:
            members[core].append(node)
        except KeyError:
            members[core] = [node]
    return members


def _core_identifiers(f_parents: Dict[NodeId, Optional[NodeId]]) -> Dict[NodeId, int]:
    """Assign distinct integer identifiers to the vertices of F.

    Fragment cores are network nodes; when they are integers they are used
    directly (they are distinct), otherwise a deterministic enumeration by
    ``repr`` order is used.
    """
    if all(isinstance(core, int) for core in f_parents):
        return {core: int(core) for core in f_parents}
    ordered = sorted(f_parents, key=repr)
    return {core: index for index, core in enumerate(ordered)}


def _forest_from_state(
    parents: Dict[NodeId, Optional[NodeId]],
    core_of: Dict[NodeId, NodeId],
) -> SpanningForest:
    members = _members_by_core(core_of)
    fragments = []
    for core, nodes in members.items():
        fragment_parents = {node: parents[node] for node in nodes}
        fragments.append(Fragment(core=core, parents=fragment_parents))
    return SpanningForest(fragments)
