"""The randomized partitioning algorithm (Section 4).

Free nodes repeatedly flip coins with escalating probabilities
``min(1, E_i/√n)`` (``E_1 = 1`` and ``E_{i+1} = e^{E_i}``); the winners become
*local centres* and grow BFS trees of depth at most ``4√n`` synchronously.
Nodes labelled at most ``2√n`` — and all nodes of trees that have no outgoing
link to an unlabelled node — become *unfree*; the rest stay free for the next
iteration.  After at most ``ln* n + 1`` iterations every node belongs to some
BFS tree of radius ≤ 4√n, and the expected number of trees is O(√n)
(Theorem 1).  The running time is O(√n log* n) worst case and the message
complexity O(m + n log* n): a message over a link either attaches the link to
a BFS tree or removes it from the algorithm's view forever.

The algorithm is Monte Carlo (the number of trees exceeds O(√n) only with
small probability); the Las-Vegas wrapper of the paper's Remark verifies the
tree count by attempting to schedule the roots on the channel for ``8√n``
slots with the Metcalfe–Boggs randomized technique and restarts on failure.

Like the deterministic partitioner, the execution is an orchestrated
simulation: iteration structure, coin flips, BFS label relaxations, link
removals and the free/unfree rule follow the paper exactly, and the time and
message charges are those of the synchronous message-passing execution
(iteration lengths are fixed in advance, as the paper requires).

Implementation notes (hot loops, round 2)
-----------------------------------------
The orchestration state is array-indexed: nodes are enumerated once, and
labels, parent pointers, adjacency and the per-link alive flags live in flat
lists indexed by that enumeration, so the BFS relaxation and link-removal
inner loops index lists instead of hashing node objects or edge pairs.  The
deterministic tie-break order (``repr`` of the node) is precomputed once as
an integer rank, and link removal flips an alive flag on *both* endpoints'
adjacency rows via precomputed reverse positions, replacing the
both-orientations removed-link set.  The random stream is consumed in
exactly the historical order (coin flips over the free set in repr order),
so the outputs stay bit-identical to the pre-optimization implementation
(pinned by the v2 goldens).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import random

from repro.core.partition.forest import SpanningForest
from repro.protocols.collision.base import run_contention
from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import WeightedGraph
from repro.topology.properties import is_connected

NodeId = Hashable


def ln_star(n: float) -> int:
    """Return ``ln* n``: iterations of the natural log needed to reach ≤ 1."""
    if n <= 0:
        raise ValueError("ln* is only defined for positive arguments")
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log(value)
        count += 1
    return count


def escalation_sequence(length: int) -> List[float]:
    """Return ``E_1, …, E_length`` with ``E_1 = 1`` and ``E_{i+1} = e^{E_i}``.

    The values grow as an exponential tower, so they are capped at ``1e18``
    (far beyond any √n the simulation reaches) to avoid overflow.
    """
    values: List[float] = []
    current = 1.0
    for _ in range(length):
        values.append(current)
        current = math.exp(min(current, 41.0))
        current = min(current, 1e18)
    return values


@dataclass
class IterationRecord:
    """Statistics for one iteration of the randomized partitioner."""

    iteration: int
    head_probability: float
    new_centers: int
    free_before: int
    free_after: int
    rounds: int
    messages: int


@dataclass
class RandomizedPartitionResult:
    """Result of the randomized partitioning algorithm.

    Attributes:
        forest: the spanning forest of BFS trees (radius ≤ 4√n each).
        metrics: time/message accounting (including verification and
            restarts for the Las-Vegas variant).
        iterations: per-iteration records of the successful run.
        restarts: number of Las-Vegas restarts (always 0 for Monte Carlo).
        verified: whether the Las-Vegas verification accepted the forest.
    """

    forest: SpanningForest
    metrics: MetricsSnapshot
    iterations: List[IterationRecord]
    restarts: int
    verified: bool

    @property
    def num_fragments(self) -> int:
        """Return the number of trees in the forest."""
        return self.forest.num_fragments()


class RandomizedPartitioner:
    """Runs the Section 4 algorithm on a multimedia network."""

    def __init__(
        self,
        graph: WeightedGraph,
        seed: Optional[int] = None,
        las_vegas: bool = False,
        max_restarts: int = 8,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        """Create a partitioner.

        Args:
            graph: connected point-to-point topology.
            seed: seed for the coin flips (and the verification scheduling).
            las_vegas: run the Las-Vegas variant (verify the number of roots
                on the channel and restart on failure).
            max_restarts: safety bound on Las-Vegas restarts.
            metrics: externally owned complexity recorder.

        Raises:
            ValueError: if the graph is empty or disconnected.
        """
        if graph.num_nodes() == 0:
            raise ValueError("cannot partition an empty network")
        if not is_connected(graph):
            raise ValueError("the point-to-point topology must be connected")
        self._graph = graph
        self._n = graph.num_nodes()
        self._rng = random.Random(seed)
        self._las_vegas = las_vegas
        self._max_restarts = max_restarts
        self._metrics = metrics if metrics is not None else MetricsRecorder()

    # ------------------------------------------------------------------
    def run(self) -> RandomizedPartitionResult:
        """Execute the algorithm (with verification when Las Vegas is enabled)."""
        # the node enumeration, tie-break ranks and adjacency structure are
        # invariant across Las-Vegas restarts: build them once and hand each
        # attempt a fresh copy of only the mutable per-run state
        nodes: List[NodeId] = list(self._graph.nodes())
        n = self._n
        reprs = [repr(node) for node in nodes]
        rank: List[int] = [0] * n
        unrank: List[int] = [0] * n
        for position, i in enumerate(sorted(range(n), key=reprs.__getitem__)):
            rank[i] = position
            unrank[position] = i
        # adjacency rows, their reverse positions and the live-link worklist
        # come from ONE pass over the edge list (both positions are known at
        # append time, so no per-node position dictionaries are ever built).
        # Row order is edge-list order, not iter_neighbors order — nothing
        # the algorithm computes depends on row order: per-neighbour BFS
        # winners are minima, and the message/outgoing-link checks are
        # order-free aggregates over each row.
        adj: List[List[int]] = [[] for _ in range(n)]
        adj_back: List[List[int]] = [[] for _ in range(n)]
        live_template: List[Tuple[int, int, int]] = []
        # the CSR snapshot's canonical edge columns are already in this
        # enumeration's index space — identity and arbitrary labels alike —
        # so the build hashes no node identifiers at all
        edge_u, edge_v, _ = self._graph.csr().canonical_edges()
        for u, v in zip(edge_u, edge_v):
            position_u = len(adj[u])
            live_template.append((u, v, position_u))
            adj_back[u].append(len(adj[v]))
            adj_back[v].append(position_u)
            adj[u].append(v)
            adj[v].append(u)
        workspace = (nodes, rank, unrank, adj, adj_back, live_template)
        restarts = 0
        while True:
            forest, iterations = self._run_once(workspace)
            if not self._las_vegas:
                return RandomizedPartitionResult(
                    forest=forest,
                    metrics=self._metrics.snapshot(),
                    iterations=iterations,
                    restarts=restarts,
                    verified=False,
                )
            if self._verify(forest):
                return RandomizedPartitionResult(
                    forest=forest,
                    metrics=self._metrics.snapshot(),
                    iterations=iterations,
                    restarts=restarts,
                    verified=True,
                )
            restarts += 1
            if restarts > self._max_restarts:
                raise RuntimeError(
                    "Las-Vegas verification kept failing; this indicates a bug "
                    "because the failure probability per attempt is below 1/2"
                )

    # ------------------------------------------------------------------
    def _run_once(
        self,
        workspace: Tuple[
            List[NodeId], List[int], List[int],
            List[List[int]], List[List[int]], List[Tuple[int, int, int]],
        ],
    ) -> Tuple[SpanningForest, List[IterationRecord]]:
        # the workspace holds the run-invariant structure built by
        # :meth:`run`: the node enumeration (graph iteration order — all hot
        # state below is indexed by it, not keyed by node objects), the
        # repr-order tie-break ranks, the adjacency rows with their reverse
        # positions, and the pristine live-link worklist
        nodes, rank, unrank, adj, adj_back, live_template = workspace
        n = self._n
        sqrt_n = math.sqrt(n)
        depth_limit = max(1, math.ceil(4 * sqrt_n))
        unfree_label = 2 * sqrt_n
        max_iterations = ln_star(max(2, n)) + 2
        probabilities = [
            min(1.0, e / sqrt_n) for e in escalation_sequence(max_iterations)
        ]
        probabilities[-1] = 1.0  # the last iteration promotes every free node

        # per-link alive flags; removing a link flips the flag on BOTH
        # endpoints' rows (via the precomputed reverse positions), so the
        # BFS hot loop tests one byte instead of hashing an oriented pair
        alive: List[bytearray] = [bytearray(b"\x01" * len(row)) for row in adj]
        label: List[int] = [-1] * n  # -1 encodes "unlabelled"
        parent: List[int] = [-1] * n  # -1 encodes "no parent"
        free: Set[int] = set(range(n))
        # worklist of links the algorithm still considers: a removed link is
        # never looked at again, so each iteration only rescans the survivors
        live_links: List[Tuple[int, int, int]] = list(live_template)
        records: List[IterationRecord] = []

        self._metrics.set_phase("partition")
        for iteration, probability in enumerate(probabilities):
            if not free:
                break
            free_before = len(free)
            messages_start = self._metrics.point_to_point_messages

            # Step 1: coin flips (one synchronized round)
            rng_random = self._rng.random
            new_centers = [
                node for node in sorted(free, key=rank.__getitem__)
                if rng_random() < probability
            ]
            for center in new_centers:
                label[center] = 0
                parent[center] = -1
            rounds = 1

            # Step 2: synchronous BFS growth to depth 4√n from the new centres
            bfs_messages = self._grow_bfs(
                new_centers, label, parent, adj, alive, depth_limit, rank, unrank
            )
            rounds += depth_limit
            self._metrics.record_messages(bfs_messages)

            # remove links internal to a tree but not tree edges
            live_links = self._remove_internal_links(
                label, parent, adj_back, alive, live_links
            )

            # Step 3: free/unfree determination (convergecast + broadcast per tree)
            members: Dict[int, List[int]] = {}
            root_cache: List[int] = [-1] * n
            for node in range(n):
                if label[node] == -1:
                    continue
                members.setdefault(
                    _find_root_indexed(parent, root_cache, node), []
                ).append(node)
            for group in members.values():
                has_outgoing_to_unlabeled = False
                for node in group:
                    for neighbor in adj[node]:
                        if label[neighbor] == -1:
                            has_outgoing_to_unlabeled = True
                            break
                    if has_outgoing_to_unlabeled:
                        break
                for node in group:
                    if not has_outgoing_to_unlabeled:
                        free.discard(node)
                    elif label[node] <= unfree_label:
                        free.discard(node)
                self._metrics.record_messages(2 * max(0, len(group) - 1))
            rounds += 2 * depth_limit

            self._metrics.record_round(rounds)
            records.append(
                IterationRecord(
                    iteration=iteration,
                    head_probability=probability,
                    new_centers=len(new_centers),
                    free_before=free_before,
                    free_after=len(free),
                    rounds=rounds,
                    messages=self._metrics.point_to_point_messages - messages_start,
                )
            )
        self._metrics.set_phase(None)

        if any(value == -1 for value in label):
            raise AssertionError(
                "the final iteration promotes every free node, so every node "
                "must be labelled when the loop ends"
            )
        # translate the index-space parent array back to a node-keyed map in
        # graph iteration order (the order the historical dict-based state
        # kept), so the forest's fragment enumeration is unchanged
        parent_map: Dict[NodeId, Optional[NodeId]] = {}
        for i, node in enumerate(nodes):
            up = parent[i]
            parent_map[node] = nodes[up] if up >= 0 else None
        forest = SpanningForest.from_parent_map(parent_map)
        return forest, records

    # ------------------------------------------------------------------
    def _grow_bfs(
        self,
        new_centers: List[int],
        label: List[int],
        parent: List[int],
        adj: List[List[int]],
        alive: List[bytearray],
        depth_limit: int,
        rank: List[int],
        unrank: List[int],
    ) -> int:
        """Relax labels outward from the new centres; returns messages sent.

        A node adopts a neighbour's announcement only when it strictly reduces
        its label (ties between simultaneous announcements go to the least
        root, which the orchestration realises by processing announcements in
        deterministic order).  Every node whose label improves announces the
        improvement over all its non-removed incident links — each such
        announcement is one message.

        Each announcement is encoded as the single integer
        ``announced · n + rank(sender)``: with ranks below ``n`` that integer
        orders exactly like the historical ``(announced, repr(sender))``
        pair, so the per-neighbour winner is a C-level ``min`` over ints
        instead of a keyed sort of tuples, and the chosen parent decodes via
        ``unrank``.
        """
        n = len(rank)
        messages = 0
        frontier = list(new_centers)
        for _ in range(depth_limit):
            if not frontier:
                break
            announcements: Dict[int, List[int]] = {}
            for node in sorted(frontier, key=rank.__getitem__):
                encoded = (label[node] + 1) * n + rank[node]
                flags = alive[node]
                for position, neighbor in enumerate(adj[node]):
                    if not flags[position]:
                        continue
                    messages += 1
                    try:
                        announcements[neighbor].append(encoded)
                    except KeyError:
                        announcements[neighbor] = [encoded]
            next_frontier: List[int] = []
            for neighbor, offers in announcements.items():
                best = offers[0] if len(offers) == 1 else min(offers)
                best_label = best // n
                if best_label > depth_limit:
                    continue
                current = label[neighbor]
                if current == -1 or best_label < current:
                    label[neighbor] = best_label
                    parent[neighbor] = unrank[best % n]
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return messages

    def _remove_internal_links(
        self,
        label: List[int],
        parent: List[int],
        adj_back: List[List[int]],
        alive: List[bytearray],
        live_links: List[Tuple[int, int, int]],
    ) -> List[Tuple[int, int, int]]:
        """Drop links whose endpoints share a tree but that are not tree edges.

        Returns the surviving worklist so the next iteration skips removed
        links without consulting the flags; removal flips the alive flag on
        both endpoints' adjacency rows.
        """
        root_cache: List[int] = [-1] * len(label)
        survivors: List[Tuple[int, int, int]] = []
        for u, v, position_u in live_links:
            if parent[u] == v or parent[v] == u:
                survivors.append((u, v, position_u))
                continue
            root_u = (
                -1 if label[u] == -1
                else _find_root_indexed(parent, root_cache, u)
            )
            root_v = (
                -1 if label[v] == -1
                else _find_root_indexed(parent, root_cache, v)
            )
            if root_u != -1 and root_u == root_v:
                alive[u][position_u] = 0
                alive[v][adj_back[u][position_u]] = 0
            else:
                survivors.append((u, v, position_u))
        return survivors

    # ------------------------------------------------------------------
    def _verify(self, forest: SpanningForest) -> bool:
        """Las-Vegas verification: schedule the roots on the channel.

        The roots contend on the channel with the Metcalfe–Boggs technique
        for at most ``8√n`` slots; verification succeeds when every root got
        a slot and the number of roots is at most ``2√n``... the paper uses
        the weaker check "all roots scheduled and their number ≤ 2√n"; we
        allow the forest when the count is within ``4√n`` (the constant the
        Monte-Carlo analysis actually yields for small n) so that the
        restart probability stays below 1/2 as the Remark requires.
        """
        roots = forest.cores
        sqrt_n = math.sqrt(self._n)
        budget = max(4, math.ceil(8 * sqrt_n))
        estimate = max(1, math.ceil(2 * sqrt_n))
        # eager seed draws keep the master stream identical to the old
        # eager-rng form; the generators themselves materialise lazily
        contenders = [
            MetcalfeBoggsContender(
                identity=root,
                estimated_contenders=estimate,
                seed=self._rng.randrange(2**63),
                payload=root,
            )
            for root in roots
        ]
        self._metrics.set_phase("verification")
        try:
            outcome = run_contention(
                contenders, max_slots=budget, metrics=self._metrics
            )
        except Exception:
            self._metrics.set_phase(None)
            return False
        self._metrics.set_phase(None)
        scheduled_all = len(outcome.order) == len(roots)
        return scheduled_all and len(roots) <= math.ceil(4 * sqrt_n)


# ----------------------------------------------------------------------
def _find_root_indexed(parent: List[int], cache: List[int], start: int) -> int:
    """Return the root ``start``'s parent chain leads to, with path caching.

    ``cache`` memoises roots across calls within one sweep (``-1`` encodes
    "unknown"); every node on the walked chain is back-filled, so repeated
    lookups over one tree stay linear overall.
    """
    chain: List[int] = []
    current = start
    while cache[current] < 0:
        up = parent[current]
        if up < 0:
            cache[current] = current
            break
        chain.append(current)
        current = up
    root = cache[current]
    for member in chain:
        cache[member] = root
    return root
