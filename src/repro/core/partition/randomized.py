"""The randomized partitioning algorithm (Section 4).

Free nodes repeatedly flip coins with escalating probabilities
``min(1, E_i/√n)`` (``E_1 = 1`` and ``E_{i+1} = e^{E_i}``); the winners become
*local centres* and grow BFS trees of depth at most ``4√n`` synchronously.
Nodes labelled at most ``2√n`` — and all nodes of trees that have no outgoing
link to an unlabelled node — become *unfree*; the rest stay free for the next
iteration.  After at most ``ln* n + 1`` iterations every node belongs to some
BFS tree of radius ≤ 4√n, and the expected number of trees is O(√n)
(Theorem 1).  The running time is O(√n log* n) worst case and the message
complexity O(m + n log* n): a message over a link either attaches the link to
a BFS tree or removes it from the algorithm's view forever.

The algorithm is Monte Carlo (the number of trees exceeds O(√n) only with
small probability); the Las-Vegas wrapper of the paper's Remark verifies the
tree count by attempting to schedule the roots on the channel for ``8√n``
slots with the Metcalfe–Boggs randomized technique and restarts on failure.

Like the deterministic partitioner, the execution is an orchestrated
simulation: iteration structure, coin flips, BFS label relaxations, link
removals and the free/unfree rule follow the paper exactly, and the time and
message charges are those of the synchronous message-passing execution
(iteration lengths are fixed in advance, as the paper requires).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import random

from repro.core.partition.forest import SpanningForest
from repro.protocols.collision.base import run_contention
from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.topology.graph import WeightedGraph
from repro.topology.properties import is_connected

NodeId = Hashable


def ln_star(n: float) -> int:
    """Return ``ln* n``: iterations of the natural log needed to reach ≤ 1."""
    if n <= 0:
        raise ValueError("ln* is only defined for positive arguments")
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log(value)
        count += 1
    return count


def escalation_sequence(length: int) -> List[float]:
    """Return ``E_1, …, E_length`` with ``E_1 = 1`` and ``E_{i+1} = e^{E_i}``.

    The values grow as an exponential tower, so they are capped at ``1e18``
    (far beyond any √n the simulation reaches) to avoid overflow.
    """
    values: List[float] = []
    current = 1.0
    for _ in range(length):
        values.append(current)
        current = math.exp(min(current, 41.0))
        current = min(current, 1e18)
    return values


@dataclass
class IterationRecord:
    """Statistics for one iteration of the randomized partitioner."""

    iteration: int
    head_probability: float
    new_centers: int
    free_before: int
    free_after: int
    rounds: int
    messages: int


@dataclass
class RandomizedPartitionResult:
    """Result of the randomized partitioning algorithm.

    Attributes:
        forest: the spanning forest of BFS trees (radius ≤ 4√n each).
        metrics: time/message accounting (including verification and
            restarts for the Las-Vegas variant).
        iterations: per-iteration records of the successful run.
        restarts: number of Las-Vegas restarts (always 0 for Monte Carlo).
        verified: whether the Las-Vegas verification accepted the forest.
    """

    forest: SpanningForest
    metrics: MetricsSnapshot
    iterations: List[IterationRecord]
    restarts: int
    verified: bool

    @property
    def num_fragments(self) -> int:
        """Return the number of trees in the forest."""
        return self.forest.num_fragments()


class RandomizedPartitioner:
    """Runs the Section 4 algorithm on a multimedia network."""

    def __init__(
        self,
        graph: WeightedGraph,
        seed: Optional[int] = None,
        las_vegas: bool = False,
        max_restarts: int = 8,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        """Create a partitioner.

        Args:
            graph: connected point-to-point topology.
            seed: seed for the coin flips (and the verification scheduling).
            las_vegas: run the Las-Vegas variant (verify the number of roots
                on the channel and restart on failure).
            max_restarts: safety bound on Las-Vegas restarts.
            metrics: externally owned complexity recorder.

        Raises:
            ValueError: if the graph is empty or disconnected.
        """
        if graph.num_nodes() == 0:
            raise ValueError("cannot partition an empty network")
        if not is_connected(graph):
            raise ValueError("the point-to-point topology must be connected")
        self._graph = graph
        self._n = graph.num_nodes()
        self._rng = random.Random(seed)
        self._las_vegas = las_vegas
        self._max_restarts = max_restarts
        self._metrics = metrics if metrics is not None else MetricsRecorder()

    # ------------------------------------------------------------------
    def run(self) -> RandomizedPartitionResult:
        """Execute the algorithm (with verification when Las Vegas is enabled)."""
        restarts = 0
        while True:
            forest, iterations = self._run_once()
            if not self._las_vegas:
                return RandomizedPartitionResult(
                    forest=forest,
                    metrics=self._metrics.snapshot(),
                    iterations=iterations,
                    restarts=restarts,
                    verified=False,
                )
            if self._verify(forest):
                return RandomizedPartitionResult(
                    forest=forest,
                    metrics=self._metrics.snapshot(),
                    iterations=iterations,
                    restarts=restarts,
                    verified=True,
                )
            restarts += 1
            if restarts > self._max_restarts:
                raise RuntimeError(
                    "Las-Vegas verification kept failing; this indicates a bug "
                    "because the failure probability per attempt is below 1/2"
                )

    # ------------------------------------------------------------------
    def _run_once(self) -> Tuple[SpanningForest, List[IterationRecord]]:
        n = self._n
        sqrt_n = math.sqrt(n)
        depth_limit = max(1, math.ceil(4 * sqrt_n))
        unfree_label = 2 * sqrt_n
        max_iterations = ln_star(max(2, n)) + 2
        probabilities = [
            min(1.0, e / sqrt_n) for e in escalation_sequence(max_iterations)
        ]
        probabilities[-1] = 1.0  # the last iteration promotes every free node

        label: Dict[NodeId, Optional[int]] = {v: None for v in self._graph.nodes()}
        parent: Dict[NodeId, Optional[NodeId]] = {v: None for v in self._graph.nodes()}
        free: Set[NodeId] = set(self._graph.nodes())
        # removed links are stored under BOTH orientations so the BFS hot
        # loop tests membership without canonicalising the pair first
        removed_links: Set[Tuple[NodeId, NodeId]] = set()
        # worklist of links the algorithm still considers: a removed link is
        # never looked at again, so each iteration only rescans the survivors
        live_links: List[Tuple[NodeId, NodeId]] = [
            (edge.u, edge.v) for edge in self._graph.edges()
        ]
        records: List[IterationRecord] = []
        # deterministic tie-break order, precomputed once: every iteration
        # sorts nodes by repr, which is pure overhead when recomputed inline
        reprs: Dict[NodeId, str] = {v: repr(v) for v in self._graph.nodes()}

        self._metrics.set_phase("partition")
        for iteration, probability in enumerate(probabilities):
            if not free:
                break
            free_before = len(free)
            messages_start = self._metrics.point_to_point_messages

            # Step 1: coin flips (one synchronized round)
            new_centers = [
                node for node in sorted(free, key=reprs.__getitem__)
                if self._rng.random() < probability
            ]
            for center in new_centers:
                label[center] = 0
                parent[center] = None
            rounds = 1

            # Step 2: synchronous BFS growth to depth 4√n from the new centres
            bfs_messages = self._grow_bfs(
                new_centers, label, parent, removed_links, depth_limit, reprs
            )
            rounds += depth_limit
            self._metrics.record_messages(bfs_messages)

            # remove links internal to a tree but not tree edges
            live_links = self._remove_internal_links(
                label, parent, removed_links, live_links
            )

            # Step 3: free/unfree determination (convergecast + broadcast per tree)
            members = _members_by_actual_root(parent, label)
            for root, nodes in members.items():
                has_outgoing_to_unlabeled = False
                for node in nodes:
                    for neighbor in self._graph.iter_neighbors(node):
                        if label[neighbor] is None:
                            has_outgoing_to_unlabeled = True
                            break
                    if has_outgoing_to_unlabeled:
                        break
                for node in nodes:
                    if not has_outgoing_to_unlabeled:
                        free.discard(node)
                    elif label[node] is not None and label[node] <= unfree_label:
                        free.discard(node)
                self._metrics.record_messages(2 * max(0, len(nodes) - 1))
            rounds += 2 * depth_limit

            self._metrics.record_round(rounds)
            records.append(
                IterationRecord(
                    iteration=iteration,
                    head_probability=probability,
                    new_centers=len(new_centers),
                    free_before=free_before,
                    free_after=len(free),
                    rounds=rounds,
                    messages=self._metrics.point_to_point_messages - messages_start,
                )
            )
        self._metrics.set_phase(None)

        if any(value is None for value in label.values()):
            raise AssertionError(
                "the final iteration promotes every free node, so every node "
                "must be labelled when the loop ends"
            )
        forest = SpanningForest.from_parent_map(parent)
        return forest, records

    # ------------------------------------------------------------------
    def _grow_bfs(
        self,
        new_centers: List[NodeId],
        label: Dict[NodeId, Optional[int]],
        parent: Dict[NodeId, Optional[NodeId]],
        removed_links: Set[Tuple[NodeId, NodeId]],
        depth_limit: int,
        reprs: Dict[NodeId, str],
    ) -> int:
        """Relax labels outward from the new centres; returns messages sent.

        A node adopts a neighbour's announcement only when it strictly reduces
        its label (ties between simultaneous announcements go to the least
        root, which the orchestration realises by processing announcements in
        deterministic order).  Every node whose label improves announces the
        improvement over all its non-removed incident links — each such
        announcement is one message.
        """
        messages = 0
        frontier = list(new_centers)
        for _ in range(depth_limit):
            if not frontier:
                break
            announcements: Dict[NodeId, List[Tuple[int, NodeId, NodeId]]] = {}
            for node in sorted(frontier, key=reprs.__getitem__):
                node_label = label[node]
                assert node_label is not None
                announced = node_label + 1
                for neighbor in self._graph.iter_neighbors(node):
                    if (node, neighbor) in removed_links:
                        continue
                    messages += 1
                    try:
                        announcements[neighbor].append((announced, node, neighbor))
                    except KeyError:
                        announcements[neighbor] = [(announced, node, neighbor)]
            next_frontier: List[NodeId] = []
            for neighbor, offers in announcements.items():
                if len(offers) > 1:
                    offers.sort(key=lambda item: (item[0], reprs[item[1]]))
                best_label, best_parent, _ = offers[0]
                current = label[neighbor]
                if best_label > depth_limit:
                    continue
                if current is None or best_label < current:
                    label[neighbor] = best_label
                    parent[neighbor] = best_parent
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return messages

    def _remove_internal_links(
        self,
        label: Dict[NodeId, Optional[int]],
        parent: Dict[NodeId, Optional[NodeId]],
        removed_links: Set[Tuple[NodeId, NodeId]],
        live_links: List[Tuple[NodeId, NodeId]],
    ) -> List[Tuple[NodeId, NodeId]]:
        """Drop links whose endpoints share a tree but that are not tree edges.

        Returns the surviving worklist so the next iteration skips removed
        links without consulting the set.
        """
        root_cache: Dict[NodeId, NodeId] = {}

        def actual_root(node: NodeId) -> Optional[NodeId]:
            if label[node] is None:
                return None
            chain = []
            current = node
            while current not in root_cache:
                up = parent[current]
                if up is None:
                    root_cache[current] = current
                    break
                chain.append(current)
                current = up
            root = root_cache[current]
            for member in chain:
                root_cache[member] = root
            return root

        survivors: List[Tuple[NodeId, NodeId]] = []
        for u, v in live_links:
            if parent.get(u) == v or parent.get(v) == u:
                survivors.append((u, v))
                continue
            root_u = actual_root(u)
            root_v = actual_root(v)
            if root_u is not None and root_u == root_v:
                removed_links.add((u, v))
                removed_links.add((v, u))
            else:
                survivors.append((u, v))
        return survivors

    # ------------------------------------------------------------------
    def _verify(self, forest: SpanningForest) -> bool:
        """Las-Vegas verification: schedule the roots on the channel.

        The roots contend on the channel with the Metcalfe–Boggs technique
        for at most ``8√n`` slots; verification succeeds when every root got
        a slot and the number of roots is at most ``2√n``... the paper uses
        the weaker check "all roots scheduled and their number ≤ 2√n"; we
        allow the forest when the count is within ``4√n`` (the constant the
        Monte-Carlo analysis actually yields for small n) so that the
        restart probability stays below 1/2 as the Remark requires.
        """
        roots = forest.cores
        sqrt_n = math.sqrt(self._n)
        budget = max(4, math.ceil(8 * sqrt_n))
        estimate = max(1, math.ceil(2 * sqrt_n))
        contenders = [
            MetcalfeBoggsContender(
                identity=root,
                estimated_contenders=estimate,
                rng=random.Random(self._rng.randrange(2**63)),
                payload=root,
            )
            for root in roots
        ]
        self._metrics.set_phase("verification")
        try:
            outcome = run_contention(
                contenders, max_slots=budget, metrics=self._metrics
            )
        except Exception:
            self._metrics.set_phase(None)
            return False
        self._metrics.set_phase(None)
        scheduled_all = len(outcome.order) == len(roots)
        return scheduled_all and len(roots) <= math.ceil(4 * sqrt_n)


# ----------------------------------------------------------------------
def _members_by_actual_root(
    parent: Dict[NodeId, Optional[NodeId]],
    label: Dict[NodeId, Optional[int]],
) -> Dict[NodeId, List[NodeId]]:
    """Group the labelled nodes by the root their parent pointers lead to."""
    members: Dict[NodeId, List[NodeId]] = {}
    root_cache: Dict[NodeId, NodeId] = {}

    def find_root(node: NodeId) -> NodeId:
        chain = []
        current = node
        while current not in root_cache:
            up = parent[current]
            if up is None:
                root_cache[current] = current
                break
            chain.append(current)
            current = up
        root = root_cache[current]
        for member in chain:
            root_cache[member] = root
        return root

    for node, value in label.items():
        if value is None:
            continue
        members.setdefault(find_root(node), []).append(node)
    return members
