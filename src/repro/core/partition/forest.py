"""Fragments and spanning forests.

A **fragment** is a rooted tree over point-to-point links; its root is the
fragment's *core*.  A **spanning forest** is a set of node-disjoint fragments
covering every node of the network.  Both partitioning algorithms produce a
:class:`SpanningForest`, and the downstream algorithms (global sensitive
functions, MST) consume one: each node must know its parent, its children and
its core, which is exactly the information the distributed executions leave
behind at the nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.protocols.spanning.tree_utils import (
    children_map,
    node_depths,
    validate_parent_map,
)

NodeId = Hashable


@dataclass
class Fragment:
    """One rooted tree of a spanning forest.

    The derived tree quantities (depths, children, radius) are cached under
    a version counter: fragments are effectively immutable once built, but
    callers that do mutate ``parents`` in place must call
    :meth:`invalidate_caches` so the cached views are recomputed.

    Attributes:
        core: the fragment's root (the paper's "core").
        parents: parent map restricted to this fragment's members; the core
            maps to ``None``.
    """

    core: NodeId
    parents: Dict[NodeId, Optional[NodeId]] = field(default_factory=dict)
    _version: int = field(default=0, init=False, repr=False, compare=False)
    _cache: Dict[str, object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _cache_version: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        """Default an empty parent map and validate that the core is a root."""
        if not self.parents:
            self.parents = {self.core: None}
        if self.core not in self.parents or self.parents[self.core] is not None:
            raise ValueError("the core must be a root of the fragment's parent map")

    # -- caching ---------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop cached derived views after an in-place ``parents`` mutation."""
        self._version += 1

    def _cached(self, key: str, compute):
        if self._cache_version != self._version:
            self._cache.clear()
            self._cache_version = self._version
        try:
            return self._cache[key]
        except KeyError:
            value = compute()
            self._cache[key] = value
            return value

    @property
    def members(self) -> List[NodeId]:
        """Return every node of the fragment (core included)."""
        return list(self.parents)

    @property
    def size(self) -> int:
        """Return the number of nodes in the fragment."""
        return len(self.parents)

    @property
    def radius(self) -> int:
        """Return the depth of the deepest node below the core."""
        depths = self.depths()
        return max(depths.values()) if depths else 0

    def depths(self) -> Dict[NodeId, int]:
        """Return each member's depth below the core (cached)."""
        return self._cached("depths", lambda: node_depths(self.parents))

    def children(self) -> Dict[NodeId, List[NodeId]]:
        """Return each member's children within the fragment (cached)."""
        return self._cached("children", lambda: children_map(self.parents))

    def tree_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Return the fragment's tree edges as (child, parent) pairs."""
        return [(node, parent) for node, parent in self.parents.items() if parent is not None]

    def level(self) -> int:
        """Return ``⌊log2(size)⌋``, the fragment's level (Section 3)."""
        return self.size.bit_length() - 1

    def validate(self) -> None:
        """Check internal consistency (tree structure, single root = core).

        Raises:
            ValueError: on any inconsistency.
        """
        validate_parent_map(self.parents)
        roots = [node for node, parent in self.parents.items() if parent is None]
        if roots != [self.core] and set(roots) != {self.core}:
            raise ValueError(
                f"fragment rooted at {self.core!r} has roots {roots!r}"
            )


class SpanningForest:
    """A node-disjoint collection of fragments covering a node set.

    Whole-forest aggregates (parent map, tree edges, extreme sizes and
    radii) are cached under a version counter; the forest itself has no
    mutators, but callers that mutate a fragment in place must call
    :meth:`invalidate_caches` to refresh the cached aggregates.
    """

    def __init__(self, fragments: List[Fragment]) -> None:
        """Create a forest from ``fragments``.

        Raises:
            ValueError: if two fragments share a node or a core repeats.
        """
        self._fragments: Dict[NodeId, Fragment] = {}
        self._core_of: Dict[NodeId, NodeId] = {}
        self._version = 0
        self._cache: Dict[str, object] = {}
        self._cache_version = 0
        for fragment in fragments:
            if fragment.core in self._fragments:
                raise ValueError(f"duplicate core {fragment.core!r}")
            for node in fragment.members:
                if node in self._core_of:
                    raise ValueError(
                        f"node {node!r} appears in two fragments "
                        f"({self._core_of[node]!r} and {fragment.core!r})"
                    )
                self._core_of[node] = fragment.core
            self._fragments[fragment.core] = fragment

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop cached aggregates (and fragment caches) after a mutation."""
        self._version += 1
        for fragment in self._fragments.values():
            fragment.invalidate_caches()

    def _cached(self, key: str, compute):
        if self._cache_version != self._version:
            self._cache.clear()
            self._cache_version = self._version
        try:
            return self._cache[key]
        except KeyError:
            value = compute()
            self._cache[key] = value
            return value

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def fragments(self) -> List[Fragment]:
        """Return the fragments (in core insertion order)."""
        return list(self._fragments.values())

    @property
    def cores(self) -> List[NodeId]:
        """Return the cores of the fragments."""
        return list(self._fragments)

    def fragment_of(self, node: NodeId) -> Fragment:
        """Return the fragment containing ``node``.

        Raises:
            KeyError: if the node is not covered by the forest.
        """
        return self._fragments[self._core_of[node]]

    def core_of(self, node: NodeId) -> NodeId:
        """Return the core of the fragment containing ``node``."""
        return self._core_of[node]

    def num_fragments(self) -> int:
        """Return the number of fragments."""
        return len(self._fragments)

    def num_nodes(self) -> int:
        """Return the total number of covered nodes."""
        return len(self._core_of)

    def covered_nodes(self) -> List[NodeId]:
        """Return every node covered by the forest."""
        return list(self._core_of)

    def max_radius(self) -> int:
        """Return the largest fragment radius (cached)."""
        return self._cached(
            "max_radius",
            lambda: max((fragment.radius for fragment in self.fragments), default=0),
        )

    def min_size(self) -> int:
        """Return the smallest fragment size (cached)."""
        return self._cached(
            "min_size",
            lambda: min((fragment.size for fragment in self.fragments), default=0),
        )

    def max_size(self) -> int:
        """Return the largest fragment size (cached)."""
        return self._cached(
            "max_size",
            lambda: max((fragment.size for fragment in self.fragments), default=0),
        )

    def parent_map(self) -> Dict[NodeId, Optional[NodeId]]:
        """Return the union of all fragments' parent maps (cores map to None)."""

        def merge() -> Dict[NodeId, Optional[NodeId]]:
            """Union the per-fragment parent maps."""
            merged: Dict[NodeId, Optional[NodeId]] = {}
            for fragment in self.fragments:
                merged.update(fragment.parents)
            return merged

        return dict(self._cached("parent_map", merge))

    def tree_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Return every tree edge of the forest as (child, parent) pairs."""

        def collect() -> List[Tuple[NodeId, NodeId]]:
            """Concatenate the per-fragment tree edges."""
            edges: List[Tuple[NodeId, NodeId]] = []
            for fragment in self.fragments:
                edges.extend(fragment.tree_edges())
            return edges

        return list(self._cached("tree_edges", collect))

    def node_inputs(self) -> Dict[NodeId, Dict[str, object]]:
        """Return per-node ``extra`` inputs describing the forest structure.

        The downstream node protocols (tree aggregation, MST merging) are
        parameterised with each node's parent, children and core — the
        knowledge the distributed partitioning run leaves at the nodes.
        """
        inputs: Dict[NodeId, Dict[str, object]] = {}
        for fragment in self.fragments:
            children = fragment.children()
            for node in fragment.members:
                inputs[node] = {
                    "parent": fragment.parents[node],
                    "children": tuple(children[node]),
                    "core": fragment.core,
                }
        return inputs

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_parent_map(
        cls,
        parents: Dict[NodeId, Optional[NodeId]],
    ) -> "SpanningForest":
        """Build a forest from a global parent map (roots become cores).

        Structural validation (closed under parents, acyclic) is folded into
        the grouping walk itself — every node's chain to its root is walked
        exactly once with path caching, so building the forest costs one
        pass instead of a validation pass plus a grouping pass.

        Raises:
            ValueError: if a referenced parent is missing or a cycle exists.
        """
        by_root: Dict[NodeId, Dict[NodeId, Optional[NodeId]]] = {}
        root_cache: Dict[NodeId, NodeId] = {}
        limit = len(parents)

        def find_root(node: NodeId) -> NodeId:
            """Return ``node``'s tree root, path-caching the chain walked."""
            chain = []
            current = node
            while current not in root_cache:
                parent = parents[current]
                if parent is None:
                    root_cache[current] = current
                    break
                if parent not in parents:
                    raise ValueError(
                        f"parent {parent!r} of {current!r} is not in the map"
                    )
                chain.append(current)
                # a chain longer than the map revisits a node: cycle
                if len(chain) > limit:
                    raise ValueError("parent map contains a cycle")
                current = parent
            root = root_cache[current]
            for member in chain:
                root_cache[member] = root
            return root

        for node in parents:
            root = find_root(node)
            by_root.setdefault(root, {})[node] = parents[node]
        fragments = [Fragment(core=root, parents=tree) for root, tree in by_root.items()]
        return cls(fragments)

    def __repr__(self) -> str:
        """Return a compact fragment-count summary for debugging."""
        return (
            f"SpanningForest(fragments={self.num_fragments()}, "
            f"nodes={self.num_nodes()}, max_radius={self.max_radius()})"
        )
