"""Validators for the partition invariants claimed by the paper.

Section 3 claims the deterministic partition produces a spanning forest where

* every tree is a subtree of the (unique) minimum spanning tree,
* every tree has size ≥ √n, and
* every tree has radius ≤ 8√n,

and therefore the forest has at most √n trees.  Section 4 claims the
randomized partition produces a spanning forest of trees of radius ≤ 4√n
whose expected number is O(√n).  :func:`validate_partition` checks all the
structural invariants of a forest against the network it was computed on and
reports the quantitative figures the experiments tabulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.partition.forest import SpanningForest
from repro.topology.graph import WeightedGraph, edge_key
from repro.topology.weights import minimum_spanning_tree_edges


@dataclass
class PartitionReport:
    """Outcome of validating a spanning forest against its network.

    Attributes:
        n: number of nodes in the network.
        num_fragments: number of trees in the forest.
        min_size / max_size: extreme fragment sizes.
        max_radius: largest fragment radius.
        covers_all_nodes: every network node belongs to exactly one fragment.
        edges_exist: every tree edge is a link of the network.
        fragments_are_trees: every fragment is a valid rooted tree.
        subtrees_of_mst: every tree edge belongs to the network's MST
            (``None`` when the check was not requested).
        violations: human-readable descriptions of every failed check.
    """

    n: int
    num_fragments: int
    min_size: int
    max_size: int
    max_radius: int
    covers_all_nodes: bool
    edges_exist: bool
    fragments_are_trees: bool
    subtrees_of_mst: Optional[bool] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Return ``True`` when every requested check passed."""
        return not self.violations

    @property
    def sqrt_n(self) -> float:
        """Return √n, the yardstick of every bound."""
        return math.sqrt(self.n)

    @property
    def fragment_count_ratio(self) -> float:
        """Return (number of fragments) / √n — the paper bounds this by O(1)."""
        return self.num_fragments / self.sqrt_n if self.n else 0.0

    @property
    def radius_ratio(self) -> float:
        """Return (max radius) / √n — ≤ 8 for the deterministic partition."""
        return self.max_radius / self.sqrt_n if self.n else 0.0

    @property
    def min_size_ratio(self) -> float:
        """Return (min size) / √n — ≥ 1 for the deterministic partition."""
        return self.min_size / self.sqrt_n if self.n else 0.0


def validate_partition(
    forest: SpanningForest,
    graph: WeightedGraph,
    check_mst_subtrees: bool = False,
    min_size_bound: Optional[float] = None,
    max_radius_bound: Optional[float] = None,
    max_fragments_bound: Optional[float] = None,
) -> PartitionReport:
    """Validate ``forest`` against ``graph`` and the requested bounds.

    Args:
        forest: the spanning forest to validate.
        graph: the network it was computed on.
        check_mst_subtrees: also verify that every tree edge belongs to the
            graph's MST (requires distinct weights for the MST to be unique).
        min_size_bound: when given, flag fragments smaller than this.
        max_radius_bound: when given, flag fragments whose radius exceeds it.
        max_fragments_bound: when given, flag a forest with more trees than it.

    Returns:
        A :class:`PartitionReport`; ``report.ok`` is ``True`` when every
        structural check and every requested bound holds.
    """
    violations: List[str] = []
    n = graph.num_nodes()

    # structural checks -------------------------------------------------
    fragments_are_trees = True
    for fragment in forest.fragments:
        try:
            fragment.validate()
        except ValueError as exc:
            fragments_are_trees = False
            violations.append(f"fragment {fragment.core!r} is not a tree: {exc}")

    covered = set(forest.covered_nodes())
    network_nodes = set(graph.nodes())
    covers_all = covered == network_nodes
    if not covers_all:
        missing = network_nodes - covered
        extra = covered - network_nodes
        if missing:
            violations.append(f"{len(missing)} node(s) not covered by the forest")
        if extra:
            violations.append(f"{len(extra)} forest node(s) not in the network")

    edges_exist = True
    for child, parent in forest.tree_edges():
        if not graph.has_edge(child, parent):
            edges_exist = False
            violations.append(
                f"tree edge ({child!r}, {parent!r}) is not a network link"
            )

    # MST-subtree check ---------------------------------------------------
    subtrees_of_mst: Optional[bool] = None
    if check_mst_subtrees:
        _, mst_edges = minimum_spanning_tree_edges(graph)
        mst_keys = {edge.key() for edge in mst_edges}
        subtrees_of_mst = True
        for child, parent in forest.tree_edges():
            if edge_key(child, parent) not in mst_keys:
                subtrees_of_mst = False
                violations.append(
                    f"tree edge ({child!r}, {parent!r}) is not an MST edge"
                )

    # quantitative bounds -------------------------------------------------
    min_size = forest.min_size()
    max_size = forest.max_size()
    max_radius = forest.max_radius()
    num_fragments = forest.num_fragments()

    if min_size_bound is not None and min_size < min_size_bound and num_fragments > 1:
        violations.append(
            f"smallest fragment has {min_size} nodes, below the bound {min_size_bound:.1f}"
        )
    if max_radius_bound is not None and max_radius > max_radius_bound:
        violations.append(
            f"largest fragment radius {max_radius} exceeds the bound {max_radius_bound:.1f}"
        )
    if max_fragments_bound is not None and num_fragments > max_fragments_bound:
        violations.append(
            f"forest has {num_fragments} fragments, above the bound {max_fragments_bound:.1f}"
        )

    return PartitionReport(
        n=n,
        num_fragments=num_fragments,
        min_size=min_size,
        max_size=max_size,
        max_radius=max_radius,
        covers_all_nodes=covers_all,
        edges_exist=edges_exist,
        fragments_are_trees=fragments_are_trees,
        subtrees_of_mst=subtrees_of_mst,
        violations=violations,
    )
