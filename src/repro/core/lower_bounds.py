"""Lower bounds on computing global sensitive functions (Section 5.2).

Theorem 2:

* Ω(d) time on a point-to-point network of diameter ``d`` — information from
  the farthest node must reach every node;
* Ω(n) time on a broadcast channel — formally, at least ⌊n/2⌋ slots
  (Claim 3's induction removes two operands per slot);
* Ω(min{d, √n}) time on a multimedia network — proven on the *ray graph*:
  a centre with ``2(n−1)/d`` rays of length ``d/2``; Claim 4's adversary
  keeps the function ``k_t``-sensitive on a set of inputs indistinguishable
  to the centre after ``t`` steps, with
  ``k_t = n − 1 − 2(n−1)t/d − Σ_{j≤t}(4j − 2)``, which stays positive for
  ``t ≤ min{d, √n}/4``.

These are *proofs*, not measurements; what the reproduction provides is
(1) the exact bound formulas, used as reference curves by the experiments,
and (2) the adversary bookkeeping of Claim 4, so the tests can verify the
induction's arithmetic (``k_t > 0`` up to the claimed horizon) on concrete
ray-graph parameters, and the experiments can plot measured algorithm times
against the matching lower-bound curves (experiment E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.topology.graph import WeightedGraph
from repro.topology.properties import diameter


def point_to_point_lower_bound(d: int) -> int:
    """Return the Ω(d) bound: at least ``d`` rounds on a diameter-``d`` network."""
    if d < 0:
        raise ValueError("the diameter cannot be negative")
    return d


def broadcast_lower_bound(n: int) -> int:
    """Return the Ω(n) bound of Claim 3: at least ⌊n/2⌋ slots on a channel."""
    if n < 0:
        raise ValueError("n cannot be negative")
    return n // 2


def multimedia_lower_bound(n: int, d: int) -> int:
    """Return the Ω(min{d, √n}) bound: at least ⌊min{d, √n}/4⌋ rounds."""
    if n < 0 or d < 0:
        raise ValueError("n and d cannot be negative")
    return int(min(d, math.sqrt(n)) // 4)


def multimedia_upper_bound_deterministic(n: int) -> float:
    """Return the deterministic upper bound O(√(n log n log* n)) (Section 5.1)."""
    from repro.protocols.symmetry.cole_vishkin import log_star

    if n < 2:
        return 1.0
    return math.sqrt(n * math.log2(n) * max(1, log_star(n)))


def multimedia_upper_bound_randomized(n: int) -> float:
    """Return the randomized expected upper bound O(√n log* n)."""
    from repro.protocols.symmetry.cole_vishkin import log_star

    if n < 2:
        return 1.0
    return math.sqrt(n) * max(1, log_star(n))


@dataclass
class AdversaryTrace:
    """The sensitivity bookkeeping of Claim 4 on a concrete ray graph.

    Attributes:
        n: number of nodes in the ray graph.
        d: its diameter.
        steps: for each step ``t`` (starting at 1), the guaranteed remaining
            sensitivity ``k_t`` of the function on an input set
            indistinguishable to the centre.
        horizon: the largest ``t`` with ``k_t > 0`` — the algorithm cannot
            have terminated before this step.
    """

    n: int
    d: int
    steps: List[int]
    horizon: int


def claim4_sensitivity_trace(n: int, d: int, max_steps: int | None = None) -> AdversaryTrace:
    """Reproduce the arithmetic of Claim 4's induction.

    Starting from ``k_0 = n − 1`` (the centre's input is fixed), each step
    can fix at most ``2(n−1)/d`` ray inputs at distance ``t`` from the
    centre plus, in the worst case of Claim 4's Case B, ``4t − 2`` inputs in
    the (t−1)-neighbourhoods of the two colliding processors.  The trace
    stops when the remaining sensitivity reaches zero.
    """
    if n < 3 or d < 2:
        raise ValueError("the ray-graph construction needs n ≥ 3 and d ≥ 2")
    per_step_ray_inputs = 2 * (n - 1) / d
    remaining = float(n - 1)
    steps: List[int] = []
    limit = max_steps if max_steps is not None else n
    t = 0
    while remaining > 0 and t < limit:
        t += 1
        remaining -= per_step_ray_inputs
        remaining -= max(0, 4 * t - 2)
        steps.append(max(0, math.floor(remaining)))
    horizon = 0
    for index, value in enumerate(steps, start=1):
        if value > 0:
            horizon = index
    return AdversaryTrace(n=n, d=d, steps=steps, horizon=horizon)


def lower_bound_for_graph(graph: WeightedGraph, medium: str) -> int:
    """Return the applicable lower bound for ``graph`` and ``medium``.

    Args:
        graph: the point-to-point topology.
        medium: ``"point-to-point"``, ``"channel"`` or ``"multimedia"``.

    Raises:
        ValueError: on an unknown medium.
    """
    n = graph.num_nodes()
    if medium == "channel":
        return broadcast_lower_bound(n)
    d = diameter(graph)
    if medium == "point-to-point":
        return point_to_point_lower_bound(d)
    if medium == "multimedia":
        return multimedia_lower_bound(n, d)
    raise ValueError(f"unknown medium {medium!r}")
