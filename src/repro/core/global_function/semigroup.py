"""Global sensitive functions as commutative semigroup products.

Section 5: let S(X, •) be a commutative semigroup and ``F_n(x_1, …, x_n) =
x_1 • x_2 • … • x_n``.  ``F_n`` is *global sensitive* when, for every n-tuple
in its domain and every position ``i``, some change of ``x_i`` alone changes
the value — i.e. no n−1 operands determine the result.  Addition over the
integers, minimum over the integers (without a least element in the domain),
and XOR are the paper's examples; all are provided here, along with the
machinery to check the sensitivity property on finite domains (used by the
property-based tests).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from functools import reduce
from typing import Any, Callable, List, Optional, Sequence


@dataclass(frozen=True)
class GlobalSensitiveFunction:
    """A commutative semigroup product used as the function to compute.

    Attributes:
        name: human-readable name (appears in experiment reports).
        combine: the associative, commutative binary operation.
        identity: an optional identity element; when present it lets empty
            partial aggregates be represented (the algorithms never need it
            for non-empty fragments but the tests exercise it).
        perturb: given an operand, return a different operand from the domain
            — the witness ``y_i`` of the sensitivity definition.  Used by the
            validators to confirm global sensitivity on sampled inputs.
        witness: optional replacement for ``perturb`` that sees the whole
            operand tuple; needed for functions such as minimum, where a
            valid witness must undercut the global minimum rather than just
            differ from the local operand.
    """

    name: str
    combine: Callable[[Any, Any], Any]
    identity: Optional[Any] = None
    perturb: Callable[[Any], Any] = field(default=lambda value: value + 1)
    witness: Optional[Callable[[Sequence[Any], int], Any]] = None

    def evaluate(self, operands: Sequence[Any]) -> Any:
        """Return the semigroup product of ``operands``.

        Raises:
            ValueError: if ``operands`` is empty and no identity exists.
        """
        items = list(operands)
        if not items:
            if self.identity is None:
                raise ValueError(
                    f"{self.name} has no identity element; cannot fold zero operands"
                )
            return self.identity
        return reduce(self.combine, items)

    def is_sensitive_at(self, operands: Sequence[Any], index: int) -> bool:
        """Return ``True`` when changing ``operands[index]`` changes the value."""
        original = self.evaluate(operands)
        modified = list(operands)
        if self.witness is not None:
            modified[index] = self.witness(operands, index)
        else:
            modified[index] = self.perturb(modified[index])
        return self.evaluate(modified) != original

    def check_global_sensitivity(self, operands: Sequence[Any]) -> bool:
        """Return ``True`` when the function is sensitive in every position."""
        return all(self.is_sensitive_at(operands, index) for index in range(len(operands)))

    def __repr__(self) -> str:
        """Return the function's name for debugging."""
        return f"GlobalSensitiveFunction({self.name!r})"


def _perturb_int(value: int) -> int:
    return value + 1


def _perturb_min(value: int) -> int:
    # for minimum, decreasing an operand always changes the result when the
    # domain has no least element (the paper's caveat); decreasing below the
    # current operand is a valid witness on the integers
    return value - 1


def _perturb_bit(value: int) -> int:
    return value ^ 1


#: Addition over the integers — the canonical global sensitive function.
INTEGER_ADDITION = GlobalSensitiveFunction(
    name="sum", combine=operator.add, identity=0, perturb=_perturb_int
)

#: Minimum over the integers (global sensitive because ℤ has no least element):
#: the sensitivity witness for any position undercuts the current minimum.
INTEGER_MINIMUM = GlobalSensitiveFunction(
    name="min", combine=min, identity=None, perturb=_perturb_min,
    witness=lambda operands, index: min(operands) - 1,
)

#: Maximum over the integers (global sensitive because ℤ has no greatest element).
INTEGER_MAXIMUM = GlobalSensitiveFunction(
    name="max", combine=max, identity=None, perturb=_perturb_int,
    witness=lambda operands, index: max(operands) + 1,
)

#: Addition modulo two (exclusive or), the paper's third example.
XOR = GlobalSensitiveFunction(
    name="xor", combine=operator.xor, identity=0, perturb=_perturb_bit
)

#: Boolean OR — included as a counter-example: it is NOT global sensitive
#: (once some operand is True, the others do not matter).  The validators use
#: it to confirm the sensitivity checker can tell the difference.
BOOLEAN_OR = GlobalSensitiveFunction(
    name="or", combine=operator.or_, identity=False, perturb=lambda value: not value
)


def standard_functions() -> List[GlobalSensitiveFunction]:
    """Return the global sensitive functions exercised by the experiments."""
    return [INTEGER_ADDITION, INTEGER_MINIMUM, INTEGER_MAXIMUM, XOR]
