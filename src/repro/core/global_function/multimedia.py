"""The two-stage multimedia algorithms for global sensitive functions (§5.1).

Given the forest produced by a partitioning algorithm:

* **Local stage** — every fragment aggregates its members' operands with a
  broadcast-and-respond on its tree (run as a genuine message-passing
  protocol on the simulator); the fragment root ends up holding the partial
  result for its fragment.  Cost: O(√n) rounds, O(n) messages.
* **Global stage** — the fragment roots broadcast their partial results on
  the multiaccess channel.  With the deterministic Capetanakis schedule this
  takes O(√n log n) slots; with the randomized Metcalfe–Boggs access O(√n)
  expected slots.  Every node hears every successful slot, so every node can
  combine the partials and learn the value — no redistribution is needed.

The deterministic end-to-end bound is O(√(n log n log* n)) when the
partition is run with the *tightened balance* of Section 5.1 (stop the
partition at fragments of size √(n / (log n log* n)), leaving
O(√(n log n log* n)) of them); ``tightened_balance=True`` selects that
variant.  The randomized end-to-end bound is O(√n log* n) expected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import random

from repro.core.global_function.semigroup import GlobalSensitiveFunction
from repro.core.partition.deterministic import DeterministicPartitioner
from repro.core.partition.forest import SpanningForest
from repro.core.partition.randomized import RandomizedPartitioner
from repro.protocols.collision.base import run_contention
from repro.protocols.collision.capetanakis import CapetanakisContender
from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender
from repro.protocols.spanning.broadcast_convergecast import TreeAggregationFlyweight
from repro.protocols.symmetry.cole_vishkin import log_star
from repro.sim.adversity import AdversityState
from repro.sim.channel import SlottedChannel
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.sim.multimedia import MultimediaNetwork
from repro.topology.graph import WeightedGraph
from repro.topology.weights import assign_distinct_weights

NodeId = Hashable


@dataclass
class GlobalComputationResult:
    """Outcome of computing a global sensitive function on a multimedia network.

    Attributes:
        value: the computed function value (identical at every node).
        metrics: combined complexity of partition + local stage + global stage.
        num_fragments: number of fragments (= channel broadcasts needed).
        partition_rounds / local_rounds / global_slots: per-stage time costs.
        method: ``"deterministic"`` or ``"randomized"``.
    """

    value: object
    metrics: MetricsSnapshot
    num_fragments: int
    partition_rounds: int
    local_rounds: int
    global_slots: int
    method: str

    @property
    def total_rounds(self) -> int:
        """Return the end-to-end time in rounds/slots."""
        return self.metrics.rounds


def compute_global_function(
    graph: WeightedGraph,
    function: GlobalSensitiveFunction,
    inputs: Dict[NodeId, object],
    method: str = "deterministic",
    seed: Optional[int] = None,
    forest: Optional[SpanningForest] = None,
    tightened_balance: bool = False,
    metrics: Optional[MetricsRecorder] = None,
    adversity: Optional[AdversityState] = None,
) -> GlobalComputationResult:
    """Compute ``function`` over the distributed ``inputs`` on a multimedia network.

    Args:
        graph: the point-to-point topology (all nodes also share the channel).
        function: the global sensitive function (commutative semigroup).
        inputs: each node's operand; every node of ``graph`` must appear.
        method: ``"deterministic"`` (Section 3 partition + Capetanakis
            scheduling) or ``"randomized"`` (Section 4 partition +
            Metcalfe–Boggs scheduling).
        seed: randomness seed (used by the randomized method and to derive
            node-local random sources).
        forest: reuse an existing partition instead of computing one; its
            cost is then not charged.
        tightened_balance: deterministic method only — stop the partition at
            fragments of size √(n / (log n log* n)) as in Section 5.1.
        metrics: externally owned recorder to charge.
        adversity: optional adversity state; faults hit the two sim-layer
            stages (local aggregation and channel scheduling).  Stage 0, the
            partition, is computed abstractly (its cost is charged
            analytically, not simulated message by message), so the schedule
            cannot touch it — a limitation, not a modelling choice.

    Returns:
        A :class:`GlobalComputationResult`; ``result.value`` equals
        ``function.evaluate(inputs.values())``.

    Raises:
        ValueError: on an unknown method or missing inputs.
    """
    if method not in ("deterministic", "randomized"):
        raise ValueError(f"unknown method {method!r}")
    missing = [node for node in graph.nodes() if node not in inputs]
    if missing:
        raise ValueError(f"missing inputs for {len(missing)} node(s)")

    recorder = metrics if metrics is not None else MetricsRecorder()
    n = graph.num_nodes()

    # ------------------------------------------------------------------
    # stage 0: partition (unless one was supplied)
    # ------------------------------------------------------------------
    partition_rounds = 0
    if forest is None:
        rounds_before = recorder.rounds
        if method == "deterministic":
            weighted = graph if _has_distinct_weights(graph) else assign_distinct_weights(
                graph, seed=seed
            )
            target = None
            if tightened_balance and n >= 4:
                denominator = max(1.0, math.log2(n) * max(1, log_star(n)))
                target = max(1, math.ceil(math.sqrt(n / denominator)))
            partitioner = DeterministicPartitioner(
                weighted, target_size=target, metrics=recorder
            )
            forest = partitioner.run().forest
        else:
            partitioner = RandomizedPartitioner(graph, seed=seed, metrics=recorder)
            forest = partitioner.run().forest
        partition_rounds = recorder.rounds - rounds_before

    # ------------------------------------------------------------------
    # stage 1: local aggregation on the fragment trees (message passing)
    # ------------------------------------------------------------------
    rounds_before = recorder.rounds
    recorder.set_phase("local")
    node_inputs = forest.node_inputs()
    for node, extra in node_inputs.items():
        extra["value"] = inputs[node]
        extra["combine"] = function.combine
        extra["redistribute"] = False
    network = MultimediaNetwork(graph, seed=seed)
    simulation = network.run(
        TreeAggregationFlyweight,
        inputs=node_inputs,
        metrics=recorder,
        adversity=adversity,
    )
    recorder.set_phase(None)
    local_rounds = recorder.rounds - rounds_before
    partials = {
        core: simulation.results[core] for core in forest.cores
    }

    # ------------------------------------------------------------------
    # stage 2: the roots broadcast their partials on the channel
    # ------------------------------------------------------------------
    rounds_before = recorder.rounds
    recorder.set_phase("global")
    rng = random.Random(seed)
    if method == "deterministic":
        universe = max(n, max((int(c) for c in forest.cores), default=0) + 1)
        contenders = [
            CapetanakisContender(
                identity=int(core), universe_size=universe, payload=partials[core]
            )
            for core in forest.cores
        ]
    else:
        estimate = max(1, math.ceil(2 * math.sqrt(n)))
        # seeds are drawn eagerly (same master stream as the eager-rng form)
        # but generators materialise lazily — the skip-ahead scheduler only
        # ever draws from the first contender of a homogeneous batch
        contenders = [
            MetcalfeBoggsContender(
                identity=core,
                estimated_contenders=estimate,
                seed=rng.randrange(2**63),
                payload=partials[core],
            )
            for core in forest.cores
        ]
    if adversity is not None:
        channel = SlottedChannel(
            metrics=recorder, adversity=adversity.channel_adversity()
        )
        outcome = run_contention(
            contenders,
            metrics=recorder,
            channel=channel,
            max_slots=adversity.round_budget(n),
        )
    else:
        outcome = run_contention(contenders, metrics=recorder)
    recorder.set_phase(None)
    global_slots = recorder.rounds - rounds_before

    value = function.evaluate(outcome.broadcasts)
    return GlobalComputationResult(
        value=value,
        metrics=recorder.snapshot(),
        num_fragments=forest.num_fragments(),
        partition_rounds=partition_rounds,
        local_rounds=local_rounds,
        global_slots=global_slots,
        method=method,
    )


def _has_distinct_weights(graph: WeightedGraph) -> bool:
    weights = [edge.weight for edge in graph.edges()]
    return len(weights) == len(set(weights))
