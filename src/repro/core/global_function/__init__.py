"""Computing global sensitive functions in a multimedia network (Section 5).

A *global sensitive* function is an n-variate semigroup product whose value
cannot be determined from any n−1 of its operands (addition, minimum, XOR …).
The multimedia algorithms compute it in two stages: a **local stage** that
aggregates each fragment of the partition over the point-to-point network
(broadcast-and-respond on the fragment trees), and a **global stage** in
which the fragment roots broadcast their partial results on the channel,
scheduled deterministically (Capetanakis) or randomly (Metcalfe–Boggs).
The baselines — point-to-point only and channel only — realise the two
media's individual lower bounds and are used in the model-separation
experiment (E7).
"""

from repro.core.global_function.semigroup import (
    GlobalSensitiveFunction,
    BOOLEAN_OR,
    INTEGER_ADDITION,
    INTEGER_MAXIMUM,
    INTEGER_MINIMUM,
    XOR,
)
from repro.core.global_function.multimedia import (
    GlobalComputationResult,
    compute_global_function,
)
from repro.core.global_function.baselines import (
    BaselineResult,
    compute_on_channel_only,
    compute_on_point_to_point_only,
)

__all__ = [
    "GlobalSensitiveFunction",
    "BOOLEAN_OR",
    "INTEGER_ADDITION",
    "INTEGER_MAXIMUM",
    "INTEGER_MINIMUM",
    "XOR",
    "GlobalComputationResult",
    "compute_global_function",
    "BaselineResult",
    "compute_on_channel_only",
    "compute_on_point_to_point_only",
]
