"""Single-medium baselines for computing global sensitive functions.

Theorem 2 proves that any algorithm needs Ω(d) time on a point-to-point
network of diameter ``d`` and Ω(n) time on a broadcast channel alone.  These
baselines realise the natural algorithms for each medium (they are optimal up
to constants for the topologies the experiments use), so the model-separation
experiment (E7) can compare measured times of the multimedia algorithm
against each medium on its own:

* **point-to-point only** — grow a BFS tree from a distinguished leader,
  converge-cast the operands up the tree and broadcast the result back down:
  Θ(d) rounds, Θ(m + n) messages.
* **channel only** — every node must broadcast its operand (no node may be
  silent, by global sensitivity), scheduled either deterministically
  (Capetanakis, Θ(n log n) slots) or randomly (Metcalfe–Boggs, Θ(n) expected
  slots).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.global_function.semigroup import GlobalSensitiveFunction
from repro.protocols.collision.base import run_contention
from repro.protocols.collision.capetanakis import CapetanakisContender
from repro.protocols.collision.metcalfe_boggs import MetcalfeBoggsContender
from repro.protocols.spanning.broadcast_convergecast import TreeAggregationFlyweight
from repro.protocols.spanning.bfs import build_bfs_forest
from repro.protocols.spanning.tree_utils import children_map
from repro.sim.adversity import AdversityState
from repro.sim.channel import SlottedChannel
from repro.sim.metrics import MetricsRecorder, MetricsSnapshot
from repro.sim.multimedia import MultimediaNetwork
from repro.topology.graph import WeightedGraph

NodeId = Hashable


@dataclass
class BaselineResult:
    """Outcome of a single-medium baseline computation.

    Attributes:
        value: the computed function value.
        metrics: time/message accounting.
        medium: ``"point-to-point"`` or ``"channel"``.
        rounds: end-to-end time in rounds/slots.
    """

    value: object
    metrics: MetricsSnapshot
    medium: str
    rounds: int


def compute_on_point_to_point_only(
    graph: WeightedGraph,
    function: GlobalSensitiveFunction,
    inputs: Dict[NodeId, object],
    leader: Optional[NodeId] = None,
    seed: Optional[int] = None,
    metrics: Optional[MetricsRecorder] = None,
    adversity: Optional[AdversityState] = None,
) -> BaselineResult:
    """Compute the function using only the point-to-point network.

    A BFS spanning tree is grown from the ``leader`` (the minimum-identifier
    node by default — the paper's Ω(d) bound holds even with a distinguished
    leader), the operands are converge-cast to the leader and the result is
    broadcast back down so every node learns it.  The BFS construction is
    charged its textbook synchronous cost (eccentricity-of-leader rounds, at
    most two messages per link); the aggregation runs as a genuine
    message-passing protocol on the simulator — which is where an
    ``adversity`` schedule bites (the analytically charged BFS stage is out
    of its reach).
    """
    recorder = metrics if metrics is not None else MetricsRecorder()
    nodes = graph.nodes()
    if leader is None:
        leader = min(nodes, key=repr)
    recorder.set_phase("bfs")
    parents, _, labels = build_bfs_forest(graph, [leader])
    depth = max(labels.values()) if labels else 0
    recorder.record_round(depth)
    recorder.record_messages(2 * graph.num_edges())
    recorder.set_phase(None)

    recorder.set_phase("aggregate")
    children = children_map(parents)
    node_inputs = {
        node: {
            "parent": parents[node],
            "children": tuple(children[node]),
            "value": inputs[node],
            "combine": function.combine,
            "redistribute": True,
        }
        for node in nodes
    }
    network = MultimediaNetwork(graph, seed=seed)
    simulation = network.run(
        TreeAggregationFlyweight,
        inputs=node_inputs,
        metrics=recorder,
        adversity=adversity,
    )
    recorder.set_phase(None)
    value = simulation.results[leader]
    return BaselineResult(
        value=value,
        metrics=recorder.snapshot(),
        medium="point-to-point",
        rounds=recorder.rounds,
    )


def compute_on_channel_only(
    graph: WeightedGraph,
    function: GlobalSensitiveFunction,
    inputs: Dict[NodeId, object],
    method: str = "randomized",
    seed: Optional[int] = None,
    metrics: Optional[MetricsRecorder] = None,
    adversity: Optional[AdversityState] = None,
) -> BaselineResult:
    """Compute the function using only the multiaccess channel.

    Every node broadcasts its operand exactly once (global sensitivity means
    none may stay silent); the broadcasts are scheduled deterministically
    (Capetanakis tree splitting) or randomly (Metcalfe–Boggs with the exact
    count as the estimate).  Every node hears every broadcast and combines
    them locally.  An ``adversity`` schedule reaches this baseline only
    through jamming (it is channel-only by construction), which slows the
    contention and bounds it by the schedule's slot budget.

    Raises:
        ValueError: on an unknown ``method``.
    """
    if method not in ("deterministic", "randomized"):
        raise ValueError(f"unknown method {method!r}")
    recorder = metrics if metrics is not None else MetricsRecorder()
    nodes = graph.nodes()
    n = len(nodes)
    recorder.set_phase("channel")
    if method == "deterministic":
        universe = max(n, max((int(node) for node in nodes), default=0) + 1)
        contenders = [
            CapetanakisContender(
                identity=int(node), universe_size=universe, payload=inputs[node]
            )
            for node in nodes
        ]
    else:
        rng = random.Random(seed)
        # eager per-node seed draws (the v2 golden stream), lazy generators:
        # the skip-ahead scheduler materialises only the first one
        contenders = [
            MetcalfeBoggsContender(
                identity=node,
                estimated_contenders=max(1, n),
                seed=rng.randrange(2**63),
                payload=inputs[node],
            )
            for node in nodes
        ]
    if adversity is not None:
        channel = SlottedChannel(
            metrics=recorder, adversity=adversity.channel_adversity()
        )
        outcome = run_contention(
            contenders,
            metrics=recorder,
            channel=channel,
            max_slots=adversity.round_budget(n),
        )
    else:
        outcome = run_contention(contenders, metrics=recorder)
    recorder.set_phase(None)
    value = function.evaluate(outcome.broadcasts)
    return BaselineResult(
        value=value,
        metrics=recorder.snapshot(),
        medium="channel",
        rounds=recorder.rounds,
    )
