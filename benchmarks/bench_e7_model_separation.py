"""Benchmark E7 — model separation (Theorem 2 / Corollary 3)."""

from conftest import run_experiment

from repro.experiments import e07_model_separation as experiment


def test_e7_model_separation(benchmark):
    table = run_experiment(benchmark, experiment.run, sizes=(128, 256, 512))
    # at the largest size the multimedia network beats both single media
    last = table.rows[-1]
    assert last[-2] > 1.0 and last[-1] > 1.0
