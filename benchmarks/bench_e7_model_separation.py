"""Benchmark E7 — model separation (Theorem 2 / Corollary 3)."""

from conftest import run_experiment


def test_e7_model_separation(benchmark):
    result = run_experiment(benchmark, "e7")
    # at the largest size the multimedia network beats both single media
    last = result.rows[-1]
    assert last["speedup_vs_p2p"] > 1.0
    assert last["speedup_vs_channel"] > 1.0
