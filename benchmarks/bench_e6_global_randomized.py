"""Benchmark E6 — randomized global-sensitive-function computation (Section 5.1)."""

from conftest import run_experiment

from repro.experiments import e06_global_randomized as experiment


def test_e6_global_randomized(benchmark):
    table = run_experiment(
        benchmark, experiment.run, sizes=(64, 144, 256), seeds=(1, 2, 3)
    )
    assert all(row[-1] for row in table.rows)
