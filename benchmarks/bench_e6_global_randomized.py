"""Benchmark E6 — randomized global-sensitive-function computation (Section 5.1)."""

from conftest import run_experiment


def test_e6_global_randomized(benchmark):
    result = run_experiment(benchmark, "e6")
    assert all(row["values_correct"] for row in result.rows)
