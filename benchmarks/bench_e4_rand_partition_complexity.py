"""Benchmark E4 — randomized partition complexity and Las-Vegas restarts."""

from conftest import run_experiment


def test_e4_rand_partition_complexity(benchmark):
    result = run_experiment(benchmark, "e4")
    assert all(row["total_restarts"] <= 3 for row in result.rows)
