"""Benchmark E4 — randomized partition complexity and Las-Vegas restarts."""

from conftest import run_experiment

from repro.experiments import e04_rand_partition_complexity as experiment


def test_e4_rand_partition_complexity(benchmark):
    table = run_experiment(
        benchmark, experiment.run, sizes=(64, 144, 256), seeds=(1, 2, 3)
    )
    assert all(row[-1] <= 3 for row in table.rows)
