"""Benchmark E10 — synchronizer overhead, exact size, randomized size estimate."""

from conftest import run_experiment


def test_e10_model_variations(benchmark):
    result = run_experiment(benchmark, "e10")
    for row in result.rows:
        assert row["sync_msg_overhead(≤2)"] <= 2.0 + 1e-9  # Corollary 4: ≤ 2× messages
        assert row["det_size_exact"] is True               # Section 7.3: exact n
