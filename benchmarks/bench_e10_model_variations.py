"""Benchmark E10 — synchronizer overhead, exact size, randomized size estimate."""

from conftest import run_experiment

from repro.experiments import e10_model_variations as experiment


def test_e10_model_variations(benchmark):
    table = run_experiment(
        benchmark, experiment.run, sizes=(36, 64, 100), seeds=(1, 2, 3)
    )
    for row in table.rows:
        assert row[1] <= 2.0 + 1e-9  # Corollary 4: ≤ 2× messages
        assert row[4] is True        # Section 7.3: exact n
