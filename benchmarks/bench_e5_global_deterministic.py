"""Benchmark E5 — deterministic global-sensitive-function computation (Section 5.1)."""

from conftest import run_experiment

from repro.experiments import e05_global_deterministic as experiment


def test_e5_global_deterministic(benchmark):
    table = run_experiment(benchmark, experiment.run, sizes=(64, 144, 256))
    assert all(row[-1] for row in table.rows)
