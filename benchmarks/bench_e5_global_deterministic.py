"""Benchmark E5 — deterministic global-sensitive-function computation (Section 5.1)."""

from conftest import run_experiment


def test_e5_global_deterministic(benchmark):
    result = run_experiment(benchmark, "e5")
    assert all(row["value_correct"] for row in result.rows)
