"""Headless benchmark trajectory runner — thin shim over the package CLI.

The suite itself is declared by the experiment specs (see
:mod:`repro.experiments.registry`) and executed by
:mod:`repro.experiments.trajectory`; this script only bootstraps ``sys.path``
so the historical invocation keeps working from a plain checkout:

    PYTHONPATH=src python benchmarks/run_benchmarks.py --label after

which is equivalent to:

    PYTHONPATH=src python -m repro bench --label after
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments.trajectory import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
