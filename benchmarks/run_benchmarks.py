"""Headless benchmark trajectory runner for the e1–e10 experiment suite.

Runs every experiment sweep (on the same reduced sizes the ``bench_eNN_*``
pytest benchmarks use), times each one, extracts the message counts its table
reports, probes the largest feasible ``n`` for the hot experiments
(e2/e4/e9), and records everything under a named label in ``BENCH_core.json``
at the repository root.  Re-running with a different label merges into the
same file, so the file accumulates the performance trajectory across PRs:

    PYTHONPATH=src python benchmarks/run_benchmarks.py --label after

Labels are sequenced in the order they are first recorded; the runner writes
the per-experiment wall-clock speedup between every consecutive pair of
labels (``speedups``) in addition to the original ``speedup_before_to_after``
pair, so each PR's ≥1.5–2× targets are checked against its predecessor.

CI runs the suite in smoke mode:

    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick

which sweeps tiny sizes, skips the max-``n`` probes, and writes nothing (the
committed ``BENCH_core.json`` trajectory is never clobbered by CI) — it
exists to prove every experiment entry point still runs end to end.

The runner is deliberately dependency-free (no pytest-benchmark): it is the
thing CI and the driver can execute headlessly.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments import (  # noqa: E402
    e01_det_partition_quality,
    e02_det_partition_complexity,
    e03_rand_partition_quality,
    e04_rand_partition_complexity,
    e05_global_deterministic,
    e06_global_randomized,
    e07_model_separation,
    e08_lower_bound_gap,
    e09_mst,
    e10_model_variations,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

# Every experiment sweep with the sizes the bench_eNN pytest files use, so the
# JSON numbers and the pytest-benchmark numbers describe the same workloads.
SUITE: List[Tuple[str, Callable[[], object]]] = [
    ("e1", lambda: e01_det_partition_quality.run(sizes=(64, 144, 256))),
    ("e2", lambda: e02_det_partition_complexity.run(sizes=(64, 144, 256))),
    ("e3", lambda: e03_rand_partition_quality.run(sizes=(64, 144, 256), seeds=(1, 2, 3))),
    ("e4", lambda: e04_rand_partition_complexity.run(sizes=(64, 144, 256), seeds=(1, 2, 3))),
    ("e5", lambda: e05_global_deterministic.run(sizes=(64, 144, 256))),
    ("e6", lambda: e06_global_randomized.run(sizes=(64, 144, 256), seeds=(1, 2, 3))),
    ("e7", lambda: e07_model_separation.run(sizes=(128, 256, 512))),
    ("e8", lambda: e08_lower_bound_gap.run(params=((8, 8), (16, 8), (16, 16)))),
    ("e9", lambda: e09_mst.run(sizes=(64, 256, 1024, 2048))),
    ("e10", lambda: e10_model_variations.run(sizes=(36, 64, 100), seeds=(1, 2, 3))),
    # hot sweeps: the same experiments at sizes where wall time is measured in
    # seconds, so the before/after speedup numbers are not timer noise
    ("e2_hot", lambda: e02_det_partition_complexity.run(sizes=(1024, 4096, 16384))),
    ("e4_hot", lambda: e04_rand_partition_complexity.run(
        sizes=(1024, 4096, 16384), seeds=(1, 2))),
    ("e9_hot", lambda: e09_mst.run(sizes=(4096, 16384))),
    # scenario breadth: the scale-free and ad-hoc wireless topologies at
    # n ≥ 10^4 (the measured channel-only baseline is skipped there — it is
    # Θ(n) slots of Θ(n) work regardless of topology and would dwarf the rest
    # of the suite while adding nothing beyond the reported lower bound)
    ("e7_scale_free_hot", lambda: e07_model_separation.run(
        sizes=(4096, 10240), topology="scale_free", channel_baseline=False)),
    ("e7_ad_hoc_hot", lambda: e07_model_separation.run(
        sizes=(4096, 10240), topology="ad_hoc", channel_baseline=False)),
    ("e10_scale_free", lambda: e10_model_variations.run(
        sizes=(256, 1024), seeds=(1, 2), topology="scale_free")),
]

# Smoke-mode twin of SUITE: tiny sizes, every entry point (including the new
# topology kinds), a few seconds total.  CI runs this to prove the harness
# still executes end to end; the numbers are never recorded.
QUICK_SUITE: List[Tuple[str, Callable[[], object]]] = [
    ("e1", lambda: e01_det_partition_quality.run(sizes=(16, 36))),
    ("e2", lambda: e02_det_partition_complexity.run(sizes=(16, 36))),
    ("e3", lambda: e03_rand_partition_quality.run(sizes=(16, 36), seeds=(1,))),
    ("e4", lambda: e04_rand_partition_complexity.run(sizes=(16, 36), seeds=(1,))),
    ("e5", lambda: e05_global_deterministic.run(sizes=(16, 36))),
    ("e6", lambda: e06_global_randomized.run(sizes=(16, 36), seeds=(1,))),
    ("e7", lambda: e07_model_separation.run(sizes=(16, 32))),
    ("e8", lambda: e08_lower_bound_gap.run(params=((4, 4), (8, 4)))),
    ("e9", lambda: e09_mst.run(sizes=(16, 64))),
    ("e10", lambda: e10_model_variations.run(sizes=(16, 36), seeds=(1,))),
    ("e7_scale_free", lambda: e07_model_separation.run(
        sizes=(64, 128), topology="scale_free", channel_baseline=False)),
    ("e7_ad_hoc", lambda: e07_model_separation.run(
        sizes=(64, 128), topology="ad_hoc", channel_baseline=False)),
    ("e10_scale_free", lambda: e10_model_variations.run(
        sizes=(36,), seeds=(1,), topology="scale_free")),
]


def _message_counts(table) -> Dict[str, List[int]]:
    """Extract the per-row message counts from a table, when it reports any."""
    counts: Dict[str, List[int]] = {}
    for index, column in enumerate(table.columns):
        name = column.lower()
        if "message" in name and "bound" not in name and "/" not in name:
            counts[column] = [row[index] for row in table.rows]
    return counts


def run_suite(
    only: Optional[List[str]] = None,
    suite: Optional[List[Tuple[str, Callable[[], object]]]] = None,
) -> Dict[str, Dict[str, object]]:
    """Run (a subset of) the suite and return per-experiment stats."""
    results: Dict[str, Dict[str, object]] = {}
    for name, runner in (suite if suite is not None else SUITE):
        if only and name not in only:
            continue
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        ns = [row[0] for row in table.rows]
        results[name] = {
            "wall_seconds": round(elapsed, 4),
            "sweep_max_n": max(ns) if ns else None,
            "messages": _message_counts(table),
        }
        print(f"{name:>16}: {elapsed:8.3f}s  (max n = {results[name]['sweep_max_n']})")
    return results


# ----------------------------------------------------------------------
# max-feasible-n probes for the hot experiments
# ----------------------------------------------------------------------
def _probe(single_run: Callable[[int], None], start_n: int, budget: float) -> Dict[str, object]:
    """Double ``n`` until one run exceeds ``budget`` seconds; report the last fit."""
    n = start_n
    feasible = None
    feasible_seconds = None
    while n <= 2 ** 22:
        start = time.perf_counter()
        single_run(n)
        elapsed = time.perf_counter() - start
        if elapsed > budget:
            break
        feasible = n
        feasible_seconds = round(elapsed, 4)
        n *= 2
    return {
        "max_feasible_n": feasible,
        "seconds_at_max": feasible_seconds,
        "budget_seconds": budget,
    }


def probe_max_n(budget: float) -> Dict[str, Dict[str, object]]:
    """Probe the largest single-instance ``n`` each hot experiment can afford."""
    from repro.core.mst.multimedia_mst import MultimediaMST
    from repro.core.partition.deterministic import DeterministicPartitioner
    from repro.core.partition.randomized import RandomizedPartitioner
    from repro.experiments.harness import make_topology

    def det(n: int) -> None:
        DeterministicPartitioner(make_topology("grid", n, seed=11)).run()

    def rand(n: int) -> None:
        RandomizedPartitioner(
            make_topology("grid", n, seed=11), seed=1, las_vegas=True
        ).run()

    def mst(n: int) -> None:
        MultimediaMST(make_topology("ring", n, seed=11)).run()

    probes = {}
    for name, fn in (("e2", det), ("e4", rand), ("e9", mst)):
        probes[name] = _probe(fn, 64, budget)
        print(f"{name:>16}: max feasible n = {probes[name]['max_feasible_n']} "
              f"({probes[name]['seconds_at_max']}s/run, budget {budget}s)")
    return probes


# ----------------------------------------------------------------------
# JSON trajectory file
# ----------------------------------------------------------------------
def _pair_speedups(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, float]:
    """Per-experiment wall-clock speedups between two recorded runs.

    Entries that carry no timing on either side are skipped — probe-only
    entries (a ``--only`` run still writes the e2/e4/e9 max-``n`` probes)
    have no ``wall_seconds``.
    """
    speedups = {}
    for name, before_entry in before.items():
        before_seconds = before_entry.get("wall_seconds")
        after_seconds = after.get(name, {}).get("wall_seconds")
        if before_seconds and after_seconds:
            speedups[name] = round(before_seconds / after_seconds, 2)
    return speedups


def _chain_speedups(runs: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Speedups between every consecutive pair of labels (by sequence)."""
    ordered = sorted(runs, key=lambda label: runs[label].get("sequence", 0))
    chain: Dict[str, Dict[str, float]] = {}
    for earlier, later in zip(ordered, ordered[1:]):
        chain[f"{earlier}->{later}"] = _pair_speedups(
            runs[earlier].get("experiments", {}), runs[later].get("experiments", {})
        )
    return chain


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after",
                        help="name this run is recorded under (e.g. before/after)")
    parser.add_argument("--output", type=Path, default=None,
                        help="trajectory JSON file to merge into "
                             "(default: BENCH_core.json at the repo root)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only these experiments (e.g. --only e2 e4 e9)")
    parser.add_argument("--probe-budget", type=float, default=2.0,
                        help="per-run seconds allowed by the max-n probes (0 disables)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: tiny sweeps, no probes, and no "
                             "write to BENCH_core.json unless --output is given")
    parser.add_argument("--note", default="", help="free-form note stored with the run")
    args = parser.parse_args(argv)

    suite = QUICK_SUITE if args.quick else SUITE
    if args.only:
        unknown = set(args.only) - {name for name, _ in suite}
        if unknown:
            parser.error(f"unknown experiment(s): {', '.join(sorted(unknown))}")
    experiments = run_suite(args.only, suite=suite)
    run_probes = args.probe_budget > 0 and not args.quick
    probes = probe_max_n(args.probe_budget) if run_probes else {}
    for name, probe in probes.items():
        experiments.setdefault(name, {}).update(probe)

    if args.quick and args.output is None:
        print("quick mode: smoke run complete, trajectory file left untouched")
        return 0
    output = args.output if args.output is not None else DEFAULT_OUTPUT

    data: Dict[str, object] = {"schema": 1, "runs": {}}
    if output.exists():
        data = json.loads(output.read_text())
    runs = data.setdefault("runs", {})
    # legacy trajectory files predate the sequence field; the original two
    # labels are known to be PR 0 ("before") and PR 1 ("after")
    for legacy_sequence, legacy_label in enumerate(("before", "after"), start=1):
        if legacy_label in runs and "sequence" not in runs[legacy_label]:
            runs[legacy_label]["sequence"] = legacy_sequence
    previous = runs.get(args.label, {})
    sequence = previous.get(
        "sequence",
        1 + max((run.get("sequence", 0) for run in runs.values()), default=0),
    )
    runs[args.label] = {
        "note": args.note,
        "python": platform.python_version(),
        "sequence": sequence,
        "experiments": experiments,
    }
    if "before" in runs and "after" in runs:
        data["speedup_before_to_after"] = _pair_speedups(
            runs["before"].get("experiments", {}),
            runs["after"].get("experiments", {}),
        )
    data["speedups"] = _chain_speedups(runs)
    output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} (label={args.label!r})")
    for pair, speedups in data["speedups"].items():
        if speedups:
            print(f"speedups {pair}: {speedups}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
