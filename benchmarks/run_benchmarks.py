"""Headless benchmark trajectory runner for the e1–e10 experiment suite.

Runs every experiment sweep (on the same reduced sizes the ``bench_eNN_*``
pytest benchmarks use), times each one, extracts the message counts its table
reports, probes the largest feasible ``n`` for the hot experiments
(e2/e4/e9), and records everything under a named label in ``BENCH_core.json``
at the repository root.  Re-running with a different label merges into the
same file, so the file accumulates the performance trajectory across PRs:

    PYTHONPATH=src python benchmarks/run_benchmarks.py --label after

When both a ``before`` and an ``after`` run are present the runner also
writes the per-experiment speedups, which is how the ≥2× wall-clock targets
on e2/e4/e9 are checked.

The runner is deliberately dependency-free (no pytest-benchmark): it is the
thing CI and the driver can execute headlessly.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments import (  # noqa: E402
    e01_det_partition_quality,
    e02_det_partition_complexity,
    e03_rand_partition_quality,
    e04_rand_partition_complexity,
    e05_global_deterministic,
    e06_global_randomized,
    e07_model_separation,
    e08_lower_bound_gap,
    e09_mst,
    e10_model_variations,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

# Every experiment sweep with the sizes the bench_eNN pytest files use, so the
# JSON numbers and the pytest-benchmark numbers describe the same workloads.
SUITE: List[Tuple[str, Callable[[], object]]] = [
    ("e1", lambda: e01_det_partition_quality.run(sizes=(64, 144, 256))),
    ("e2", lambda: e02_det_partition_complexity.run(sizes=(64, 144, 256))),
    ("e3", lambda: e03_rand_partition_quality.run(sizes=(64, 144, 256), seeds=(1, 2, 3))),
    ("e4", lambda: e04_rand_partition_complexity.run(sizes=(64, 144, 256), seeds=(1, 2, 3))),
    ("e5", lambda: e05_global_deterministic.run(sizes=(64, 144, 256))),
    ("e6", lambda: e06_global_randomized.run(sizes=(64, 144, 256), seeds=(1, 2, 3))),
    ("e7", lambda: e07_model_separation.run(sizes=(128, 256, 512))),
    ("e8", lambda: e08_lower_bound_gap.run(params=((8, 8), (16, 8), (16, 16)))),
    ("e9", lambda: e09_mst.run(sizes=(64, 256, 1024, 2048))),
    ("e10", lambda: e10_model_variations.run(sizes=(36, 64, 100), seeds=(1, 2, 3))),
    # hot sweeps: the same experiments at sizes where wall time is measured in
    # seconds, so the before/after speedup numbers are not timer noise
    ("e2_hot", lambda: e02_det_partition_complexity.run(sizes=(1024, 4096, 16384))),
    ("e4_hot", lambda: e04_rand_partition_complexity.run(
        sizes=(1024, 4096, 16384), seeds=(1, 2))),
    ("e9_hot", lambda: e09_mst.run(sizes=(4096, 16384))),
]


def _message_counts(table) -> Dict[str, List[int]]:
    """Extract the per-row message counts from a table, when it reports any."""
    counts: Dict[str, List[int]] = {}
    for index, column in enumerate(table.columns):
        name = column.lower()
        if "message" in name and "bound" not in name and "/" not in name:
            counts[column] = [row[index] for row in table.rows]
    return counts


def run_suite(only: Optional[List[str]] = None) -> Dict[str, Dict[str, object]]:
    """Run (a subset of) the suite and return per-experiment stats."""
    results: Dict[str, Dict[str, object]] = {}
    for name, runner in SUITE:
        if only and name not in only:
            continue
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        ns = [row[0] for row in table.rows]
        results[name] = {
            "wall_seconds": round(elapsed, 4),
            "sweep_max_n": max(ns) if ns else None,
            "messages": _message_counts(table),
        }
        print(f"{name:>4}: {elapsed:8.3f}s  (max n = {results[name]['sweep_max_n']})")
    return results


# ----------------------------------------------------------------------
# max-feasible-n probes for the hot experiments
# ----------------------------------------------------------------------
def _probe(single_run: Callable[[int], None], start_n: int, budget: float) -> Dict[str, object]:
    """Double ``n`` until one run exceeds ``budget`` seconds; report the last fit."""
    n = start_n
    feasible = None
    feasible_seconds = None
    while n <= 2 ** 22:
        start = time.perf_counter()
        single_run(n)
        elapsed = time.perf_counter() - start
        if elapsed > budget:
            break
        feasible = n
        feasible_seconds = round(elapsed, 4)
        n *= 2
    return {
        "max_feasible_n": feasible,
        "seconds_at_max": feasible_seconds,
        "budget_seconds": budget,
    }


def probe_max_n(budget: float) -> Dict[str, Dict[str, object]]:
    """Probe the largest single-instance ``n`` each hot experiment can afford."""
    from repro.core.mst.multimedia_mst import MultimediaMST
    from repro.core.partition.deterministic import DeterministicPartitioner
    from repro.core.partition.randomized import RandomizedPartitioner
    from repro.experiments.harness import make_topology

    def det(n: int) -> None:
        DeterministicPartitioner(make_topology("grid", n, seed=11)).run()

    def rand(n: int) -> None:
        RandomizedPartitioner(
            make_topology("grid", n, seed=11), seed=1, las_vegas=True
        ).run()

    def mst(n: int) -> None:
        MultimediaMST(make_topology("ring", n, seed=11)).run()

    probes = {}
    for name, fn in (("e2", det), ("e4", rand), ("e9", mst)):
        probes[name] = _probe(fn, 64, budget)
        print(f"{name:>4}: max feasible n = {probes[name]['max_feasible_n']} "
              f"({probes[name]['seconds_at_max']}s/run, budget {budget}s)")
    return probes


# ----------------------------------------------------------------------
# JSON trajectory file
# ----------------------------------------------------------------------
def _speedups(runs: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """Compute before→after wall-clock speedups when both labels exist."""
    before = runs.get("before", {}).get("experiments", {})
    after = runs.get("after", {}).get("experiments", {})
    speedups = {}
    for name in before:
        if name in after and after[name]["wall_seconds"]:
            speedups[name] = round(
                before[name]["wall_seconds"] / after[name]["wall_seconds"], 2
            )
    return speedups


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after",
                        help="name this run is recorded under (e.g. before/after)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="trajectory JSON file to merge into")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only these experiments (e.g. --only e2 e4 e9)")
    parser.add_argument("--probe-budget", type=float, default=2.0,
                        help="per-run seconds allowed by the max-n probes (0 disables)")
    parser.add_argument("--note", default="", help="free-form note stored with the run")
    args = parser.parse_args(argv)

    if args.only:
        unknown = set(args.only) - {name for name, _ in SUITE}
        if unknown:
            parser.error(f"unknown experiment(s): {', '.join(sorted(unknown))}")
    experiments = run_suite(args.only)
    probes = probe_max_n(args.probe_budget) if args.probe_budget > 0 else {}
    for name, probe in probes.items():
        experiments.setdefault(name, {}).update(probe)

    data: Dict[str, object] = {"schema": 1, "runs": {}}
    if args.output.exists():
        data = json.loads(args.output.read_text())
    data.setdefault("runs", {})[args.label] = {
        "note": args.note,
        "python": platform.python_version(),
        "experiments": experiments,
    }
    data["speedup_before_to_after"] = _speedups(data["runs"])
    args.output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output} (label={args.label!r})")
    if data["speedup_before_to_after"]:
        print("speedups:", data["speedup_before_to_after"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
