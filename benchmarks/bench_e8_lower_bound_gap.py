"""Benchmark E8 — the Ω(min{d, √n}) lower bound and the upper/lower gap."""

from conftest import run_experiment


def test_e8_lower_bound_gap(benchmark):
    result = run_experiment(benchmark, "e8")
    assert all(row["lb ≤ measured"] for row in result.rows)
