"""Benchmark E8 — the Ω(min{d, √n}) lower bound and the upper/lower gap."""

from conftest import run_experiment

from repro.experiments import e08_lower_bound_gap as experiment


def test_e8_lower_bound_gap(benchmark):
    table = run_experiment(
        benchmark, experiment.run, params=((8, 8), (16, 8), (16, 16))
    )
    assert all(row[-2] for row in table.rows)
