"""Benchmark E3 — randomized partition quality (Section 4, Theorem 1)."""

from conftest import run_experiment

from repro.experiments import e03_rand_partition_quality as experiment


def test_e3_rand_partition_quality(benchmark):
    table = run_experiment(
        benchmark, experiment.run, sizes=(64, 144, 256), seeds=(1, 2, 3)
    )
    assert all(row[-1] for row in table.rows)
