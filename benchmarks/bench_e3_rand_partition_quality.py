"""Benchmark E3 — randomized partition quality (Section 4, Theorem 1)."""

from conftest import run_experiment


def test_e3_rand_partition_quality(benchmark):
    result = run_experiment(benchmark, "e3")
    assert all(row["structure_ok"] for row in result.rows)
