"""Benchmark E11 — multimedia-vs-p2p degradation under adversity schedules."""

from conftest import run_experiment


def test_e11_adversity_degradation(benchmark):
    result = run_experiment(benchmark, "e11")
    for row in result.rows:
        # every row is bounded: a medium either completes or reports "abort"
        assert row["status"] in ("ok", "abort:multimedia", "abort:p2p", "abort:both")
        assert isinstance(row["faults_injected"], int)
        if row["adversity"] != "crash":
            assert row["rounds_lost"] == 0  # only crash windows cost recovery rounds
