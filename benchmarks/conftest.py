"""Benchmark configuration.

Each ``bench_eNN_*.py`` file regenerates one experiment of EXPERIMENTS.md:
the benchmarked callable runs the experiment sweep (on slightly reduced sizes
so a full `pytest benchmarks/ --benchmark-only` stays in the minutes range)
and the rendered table is attached to the benchmark's ``extra_info`` and
printed, so the rows the paper-claim reproduction rests on are visible in the
benchmark output.
"""

from __future__ import annotations


def run_experiment(benchmark, experiment_run, **kwargs):
    """Benchmark ``experiment_run(**kwargs)`` and print its table once."""
    table = benchmark.pedantic(
        lambda: experiment_run(**kwargs), iterations=1, rounds=1
    )
    rendered = table.render()
    benchmark.extra_info["table"] = rendered
    print("\n" + rendered)
    return table
