"""Benchmark configuration.

Each ``bench_eNN_*.py`` file regenerates one experiment of EXPERIMENTS.md by
running its registered spec at the ``default`` preset — the exact workload
the benchmark trajectory (``python -m repro bench``) records in
``BENCH_core.json``, resolved through the same registry, so the two can
never drift apart.  The structured result is returned for assertions on its
row dictionaries; the rendered table is attached to the benchmark's
``extra_info`` and printed, so the rows the paper-claim reproduction rests
on are visible in the benchmark output.
"""

from __future__ import annotations

from repro.experiments.registry import DEFAULT_PRESET
from repro.experiments.runner import run_experiment as _run_experiment


def run_experiment(benchmark, experiment_id, preset=DEFAULT_PRESET, **overrides):
    """Benchmark one registered experiment sweep and print its table once."""
    result = benchmark.pedantic(
        lambda: _run_experiment(experiment_id, preset=preset, overrides=overrides),
        iterations=1,
        rounds=1,
    )
    rendered = result.to_table().render()
    benchmark.extra_info["table"] = rendered
    print("\n" + rendered)
    return result
