"""Benchmark E2 — deterministic partition complexity (Section 3)."""

from conftest import run_experiment


def test_e2_det_partition_complexity(benchmark):
    result = run_experiment(benchmark, "e2")
    # the measured/bound ratios stay within a constant band
    assert all(row["rounds/bound"] < 50 for row in result.rows)
