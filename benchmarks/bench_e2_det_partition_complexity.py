"""Benchmark E2 — deterministic partition complexity (Section 3)."""

from conftest import run_experiment

from repro.experiments import e02_det_partition_complexity as experiment


def test_e2_det_partition_complexity(benchmark):
    table = run_experiment(benchmark, experiment.run, sizes=(64, 144, 256))
    # the measured/bound ratios stay within a constant band
    assert all(row[5] < 50 for row in table.rows)
