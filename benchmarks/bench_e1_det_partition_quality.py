"""Benchmark E1 — deterministic partition quality (Section 3, Claims 1–2)."""

from conftest import run_experiment


def test_e1_det_partition_quality(benchmark):
    result = run_experiment(benchmark, "e1")
    assert all(row["all_bounds_hold"] for row in result.rows)
