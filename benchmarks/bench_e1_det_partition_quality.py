"""Benchmark E1 — deterministic partition quality (Section 3, Claims 1–2)."""

from conftest import run_experiment

from repro.experiments import e01_det_partition_quality as experiment


def test_e1_det_partition_quality(benchmark):
    table = run_experiment(benchmark, experiment.run, sizes=(64, 144, 256))
    assert all(row[-1] for row in table.rows)
