"""Benchmark E9 — the multimedia MST vs the point-to-point-only baseline."""

from conftest import run_experiment


def test_e9_mst(benchmark):
    result = run_experiment(benchmark, "e9")
    # exact MST everywhere, and the channel pays off at the largest size
    assert all(row["matches_kruskal"] for row in result.rows)
    assert result.rows[-1]["speedup"] > 1.0
