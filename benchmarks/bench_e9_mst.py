"""Benchmark E9 — the multimedia MST vs the point-to-point-only baseline."""

from conftest import run_experiment

from repro.experiments import e09_mst as experiment


def test_e9_mst(benchmark):
    table = run_experiment(benchmark, experiment.run, sizes=(64, 256, 1024, 2048))
    # exact MST everywhere, and the channel pays off at the largest size
    assert all(row[-1] for row in table.rows)
    assert table.rows[-1][-2] > 1.0
