"""Tests for the channel conflict-resolution protocols."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.collision.base import run_contention
from repro.protocols.collision.capetanakis import (
    CapetanakisContender,
    CapetanakisListener,
    deterministic_schedule_bound,
    universe_bits,
)
from repro.protocols.collision.greenberg_ladner import (
    GreenbergLadnerEstimator,
    estimate_error_factor,
    estimate_multiplicity,
)
from repro.protocols.collision.leader_election import (
    BitByBitLeaderElection,
    RandomizedLeaderElection,
    elect_leader,
)
from repro.protocols.collision.metcalfe_boggs import (
    MetcalfeBoggsContender,
    expected_slots_per_success,
)
from repro.sim.metrics import MetricsRecorder
from repro.sim.multimedia import MultimediaNetwork
from repro.topology.generators import complete_graph, ring_graph


class TestCapetanakis:
    def test_all_contenders_scheduled_exactly_once(self):
        ids = [3, 7, 11, 20, 21, 30]
        contenders = [CapetanakisContender(i, 32, payload=f"msg{i}") for i in ids]
        outcome = run_contention(contenders)
        assert sorted(outcome.order) == sorted(ids)
        assert sorted(outcome.broadcasts) == sorted(f"msg{i}" for i in ids)

    def test_slots_within_deterministic_bound(self):
        ids = list(range(0, 64, 3))
        contenders = [CapetanakisContender(i, 64) for i in ids]
        outcome = run_contention(contenders)
        assert outcome.slots_used <= deterministic_schedule_bound(len(ids), 64)

    def test_single_contender_single_slot(self):
        outcome = run_contention([CapetanakisContender(5, 8, payload="only")])
        assert outcome.slots_used == 1
        assert outcome.broadcasts == ["only"]

    def test_identity_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            CapetanakisContender(9, 8)

    def test_listener_tracks_termination(self):
        ids = [1, 2, 6]
        contenders = [CapetanakisContender(i, 8, payload=i) for i in ids]
        listener = CapetanakisListener(8)
        outcome = run_contention(contenders)
        # replay the channel history into the listener
        from repro.sim.channel import SlottedChannel

        channel = SlottedChannel()
        replay = [CapetanakisContender(i, 8, payload=i) for i in ids]
        slot = 0
        while not listener.finished:
            writes = [
                (c.identity, c.payload)
                for c in replay
                if not c.resolved and c.wants_to_transmit(slot)
            ]
            event = channel.resolve_slot(slot, writes)
            for c in replay:
                c.observe(event.public_view(), not c.resolved and (c.identity, c.payload) in writes)
            listener.observe(event.public_view())
            slot += 1
        assert sorted(listener.heard) == sorted(ids)
        assert slot == outcome.slots_used

    def test_universe_bits(self):
        assert universe_bits(1) == 1
        assert universe_bits(2) == 1
        assert universe_bits(8) == 3
        assert universe_bits(9) == 4

    @given(st.sets(st.integers(min_value=0, max_value=255), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_property_every_id_set_resolves(self, ids):
        contenders = [CapetanakisContender(i, 256, payload=i) for i in sorted(ids)]
        outcome = run_contention(contenders)
        assert sorted(outcome.order) == sorted(ids)
        assert outcome.slots_used <= deterministic_schedule_bound(len(ids), 256)


class TestMetcalfeBoggs:
    def test_all_contenders_eventually_scheduled(self):
        rng = random.Random(1)
        contenders = [
            MetcalfeBoggsContender(i, estimated_contenders=10, rng=random.Random(rng.random()), payload=i)
            for i in range(10)
        ]
        outcome = run_contention(contenders)
        assert sorted(outcome.order) == list(range(10))

    def test_expected_slots_close_to_linear(self):
        rng = random.Random(2)
        k = 30
        totals = []
        for trial in range(5):
            contenders = [
                MetcalfeBoggsContender(i, k, rng=random.Random(rng.random()))
                for i in range(k)
            ]
            totals.append(run_contention(contenders).slots_used)
        average = sum(totals) / len(totals)
        assert average <= expected_slots_per_success(k) * k * 1.8

    def test_estimate_must_be_positive(self):
        with pytest.raises(ValueError):
            MetcalfeBoggsContender(1, estimated_contenders=0)

    def test_expected_slots_per_success_bounds(self):
        assert expected_slots_per_success(1) == 1.0
        assert 1.0 < expected_slots_per_success(100) < 2.8


class TestGreenbergLadner:
    def test_estimate_within_constant_factor_typically(self):
        errors = []
        for seed in range(20):
            estimate = estimate_multiplicity(200, rng=random.Random(seed))
            errors.append(estimate_error_factor(200, estimate.estimate))
        errors.sort()
        # the median error is within a factor of 8 (high-probability claim)
        assert errors[len(errors) // 2] <= 8

    def test_zero_participants(self):
        estimate = estimate_multiplicity(0, rng=random.Random(1))
        assert estimate.rounds == 1
        assert estimate.estimate == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            estimate_multiplicity(-1)

    def test_protocol_form_agrees_across_nodes(self):
        network = MultimediaNetwork(ring_graph(16), seed=4)
        result = network.run(GreenbergLadnerEstimator)
        estimates = {value.estimate for value in result.results.values()}
        assert len(estimates) == 1
        assert result.metrics.point_to_point_messages == 0


class TestLeaderElection:
    def test_direct_election_returns_max(self):
        outcome = elect_leader([5, 9, 2, 14], id_bits=4)
        assert outcome.leader == 14
        assert outcome.slots_used == 4

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            elect_leader([3, 3])

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            elect_leader([])

    def test_bit_by_bit_protocol_elects_max_everywhere(self):
        network = MultimediaNetwork(complete_graph(10), seed=1)
        result = network.run(BitByBitLeaderElection)
        assert all(value == 9 for value in result.results.values())
        assert result.metrics.point_to_point_messages == 0

    def test_bit_by_bit_uses_log_n_slots(self):
        metrics = MetricsRecorder()
        elect_leader(list(range(32)), metrics=metrics)
        assert metrics.rounds == 5

    def test_randomized_election_agrees_and_is_valid(self):
        network = MultimediaNetwork(ring_graph(12), seed=9)
        result = network.run(RandomizedLeaderElection)
        winners = set(result.results.values())
        assert len(winners) == 1
        assert winners.pop() in set(range(12))
