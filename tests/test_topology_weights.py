"""Unit tests for weight assignment and the sequential MST reference."""

import pytest

from repro.topology.generators import grid_graph, ring_graph
from repro.topology.graph import WeightedGraph
from repro.topology.weights import (
    assign_distinct_weights,
    assign_random_weights,
    ensure_distinct_weights,
    minimum_spanning_tree_edges,
    weight_bits,
)


class TestWeightAssignment:
    def test_distinct_weights_are_distinct(self):
        graph = assign_distinct_weights(grid_graph(5, 5), seed=1)
        weights = [e.weight for e in graph.edges()]
        assert len(weights) == len(set(weights))

    def test_distinct_weights_are_permutation(self):
        graph = assign_distinct_weights(ring_graph(8), seed=2)
        weights = sorted(e.weight for e in graph.edges())
        assert weights == [float(i) for i in range(1, 9)]

    def test_random_weights_in_range(self):
        graph = assign_random_weights(ring_graph(10), low=2.0, high=3.0, seed=5)
        assert all(2.0 <= e.weight <= 3.0 for e in graph.edges())

    def test_random_weights_validate_range(self):
        with pytest.raises(ValueError):
            assign_random_weights(ring_graph(4), low=5.0, high=1.0)

    def test_ensure_distinct_preserves_order(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 3, 5.0)
        adjusted = ensure_distinct_weights(graph)
        weights = [e.weight for e in adjusted.edges()]
        assert len(set(weights)) == 3
        assert adjusted.weight(2, 3) > adjusted.weight(0, 1)

    def test_weight_bits(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 200.0)
        assert weight_bits(graph) == 8

    def test_original_graph_untouched(self):
        graph = ring_graph(6)
        assign_distinct_weights(graph, seed=1)
        assert all(e.weight == 1.0 for e in graph.edges())


class TestSequentialMST:
    def test_mst_of_ring_drops_heaviest(self):
        graph = assign_distinct_weights(ring_graph(6), seed=3)
        total, edges = minimum_spanning_tree_edges(graph)
        assert len(edges) == 5
        heaviest = max(graph.edges(), key=lambda e: e.weight)
        assert heaviest.key() not in {e.key() for e in edges}
        assert total == sum(e.weight for e in edges)

    def test_mst_disconnected_raises(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(ValueError):
            minimum_spanning_tree_edges(graph)
