"""Unit tests for the topology generators."""

import pytest

from repro.topology.generators import (
    ad_hoc_affectance_graph,
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    ray_graph,
    ray_graph_for,
    ring_graph,
    torus_graph,
)
from repro.topology.properties import diameter, is_connected


class TestBasicTopologies:
    def test_path_counts(self):
        graph = path_graph(10)
        assert graph.num_nodes() == 10
        assert graph.num_edges() == 9
        assert diameter(graph) == 9

    def test_path_requires_positive_size(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_ring_counts_and_diameter(self):
        graph = ring_graph(10)
        assert graph.num_edges() == 10
        assert diameter(graph) == 5

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.num_edges() == 15
        assert diameter(graph) == 1

    def test_grid_counts(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes() == 12
        assert graph.num_edges() == 3 * 3 + 2 * 4
        assert diameter(graph) == 5

    def test_torus_is_regular(self):
        graph = torus_graph(4, 4)
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_hypercube(self):
        graph = hypercube_graph(4)
        assert graph.num_nodes() == 16
        assert graph.num_edges() == 32
        assert diameter(graph) == 4


class TestRandomTopologies:
    def test_random_tree_is_a_tree(self):
        graph = random_tree(50, seed=4)
        assert graph.num_edges() == 49
        assert is_connected(graph)

    def test_random_tree_deterministic_given_seed(self):
        first = random_tree(30, seed=9)
        second = random_tree(30, seed=9)
        assert {e.key() for e in first.edges()} == {e.key() for e in second.edges()}

    def test_erdos_renyi_connected(self):
        graph = erdos_renyi_graph(40, 0.05, seed=1)
        assert is_connected(graph)
        assert graph.num_nodes() == 40

    def test_erdos_renyi_probability_validated(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_geometric_connected(self):
        graph = random_geometric_graph(60, seed=2)
        assert is_connected(graph)
        assert graph.num_nodes() == 60


class TestRayGraph:
    def test_shape(self):
        graph = ray_graph(4, 5)
        assert graph.num_nodes() == 21
        assert graph.degree(0) == 4
        assert diameter(graph) == 10

    def test_single_ray_is_a_path(self):
        graph = ray_graph(1, 6)
        assert graph.num_edges() == 6
        assert diameter(graph) == 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ray_graph(0, 3)
        with pytest.raises(ValueError):
            ray_graph(3, 0)

    def test_ray_graph_for_targets(self):
        graph = ray_graph_for(n=65, diameter=16)
        assert diameter(graph) == 16
        assert abs(graph.num_nodes() - 65) <= 16

    def test_leaves_have_degree_one(self):
        graph = ray_graph(3, 4)
        leaves = [v for v in graph.nodes() if graph.degree(v) == 1]
        assert len(leaves) == 3


class TestBarabasiAlbert:
    def test_counts_and_connectivity(self):
        graph = barabasi_albert_graph(500, attachment=2, seed=7)
        assert graph.num_nodes() == 500
        # every node after the seed stage contributes exactly `attachment` edges
        assert graph.num_edges() == 2 * (500 - 2)
        assert is_connected(graph)

    def test_degree_distribution_is_heavy_tailed(self):
        graph = barabasi_albert_graph(2000, attachment=2, seed=11)
        degrees = sorted(graph.degree(v) for v in graph.nodes())
        n = len(degrees)
        # every non-seed node has degree >= attachment
        assert degrees[0] >= 1
        assert degrees[n // 2] <= 4  # median stays near the attachment count
        # preferential attachment must concentrate mass on a few hubs: the
        # largest hub dwarfs the median degree and the uniform-random level
        assert degrees[-1] >= 10 * degrees[n // 2]
        # power-law sanity: the top decile holds a disproportionate share
        top_decile = sum(degrees[-n // 10:])
        assert top_decile >= 0.25 * sum(degrees)

    def test_deterministic_under_seed(self):
        a = barabasi_albert_graph(300, seed=5)
        b = barabasi_albert_graph(300, seed=5)
        assert a.edges() == b.edges()
        c = barabasi_albert_graph(300, seed=6)
        assert a.edges() != c.edges()

    def test_small_n_degenerates_to_complete(self):
        graph = barabasi_albert_graph(3, attachment=2, seed=1)
        assert graph.num_edges() == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(0)
        with pytest.raises(ValueError):
            barabasi_albert_graph(10, attachment=0)


class TestAdHocAffectance:
    def test_connected_and_sparse(self):
        graph = ad_hoc_affectance_graph(400, seed=3)
        assert graph.num_nodes() == 400
        assert is_connected(graph)
        # the default range keeps the network in the Θ(log n) degree regime,
        # far sparser than the plain geometric default
        average_degree = 2 * graph.num_edges() / graph.num_nodes()
        assert 3 <= average_degree <= 40

    def test_deterministic_under_seed(self):
        a = ad_hoc_affectance_graph(300, seed=9)
        b = ad_hoc_affectance_graph(300, seed=9)
        assert a.edges() == b.edges()
        c = ad_hoc_affectance_graph(300, seed=10)
        assert a.edges() != c.edges()

    @staticmethod
    def _edge_set(graph):
        return {tuple(sorted((edge.u, edge.v))) for edge in graph.edges()}

    def test_links_respect_the_smaller_range(self):
        # the same seed draws the same positions and the same range
        # fractions, so growing base_range can only add links (the link rule
        # is distance <= min of the two ranges, both proportional to base)
        narrow = ad_hoc_affectance_graph(
            200, seed=4, power_spread=2.0, base_range=0.08, ensure_connected=False
        )
        wide = ad_hoc_affectance_graph(
            200, seed=4, power_spread=2.0, base_range=0.16, ensure_connected=False
        )
        assert 0 < narrow.num_edges() < wide.num_edges()
        assert self._edge_set(narrow) <= self._edge_set(wide)
        # a larger power spread raises both endpoints' ranges (same draws),
        # so it can only add links as well
        boosted = ad_hoc_affectance_graph(
            200, seed=4, power_spread=3.0, base_range=0.08, ensure_connected=False
        )
        assert self._edge_set(narrow) <= self._edge_set(boosted)

    def test_range_extremes(self):
        # ranges covering the whole unit square link every pair; ranges
        # smaller than any inter-node gap link none
        everyone = ad_hoc_affectance_graph(
            40, seed=2, base_range=2.0, ensure_connected=False
        )
        assert everyone.num_edges() == 40 * 39 // 2
        nobody = ad_hoc_affectance_graph(
            40, seed=2, base_range=1e-9, ensure_connected=False
        )
        assert nobody.num_edges() == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ad_hoc_affectance_graph(0)
        with pytest.raises(ValueError):
            ad_hoc_affectance_graph(10, power_spread=0.5)


class TestAdHocAffectanceExposure:
    def test_flag_does_not_change_the_graph(self):
        # the affectance values are computed post hoc from stored positions
        # and ranges — requesting them must not shift a single RNG draw, so
        # the graph is identical with and without the flag (this is what
        # keeps the v1 golden era, which pins these edge lists, untouched)
        plain = ad_hoc_affectance_graph(128, seed=7)
        exposed, affectance = ad_hoc_affectance_graph(
            128, seed=7, return_affectance=True
        )
        assert plain.edges() == exposed.edges()
        assert isinstance(affectance, dict)

    def test_affectance_covers_exactly_the_links(self):
        graph, affectance = ad_hoc_affectance_graph(
            96, seed=5, return_affectance=True
        )
        expected_keys = {
            (edge.u, edge.v) if edge.u < edge.v else (edge.v, edge.u)
            for edge in graph.edges()
        }
        assert set(affectance) == expected_keys

    def test_in_range_links_have_affectance_at_most_one(self):
        # α = distance / min(range_u, range_v): ≤ 1 for genuine radio links,
        # > 1 only on the stitched connectivity bridges
        graph, affectance = ad_hoc_affectance_graph(
            200, seed=4, ensure_connected=False, return_affectance=True
        )
        assert affectance
        assert all(0.0 < alpha <= 1.0 for alpha in affectance.values())

    def test_stitched_bridges_exceed_one(self):
        # with a tiny range, connectivity stitching must add out-of-range
        # bridges, and their affectance reflects that
        graph, affectance = ad_hoc_affectance_graph(
            40, seed=2, base_range=1e-6, return_affectance=True
        )
        assert graph.num_edges() > 0
        assert all(alpha > 1.0 for alpha in affectance.values())
