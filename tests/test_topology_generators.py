"""Unit tests for the topology generators."""

import pytest

from repro.topology.generators import (
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    ray_graph,
    ray_graph_for,
    ring_graph,
    torus_graph,
)
from repro.topology.properties import diameter, is_connected


class TestBasicTopologies:
    def test_path_counts(self):
        graph = path_graph(10)
        assert graph.num_nodes() == 10
        assert graph.num_edges() == 9
        assert diameter(graph) == 9

    def test_path_requires_positive_size(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_ring_counts_and_diameter(self):
        graph = ring_graph(10)
        assert graph.num_edges() == 10
        assert diameter(graph) == 5

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.num_edges() == 15
        assert diameter(graph) == 1

    def test_grid_counts(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes() == 12
        assert graph.num_edges() == 3 * 3 + 2 * 4
        assert diameter(graph) == 5

    def test_torus_is_regular(self):
        graph = torus_graph(4, 4)
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_hypercube(self):
        graph = hypercube_graph(4)
        assert graph.num_nodes() == 16
        assert graph.num_edges() == 32
        assert diameter(graph) == 4


class TestRandomTopologies:
    def test_random_tree_is_a_tree(self):
        graph = random_tree(50, seed=4)
        assert graph.num_edges() == 49
        assert is_connected(graph)

    def test_random_tree_deterministic_given_seed(self):
        first = random_tree(30, seed=9)
        second = random_tree(30, seed=9)
        assert {e.key() for e in first.edges()} == {e.key() for e in second.edges()}

    def test_erdos_renyi_connected(self):
        graph = erdos_renyi_graph(40, 0.05, seed=1)
        assert is_connected(graph)
        assert graph.num_nodes() == 40

    def test_erdos_renyi_probability_validated(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_geometric_connected(self):
        graph = random_geometric_graph(60, seed=2)
        assert is_connected(graph)
        assert graph.num_nodes() == 60


class TestRayGraph:
    def test_shape(self):
        graph = ray_graph(4, 5)
        assert graph.num_nodes() == 21
        assert graph.degree(0) == 4
        assert diameter(graph) == 10

    def test_single_ray_is_a_path(self):
        graph = ray_graph(1, 6)
        assert graph.num_edges() == 6
        assert diameter(graph) == 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ray_graph(0, 3)
        with pytest.raises(ValueError):
            ray_graph(3, 0)

    def test_ray_graph_for_targets(self):
        graph = ray_graph_for(n=65, diameter=16)
        assert diameter(graph) == 16
        assert abs(graph.num_nodes() - 65) <= 16

    def test_leaves_have_degree_one(self):
        graph = ray_graph(3, 4)
        leaves = [v for v in graph.nodes() if graph.degree(v) == 1]
        assert len(leaves) == 3
