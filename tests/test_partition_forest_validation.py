"""Tests for the fragment/forest data structures and the partition validators."""

import math

import pytest

from repro.core.partition.forest import Fragment, SpanningForest
from repro.core.partition.validation import validate_partition
from repro.topology.generators import grid_graph, path_graph
from repro.topology.weights import assign_distinct_weights


def path_forest():
    """Two fragments covering a 6-node path: {0,1,2} rooted at 0, {3,4,5} at 5."""
    left = Fragment(core=0, parents={0: None, 1: 0, 2: 1})
    right = Fragment(core=5, parents={5: None, 4: 5, 3: 4})
    return SpanningForest([left, right])


class TestFragment:
    def test_basic_properties(self):
        fragment = Fragment(core=0, parents={0: None, 1: 0, 2: 1, 3: 1})
        assert fragment.size == 4
        assert fragment.radius == 2
        assert sorted(fragment.members) == [0, 1, 2, 3]
        assert fragment.level() == 2
        assert sorted(fragment.children()[1]) == [2, 3]
        assert (3, 1) in fragment.tree_edges()

    def test_singleton_default(self):
        fragment = Fragment(core=7)
        assert fragment.size == 1
        assert fragment.radius == 0

    def test_core_must_be_root(self):
        with pytest.raises(ValueError):
            Fragment(core=1, parents={0: None, 1: 0})

    def test_validate_detects_second_root(self):
        fragment = Fragment(core=0, parents={0: None, 1: 0})
        fragment.parents[2] = None
        with pytest.raises(ValueError):
            fragment.validate()


class TestSpanningForest:
    def test_lookup_and_statistics(self):
        forest = path_forest()
        assert forest.num_fragments() == 2
        assert forest.num_nodes() == 6
        assert forest.core_of(2) == 0
        assert forest.fragment_of(4).core == 5
        assert forest.max_radius() == 2
        assert forest.min_size() == 3

    def test_overlapping_fragments_rejected(self):
        a = Fragment(core=0, parents={0: None, 1: 0})
        b = Fragment(core=1, parents={1: None})
        with pytest.raises(ValueError):
            SpanningForest([a, b])

    def test_from_parent_map_round_trip(self):
        parents = {0: None, 1: 0, 2: 1, 5: None, 4: 5, 3: 4}
        forest = SpanningForest.from_parent_map(parents)
        assert forest.num_fragments() == 2
        assert forest.parent_map() == parents

    def test_node_inputs_describe_structure(self):
        forest = path_forest()
        inputs = forest.node_inputs()
        assert inputs[1]["parent"] == 0
        assert inputs[1]["children"] == (2,)
        assert inputs[1]["core"] == 0


class TestValidatePartition:
    def test_valid_partition_passes(self):
        graph = assign_distinct_weights(path_graph(6), seed=1)
        report = validate_partition(path_forest(), graph, check_mst_subtrees=True)
        assert report.ok
        assert report.subtrees_of_mst is True
        assert report.covers_all_nodes

    def test_missing_node_detected(self):
        graph = path_graph(7)
        report = validate_partition(path_forest(), graph)
        assert not report.ok
        assert not report.covers_all_nodes

    def test_non_link_tree_edge_detected(self):
        graph = path_graph(6)
        bad = SpanningForest(
            [Fragment(core=0, parents={0: None, 2: 0}),
             Fragment(core=1, parents={1: None}),
             Fragment(core=3, parents={3: None, 4: 3, 5: 4})]
        )
        report = validate_partition(bad, graph)
        assert not report.edges_exist
        assert not report.ok

    def test_bound_violations_reported(self):
        graph = grid_graph(4, 4)
        singletons = SpanningForest(
            [Fragment(core=node) for node in graph.nodes()]
        )
        report = validate_partition(
            singletons, graph,
            min_size_bound=math.sqrt(16),
            max_fragments_bound=math.sqrt(16),
        )
        assert not report.ok
        assert any("fragments" in v for v in report.violations)

    def test_ratios(self):
        graph = path_graph(6)
        report = validate_partition(path_forest(), graph)
        assert report.sqrt_n == pytest.approx(math.sqrt(6))
        assert report.fragment_count_ratio == pytest.approx(2 / math.sqrt(6))
        assert report.min_size_ratio > 1.0
