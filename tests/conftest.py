"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.topology.generators import grid_graph, ring_graph
from repro.topology.weights import assign_distinct_weights


@pytest.fixture
def small_grid():
    """A 4×4 grid with distinct integer weights (n=16, m=24)."""
    return assign_distinct_weights(grid_graph(4, 4), seed=1)


@pytest.fixture
def medium_grid():
    """An 8×8 grid with distinct integer weights (n=64, m=112)."""
    return assign_distinct_weights(grid_graph(8, 8), seed=2)


@pytest.fixture
def small_ring():
    """A 12-node ring with distinct weights."""
    return assign_distinct_weights(ring_graph(12), seed=3)
