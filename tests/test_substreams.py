"""Per-node substream derivation tests (``repro.sim.substreams``).

The v4 stream-era contract: a node's random source is a pure function of
``(master_seed, scope, node_id)`` — pairwise-distinct across nodes and
scopes, independent of the order nodes are visited in, and therefore stable
across serial/process/sharded executors (the backend bit-identity matrix in
``test_executors.py`` exercises the executor half end to end).
"""

from __future__ import annotations

import random

from repro.sim.substreams import NodeStreams, substream_seed


class TestSubstreamSeed:
    def test_deterministic(self):
        assert substream_seed(5, "sim.multimedia", 7) == substream_seed(
            5, "sim.multimedia", 7
        )

    def test_fits_random_seed_range(self):
        for key in (0, 1, "a", (1, 2), -3):
            seed = substream_seed(123, "scope", key)
            assert 0 <= seed < 2**63

    def test_pairwise_distinct_across_nodes(self):
        seeds = [substream_seed(11, "sim.multimedia", node) for node in range(2048)]
        assert len(set(seeds)) == len(seeds)

    def test_distinct_across_scopes(self):
        assert substream_seed(11, "sim.multimedia", 0) != substream_seed(
            11, "sim.synchronizer", 0
        )

    def test_distinct_across_masters(self):
        assert substream_seed(11, "sim.multimedia", 0) != substream_seed(
            12, "sim.multimedia", 0
        )

    def test_string_and_int_keys_do_not_collide(self):
        # repr-based hashing keeps 1 and "1" apart
        assert substream_seed(1, "s", 1) != substream_seed(1, "s", "1")


class TestNodeStreams:
    def test_seed_matches_free_function(self):
        streams = NodeStreams(7, "sim.multimedia")
        assert streams.seed_for(3) == substream_seed(7, "sim.multimedia", 3)

    def test_rng_for_reproduces_stream(self):
        streams = NodeStreams(7, "sim.multimedia")
        draws = [streams.rng_for(3).random() for _ in range(2)]
        assert draws[0] == draws[1]
        assert draws[0] == random.Random(streams.seed_for(3)).random()

    def test_independent_of_visit_order(self):
        streams = NodeStreams(7, "sim.multimedia")
        forward = {node: streams.seed_for(node) for node in range(16)}
        backward = {node: streams.seed_for(node) for node in reversed(range(16))}
        assert forward == backward

    def test_fresh_generator_per_call(self):
        # each call is an independent source positioned at the stream start:
        # consuming one must not advance another
        streams = NodeStreams(7, "sim.multimedia")
        first = streams.rng_for(3)
        first.random()
        assert streams.rng_for(3).random() == random.Random(
            streams.seed_for(3)
        ).random()

    def test_scope_property(self):
        assert NodeStreams(0, "sim.synchronizer").scope == "sim.synchronizer"
