"""Unit tests for the point-to-point network and the slotted channel."""

import pytest

from repro.sim.channel import SlottedChannel
from repro.sim.errors import ProtocolError, TopologyError
from repro.sim.events import SlotState
from repro.sim.metrics import MetricsRecorder
from repro.sim.network import PointToPointNetwork
from repro.topology.generators import path_graph
from repro.topology.graph import WeightedGraph


class TestPointToPointNetwork:
    def test_rejects_empty_and_disconnected(self):
        with pytest.raises(TopologyError):
            PointToPointNetwork(WeightedGraph())
        disconnected = WeightedGraph()
        disconnected.add_nodes([0, 1])
        with pytest.raises(TopologyError):
            PointToPointNetwork(disconnected)
        PointToPointNetwork(disconnected, require_connected=False)

    def test_delivery_one_round_later(self):
        network = PointToPointNetwork(path_graph(3))
        network.accept_sends(0, [(1, "hello")], round_index=0)
        assert network.deliver(0) == {}
        inboxes = network.deliver(1)
        assert len(inboxes[1]) == 1
        assert inboxes[1][0].payload == "hello"
        assert not network.has_in_flight()

    def test_non_neighbor_send_rejected(self):
        network = PointToPointNetwork(path_graph(3))
        with pytest.raises(ProtocolError):
            network.accept_sends(0, [(2, "x")], round_index=0)

    def test_message_counting(self):
        metrics = MetricsRecorder()
        network = PointToPointNetwork(path_graph(4), metrics=metrics)
        network.accept_sends(1, [(0, "a"), (2, "b")], round_index=0)
        assert metrics.point_to_point_messages == 2
        network.deliver(1)
        assert network.delivered_total == 2


class TestSlottedChannel:
    def test_idle_success_collision(self):
        channel = SlottedChannel()
        idle = channel.resolve_slot(0, [])
        assert idle.state is SlotState.IDLE
        success = channel.resolve_slot(1, [(7, "payload")])
        assert success.state is SlotState.SUCCESS
        assert success.payload == "payload"
        assert success.writer == 7
        collision = channel.resolve_slot(2, [(1, "a"), (2, "b")])
        assert collision.state is SlotState.COLLISION
        assert collision.payload is None

    def test_history_and_utilisation(self):
        channel = SlottedChannel()
        channel.resolve_slot(0, [])
        channel.resolve_slot(1, [(1, "x")])
        channel.resolve_slot(2, [(1, "x"), (2, "y")])
        assert channel.slots_elapsed == 3
        assert len(channel.successes()) == 1
        assert channel.utilisation() == pytest.approx(1 / 3)

    def test_metrics_charging(self):
        metrics = MetricsRecorder()
        channel = SlottedChannel(metrics=metrics)
        channel.resolve_slot(0, [(1, "x"), (2, "y")])
        assert metrics.channel_collision == 1
        assert metrics.channel_write_attempts == 2

    def test_empty_channel_utilisation(self):
        assert SlottedChannel().utilisation() == 0.0
