"""Tests for the lower-bound formulas (5.2) and size computation (7.3/7.4)."""

import math

import pytest

from repro.core.lower_bounds import (
    broadcast_lower_bound,
    claim4_sensitivity_trace,
    lower_bound_for_graph,
    multimedia_lower_bound,
    multimedia_upper_bound_randomized,
    point_to_point_lower_bound,
)
from repro.core.size_estimation import (
    compute_size_deterministically,
    estimate_size_randomized,
)
from repro.topology.generators import grid_graph, ray_graph, ring_graph
from repro.topology.properties import diameter


class TestBoundFormulas:
    def test_point_to_point_bound_is_diameter(self):
        assert point_to_point_lower_bound(17) == 17
        with pytest.raises(ValueError):
            point_to_point_lower_bound(-1)

    def test_broadcast_bound_is_half_n(self):
        assert broadcast_lower_bound(10) == 5
        assert broadcast_lower_bound(11) == 5

    def test_multimedia_bound_is_min_of_d_and_sqrt_n(self):
        assert multimedia_lower_bound(10_000, 4) == 1          # d dominates
        assert multimedia_lower_bound(64, 1000) == 2            # √n dominates
        assert multimedia_lower_bound(10_000, 1000) == 25

    def test_lower_bound_for_graph_dispatch(self):
        graph = ring_graph(20)
        assert lower_bound_for_graph(graph, "point-to-point") == diameter(graph)
        assert lower_bound_for_graph(graph, "channel") == 10
        assert lower_bound_for_graph(graph, "multimedia") == int(math.sqrt(20) // 4)
        with pytest.raises(ValueError):
            lower_bound_for_graph(graph, "carrier-pigeon")

    def test_upper_bound_exceeds_lower_bound(self):
        for n in (64, 256, 1024, 4096):
            assert multimedia_upper_bound_randomized(n) >= multimedia_lower_bound(n, n)


class TestClaim4Adversary:
    def test_horizon_tracks_min_d_sqrt_n(self):
        # wide shallow ray graph: d small, so d/4 governs
        shallow = claim4_sensitivity_trace(n=401, d=8)
        assert shallow.horizon >= 8 // 4 - 1
        # long thin ray graph: √n governs
        deep = claim4_sensitivity_trace(n=257, d=128)
        assert deep.horizon >= int(math.sqrt(257) / 4) - 1

    def test_sensitivity_is_non_increasing(self):
        trace = claim4_sensitivity_trace(n=200, d=20)
        assert all(a >= b for a, b in zip(trace.steps, trace.steps[1:]))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            claim4_sensitivity_trace(n=2, d=8)
        with pytest.raises(ValueError):
            claim4_sensitivity_trace(n=100, d=1)

    def test_matches_ray_graph_construction(self):
        graph = ray_graph(8, 8)
        trace = claim4_sensitivity_trace(graph.num_nodes(), diameter(graph))
        assert trace.horizon >= 1


class TestSizeComputation:
    def test_deterministic_size_is_exact(self):
        graph = grid_graph(6, 6)
        result = compute_size_deterministically(graph, seed=1)
        assert result.n == 36
        assert result.phases_used >= 1
        assert result.scheduling_slots > 0

    def test_deterministic_size_on_ring(self):
        graph = ring_graph(30)
        result = compute_size_deterministically(graph, seed=2)
        assert result.n == 30

    def test_randomized_estimate_reasonable(self):
        graph = grid_graph(10, 10)
        estimates = [
            estimate_size_randomized(graph, seed=seed) for seed in range(15)
        ]
        median_error = sorted(e.error_factor for e in estimates)[7]
        assert median_error <= 8
        assert all(e.true_n == 100 for e in estimates)

    def test_empty_graph_rejected(self):
        from repro.topology.graph import WeightedGraph

        with pytest.raises(ValueError):
            estimate_size_randomized(WeightedGraph())
        with pytest.raises(ValueError):
            compute_size_deterministically(WeightedGraph())
