"""Regression tests for the batched round-loop fast paths.

The round-loop overhaul (preallocated inboxes with swap-based delivery,
cached public channel views, the ``_acted`` collection guard, the active-node
dispatch list) must be observationally identical to the per-message loop it
replaced; these tests pin the edge cases the fast paths skirt around.
"""

import pytest

from repro.sim.errors import ProtocolError
from repro.sim.events import SlotState, idle_event
from repro.sim.channel import SlottedChannel
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.network import PointToPointNetwork
from repro.sim.node import NodeProtocol
from repro.topology.generators import path_graph, ring_graph


class TestBatchedDelivery:
    def test_future_sends_are_held_back(self):
        # the slow path: messages stamped for the current round stay queued
        network = PointToPointNetwork(path_graph(3))
        network.accept_sends(0, [(1, "early")], round_index=0)
        network.accept_sends(2, [(1, "late")], round_index=1)
        inboxes = network.deliver(1)
        assert [m.payload for m in inboxes[1]] == ["early"]
        assert network.has_in_flight()
        inboxes = network.deliver(2)
        assert [m.payload for m in inboxes[1]] == ["late"]
        assert not network.has_in_flight()

    def test_mixed_ready_and_future_in_one_inbox(self):
        network = PointToPointNetwork(path_graph(3))
        network.accept_sends(0, [(1, "a")], round_index=0)
        network.accept_sends(2, [(1, "b")], round_index=1)
        network.accept_sends(0, [(1, "c")], round_index=1)
        inboxes = network.deliver(1)
        assert [m.payload for m in inboxes[1]] == ["a"]
        inboxes = network.deliver(2)
        assert sorted(m.payload for m in inboxes[1]) == ["b", "c"]

    def test_delivered_inboxes_are_fresh_lists(self):
        # a protocol may keep a reference to its inbox; the next round's
        # sends must not appear in it
        network = PointToPointNetwork(path_graph(3))
        network.accept_sends(0, [(1, "one")], round_index=0)
        first = network.deliver(1)[1]
        network.accept_sends(0, [(1, "two")], round_index=1)
        second = network.deliver(2)[1]
        assert [m.payload for m in first] == ["one"]
        assert [m.payload for m in second] == ["two"]

    def test_partial_batch_counts_messages_before_error(self):
        from repro.sim.metrics import MetricsRecorder

        metrics = MetricsRecorder()
        network = PointToPointNetwork(path_graph(3), metrics=metrics)
        with pytest.raises(ProtocolError):
            network.accept_sends(0, [(1, "ok"), (2, "bad link")], round_index=0)
        assert metrics.point_to_point_messages == 1

    def test_partial_batch_keeps_one_round_delay(self):
        # a caller that catches the error must still see the synchronous
        # model's delay: the queued message is not deliverable in its own
        # send round
        network = PointToPointNetwork(path_graph(3))
        with pytest.raises(ProtocolError):
            network.accept_sends(0, [(1, "ok"), (2, "bad link")], round_index=0)
        assert network.deliver(0) == {}
        assert [m.payload for m in network.deliver(1)[1]] == ["ok"]

    def test_quiet_inbox_is_immutable(self):
        # all mail-less nodes share one inbox; mutating it must fail loudly
        observed = []

        class Prodder(NodeProtocol):
            def on_round(self, inbox, channel):
                observed.append(inbox)
                self.halt()

        MultimediaNetwork(path_graph(2)).run(Prodder)
        assert observed and all(len(inbox) == 0 for inbox in observed)
        with pytest.raises(AttributeError):
            observed[0].append("phantom")


class TestPublicViewCache:
    def test_idle_event_is_its_own_public_view(self):
        event = idle_event(3)
        assert event.public_view() is event

    def test_success_view_hides_writers_and_is_cached(self):
        event = SlottedChannel().resolve_slot(0, [(7, "payload")])
        public = event.public_view()
        assert public.writers == ()
        assert public.payload == "payload"
        assert public.writer == 7
        assert event.public_view() is public

    def test_collision_view_hides_writers(self):
        event = SlottedChannel().resolve_slot(0, [(1, "a"), (2, "b")])
        assert event.writers == (1, 2)
        assert event.public_view().writers == ()
        assert event.public_view().state is SlotState.COLLISION


class TestActionCollection:
    def _protocol(self):
        ctx_graph = path_graph(3)
        network = MultimediaNetwork(ctx_graph)
        ctx = network.build_contexts()[1]

        class Noop(NodeProtocol):
            def on_round(self, inbox, channel):
                pass

        return Noop(ctx)

    def test_quiet_round_collects_nothing_without_allocating(self):
        protocol = self._protocol()
        assert protocol._acted is False
        outbox_before = protocol._outbox
        outbox, payload, wrote = protocol._collect_actions()
        assert outbox == [] and payload is None and wrote is False
        assert protocol._outbox is outbox_before

    def test_send_marks_acted_and_collect_resets(self):
        protocol = self._protocol()
        protocol.send(0, "x")
        assert protocol._acted is True
        outbox, _, wrote = protocol._collect_actions()
        assert outbox == [(0, "x")] and wrote is False
        assert protocol._acted is False

    def test_broadcast_then_send_still_rejects_duplicates(self):
        protocol = self._protocol()
        protocol.send_to_all_neighbors("hello")
        assert protocol._acted is True
        with pytest.raises(ProtocolError):
            protocol.send(0, "again")

    def test_channel_write_marks_acted(self):
        protocol = self._protocol()
        protocol.channel_write("w")
        assert protocol._acted is True
        _, payload, wrote = protocol._collect_actions()
        assert payload == "w" and wrote is True


class TestRoundLoopSemantics:
    def test_message_sent_in_round_r_arrives_in_round_r_plus_one(self):
        arrivals = {}

        class PingOnce(NodeProtocol):
            def on_start(self):
                if self.node_id == 0:
                    self.send(1, "ping")

            def on_round(self, inbox, channel):
                for message in inbox:
                    arrivals[self.node_id] = (message.payload, channel.slot)
                    self.halt()
                    return
                if self.node_id == 0:
                    self.halt()

        MultimediaNetwork(path_graph(2)).run(PingOnce)
        payload, observed_slot = arrivals[1]
        assert payload == "ping"
        # round 1 observes slot 0's resolution, so the message sent in round
        # 0 arrived exactly one round later
        assert observed_slot == 0

    def test_drain_rounds_resolve_idle_slots_after_everyone_halts(self):
        class SendAndHaltImmediately(NodeProtocol):
            def on_start(self):
                self.send_to_all_neighbors("bye")
                self.halt("done")

            def on_round(self, inbox, channel):  # pragma: no cover
                raise AssertionError("halted nodes are never dispatched")

        result = MultimediaNetwork(ring_graph(4)).run(SendAndHaltImmediately)
        # one round for the sends, one drain round for the in-flight messages
        assert result.rounds == 2
        assert all(event.is_idle() for event in result.channel_history)
        assert isinstance(result.channel_history, tuple)

    def test_halted_in_constructor_short_circuits(self):
        class BornDone(NodeProtocol):
            def __init__(self, ctx):
                super().__init__(ctx)
                self.halt("early")

            def on_round(self, inbox, channel):  # pragma: no cover
                raise AssertionError("never scheduled")

        result = MultimediaNetwork(path_graph(3)).run(BornDone)
        assert result.rounds == 0
        assert set(result.results.values()) == {"early"}

    def test_reusing_the_network_object_is_deterministic(self):
        class CoinFlip(NodeProtocol):
            def on_start(self):
                self.halt(self.ctx.rng.random())

            def on_round(self, inbox, channel):  # pragma: no cover
                raise AssertionError("halts at start")

        network = MultimediaNetwork(ring_graph(5), seed=42)
        first = network.run(CoinFlip).results
        second = network.run(CoinFlip).results
        assert first == second
