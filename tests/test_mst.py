"""Tests for the MST algorithms (Kruskal reference, multimedia, p2p baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.complexity import mst_time_bound
from repro.core.mst.ghs_baseline import PointToPointMST
from repro.core.mst.kruskal import kruskal_mst, same_tree, spanning_tree_weight
from repro.core.mst.multimedia_mst import MultimediaMST
from repro.topology.generators import (
    erdos_renyi_graph,
    grid_graph,
    ring_graph,
)
from repro.topology.graph import WeightedGraph
from repro.topology.weights import assign_distinct_weights

try:
    import networkx as nx
except ImportError:  # pragma: no cover
    nx = None


class TestKruskal:
    def test_simple_triangle(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(0, 2, 3.0)
        mst = kruskal_mst(graph)
        assert mst.total_weight == 3.0
        assert len(mst) == 2

    def test_disconnected_rejected(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_node(5)
        with pytest.raises(ValueError):
            kruskal_mst(graph)

    def test_spanning_tree_weight_helper(self):
        graph = assign_distinct_weights(ring_graph(5), seed=1)
        mst = kruskal_mst(graph)
        assert spanning_tree_weight(graph, mst.edge_keys()) == mst.total_weight

    @pytest.mark.skipif(nx is None, reason="networkx unavailable")
    def test_matches_networkx(self):
        graph = assign_distinct_weights(erdos_renyi_graph(40, 0.1, seed=3), seed=3)
        ours = kruskal_mst(graph)
        reference = nx.Graph()
        for edge in graph.edges():
            reference.add_edge(edge.u, edge.v, weight=edge.weight)
        expected = sum(
            data["weight"] for _, _, data in nx.minimum_spanning_edges(reference, data=True)
        )
        assert ours.total_weight == pytest.approx(expected)


class TestMultimediaMST:
    def test_exact_mst_on_grid(self, medium_grid):
        result = MultimediaMST(medium_grid).run()
        reference = kruskal_mst(medium_grid)
        assert same_tree(result.mst, reference)
        assert result.initial_fragments >= 1
        assert result.merge_phases

    def test_exact_mst_on_ring(self):
        graph = assign_distinct_weights(ring_graph(64), seed=7)
        result = MultimediaMST(graph).run()
        assert same_tree(result.mst, kruskal_mst(graph))

    def test_time_within_constant_of_bound(self, medium_grid):
        result = MultimediaMST(medium_grid).run()
        assert result.total_rounds <= 40 * mst_time_bound(medium_grid.num_nodes())

    def test_phases_halve_current_fragments(self, medium_grid):
        result = MultimediaMST(medium_grid).run()
        for record in result.merge_phases:
            assert record.current_fragments_after <= record.current_fragments_before

    def test_repeated_weights_rejected(self):
        graph = ring_graph(6)  # unit weights, all equal
        with pytest.raises(ValueError):
            MultimediaMST(graph)

    def test_disconnected_rejected(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_node(2)
        with pytest.raises(ValueError):
            MultimediaMST(graph)

    @given(st.integers(min_value=3, max_value=8), st.integers(min_value=0, max_value=60))
    @settings(max_examples=12, deadline=None)
    def test_property_matches_kruskal_on_random_grids(self, side, seed):
        graph = assign_distinct_weights(grid_graph(side, side), seed=seed)
        result = MultimediaMST(graph).run()
        assert same_tree(result.mst, kruskal_mst(graph))


class TestPointToPointBaseline:
    def test_exact_mst(self, medium_grid):
        result = PointToPointMST(medium_grid).run()
        assert same_tree(result.mst, kruskal_mst(medium_grid))
        assert result.phases >= 1

    def test_exact_mst_on_sparse_random_graph(self):
        graph = assign_distinct_weights(erdos_renyi_graph(60, 0.06, seed=8), seed=8)
        result = PointToPointMST(graph).run()
        assert same_tree(result.mst, kruskal_mst(graph))

    def test_multimedia_faster_on_large_ring(self):
        # the crossover sits between n ≈ 1k and 2k on rings (see EXPERIMENTS.md,
        # E9): beyond it the multimedia algorithm's O(√n log n) time beats the
        # point-to-point baseline's Θ(n log n), with the gap growing with n
        graph = assign_distinct_weights(ring_graph(2048), seed=2)
        multimedia = MultimediaMST(graph).run()
        baseline = PointToPointMST(graph).run()
        assert same_tree(multimedia.mst, baseline.mst)
        assert multimedia.total_rounds < baseline.total_rounds

    def test_repeated_weights_rejected(self):
        with pytest.raises(ValueError):
            PointToPointMST(ring_graph(5))
