"""Smoke tests for the experiment harness: every experiment runs end to end on
tiny instances and reproduces the paper's qualitative claims."""

import pytest

from repro.experiments import harness
from repro.experiments import (
    e01_det_partition_quality,
    e02_det_partition_complexity,
    e03_rand_partition_quality,
    e04_rand_partition_complexity,
    e05_global_deterministic,
    e06_global_randomized,
    e07_model_separation,
    e08_lower_bound_gap,
    e09_mst,
    e10_model_variations,
)


class TestHarness:
    def test_make_topology_kinds(self):
        for kind in ("grid", "ring", "geometric"):
            graph = harness.make_topology(kind, 30, seed=1)
            assert graph.num_nodes() >= 25
        with pytest.raises(ValueError):
            harness.make_topology("hyperloop", 30)

    def test_sweep_sizes(self):
        rows = harness.sweep_sizes((16, 36), lambda g: {"nodes": g.num_nodes()})
        assert len(rows) == 2
        assert rows[0]["nodes"] == rows[0]["n"]


class TestExperimentsProduceTables:
    def test_e1_all_bounds_hold(self):
        table = e01_det_partition_quality.run(sizes=(36, 64))
        assert all(row[-1] for row in table.rows)

    def test_e2_ratios_bounded(self):
        table = e02_det_partition_complexity.run(sizes=(36, 64))
        ratios = [row[5] for row in table.rows]
        assert all(ratio < 50 for ratio in ratios)

    def test_e3_structure_ok(self):
        table = e03_rand_partition_quality.run(sizes=(36,), seeds=(1, 2))
        assert all(row[-1] for row in table.rows)

    def test_e4_no_excessive_restarts(self):
        table = e04_rand_partition_complexity.run(sizes=(36,), seeds=(1, 2))
        assert all(row[-1] <= 2 for row in table.rows)

    def test_e5_values_correct(self):
        table = e05_global_deterministic.run(sizes=(36,))
        assert all(row[-1] for row in table.rows)

    def test_e6_values_correct(self):
        table = e06_global_randomized.run(sizes=(36,), seeds=(1, 2))
        assert all(row[-1] for row in table.rows)

    def test_e7_multimedia_beats_both_at_scale(self):
        table = e07_model_separation.run(sizes=(512,))
        row = table.rows[0]
        speedup_vs_p2p, speedup_vs_channel = row[-2], row[-1]
        assert speedup_vs_p2p > 1.0
        assert speedup_vs_channel > 1.0

    def test_e8_lower_bound_respected(self):
        table = e08_lower_bound_gap.run(params=((8, 8),))
        assert all(row[-2] for row in table.rows)

    def test_e9_mst_matches_kruskal(self):
        table = e09_mst.run(sizes=(36, 64))
        assert all(row[-1] for row in table.rows)

    def test_e10_synchronizer_and_sizes(self):
        table = e10_model_variations.run(sizes=(36,), seeds=(1, 2))
        row = table.rows[0]
        assert row[1] <= 2.0 + 1e-9
        assert row[4] is True
