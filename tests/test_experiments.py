"""Smoke tests for the experiment harness: every experiment runs end to end on
tiny instances and reproduces the paper's qualitative claims."""

import pytest

from repro.experiments import harness
from repro.experiments import (
    e01_det_partition_quality,
    e02_det_partition_complexity,
    e03_rand_partition_quality,
    e04_rand_partition_complexity,
    e05_global_deterministic,
    e06_global_randomized,
    e07_model_separation,
    e08_lower_bound_gap,
    e09_mst,
    e10_model_variations,
)


class TestHarness:
    def test_make_topology_kinds(self):
        for kind in ("grid", "ring", "geometric", "scale_free", "ad_hoc"):
            graph = harness.make_topology(kind, 30, seed=1)
            assert graph.num_nodes() >= 25
        with pytest.raises(ValueError):
            harness.make_topology("hyperloop", 30)

    def test_make_topology_new_kinds_connected_and_deterministic(self):
        from repro.topology.properties import is_connected

        for kind in ("scale_free", "ad_hoc"):
            graph = harness.make_topology(kind, 100, seed=7)
            assert is_connected(graph)
            again = harness.make_topology(kind, 100, seed=7)
            assert graph.edges() == again.edges()

    def test_topology_diameter_matches_exact(self):
        from repro.topology.properties import diameter

        for kind, n in (
            ("ring", 30),
            ("ring", 31),
            ("grid", 36),
            ("geometric", 40),
            ("scale_free", 60),
            ("ad_hoc", 60),
        ):
            graph = harness.make_topology(kind, n, seed=3)
            assert harness.topology_diameter(kind, graph) == diameter(graph)

    def test_topology_diameter_large_n_fallback(self, monkeypatch):
        # above the exact-scan cutoff the irregular kinds use the double
        # sweep; shrink the cutoff so the branch runs at test sizes
        from repro.topology.properties import approximate_diameter, diameter

        monkeypatch.setattr(harness, "EXACT_DIAMETER_MAX_N", 10)
        for kind in ("geometric", "scale_free", "ad_hoc"):
            graph = harness.make_topology(kind, 64, seed=5)
            reported = harness.topology_diameter(kind, graph)
            assert reported == approximate_diameter(graph)
            exact = diameter(graph)
            # the double sweep is a lower bound, never an overestimate
            assert reported <= exact
            assert reported >= max(1, exact // 2)
        # regular kinds keep their closed forms regardless of the cutoff
        ring = harness.make_topology("ring", 64, seed=5)
        assert harness.topology_diameter("ring", ring) == 32

    def test_sweep_sizes(self):
        rows = harness.sweep_sizes((16, 36), lambda g: {"nodes": g.num_nodes()})
        assert len(rows) == 2
        assert rows[0]["nodes"] == rows[0]["n"]


class TestExperimentsProduceTables:
    def test_e1_all_bounds_hold(self):
        table = e01_det_partition_quality.run(sizes=(36, 64))
        assert all(row[-1] for row in table.rows)

    def test_e2_ratios_bounded(self):
        table = e02_det_partition_complexity.run(sizes=(36, 64))
        ratios = [row[5] for row in table.rows]
        assert all(ratio < 50 for ratio in ratios)

    def test_e3_structure_ok(self):
        table = e03_rand_partition_quality.run(sizes=(36,), seeds=(1, 2))
        assert all(row[-1] for row in table.rows)

    def test_e4_no_excessive_restarts(self):
        table = e04_rand_partition_complexity.run(sizes=(36,), seeds=(1, 2))
        assert all(row[-1] <= 2 for row in table.rows)

    def test_e5_values_correct(self):
        table = e05_global_deterministic.run(sizes=(36,))
        assert all(row[-1] for row in table.rows)

    def test_e6_values_correct(self):
        table = e06_global_randomized.run(sizes=(36,), seeds=(1, 2))
        assert all(row[-1] for row in table.rows)

    def test_e7_multimedia_beats_both_at_scale(self):
        table = e07_model_separation.run(sizes=(512,))
        row = table.rows[0]
        speedup_vs_p2p, speedup_vs_channel = row[-2], row[-1]
        assert speedup_vs_p2p > 1.0
        assert speedup_vs_channel > 1.0

    def test_e7_runs_on_new_topology_kinds(self):
        for kind in ("scale_free", "ad_hoc"):
            table = e07_model_separation.run(
                sizes=(64,), topology=kind, channel_baseline=False
            )
            row = table.rows[0]
            assert row[0] == 64
            # the measured channel baseline is skipped, the bound still shown
            assert row[4] == "-"
            assert row[6] >= 64 // 2

    def test_e10_runs_on_new_topology_kinds(self):
        table = e10_model_variations.run(
            sizes=(36,), seeds=(1,), topology="scale_free"
        )
        row = table.rows[0]
        assert row[1] <= 2.0 + 1e-9
        assert row[4] is True

    def test_e8_lower_bound_respected(self):
        table = e08_lower_bound_gap.run(params=((8, 8),))
        assert all(row[-2] for row in table.rows)

    def test_e9_mst_matches_kruskal(self):
        table = e09_mst.run(sizes=(36, 64))
        assert all(row[-1] for row in table.rows)

    def test_e10_synchronizer_and_sizes(self):
        table = e10_model_variations.run(sizes=(36,), seeds=(1, 2))
        row = table.rows[0]
        assert row[1] <= 2.0 + 1e-9
        assert row[4] is True
