"""Smoke tests for the experiment harness: every experiment runs end to end on
tiny instances (through the spec registry and unified runner) and reproduces
the paper's qualitative claims."""

import pytest

from repro.experiments import harness
from repro.experiments.runner import run_experiment


class TestHarness:
    def test_make_topology_kinds(self):
        for kind in ("grid", "ring", "geometric", "scale_free", "ad_hoc"):
            graph = harness.make_topology(kind, 30, seed=1)
            assert graph.num_nodes() >= 25
        with pytest.raises(ValueError):
            harness.make_topology("hyperloop", 30)

    def test_make_topology_new_kinds_connected_and_deterministic(self):
        from repro.topology.properties import is_connected

        for kind in ("scale_free", "ad_hoc"):
            graph = harness.make_topology(kind, 100, seed=7)
            assert is_connected(graph)
            again = harness.make_topology(kind, 100, seed=7)
            assert graph.edges() == again.edges()

    def test_topology_diameter_matches_exact(self):
        from repro.topology.properties import diameter

        for kind, n in (
            ("ring", 30),
            ("ring", 31),
            ("grid", 36),
            ("geometric", 40),
            ("scale_free", 60),
            ("ad_hoc", 60),
        ):
            graph = harness.make_topology(kind, n, seed=3)
            assert harness.topology_diameter(kind, graph) == diameter(graph)

    def test_topology_diameter_large_n_fallback(self, monkeypatch):
        # above the exact-scan cutoff the irregular kinds use the double
        # sweep; shrink the cutoff so the branch runs at test sizes
        from repro.topology.properties import approximate_diameter, diameter

        monkeypatch.setattr(harness, "EXACT_DIAMETER_MAX_N", 10)
        for kind in ("geometric", "scale_free", "ad_hoc"):
            graph = harness.make_topology(kind, 64, seed=5)
            reported = harness.topology_diameter(kind, graph)
            assert reported == approximate_diameter(graph)
            exact = diameter(graph)
            # the double sweep is a lower bound, never an overestimate
            assert reported <= exact
            assert reported >= max(1, exact // 2)
        # regular kinds keep their closed forms regardless of the cutoff
        ring = harness.make_topology("ring", 64, seed=5)
        assert harness.topology_diameter("ring", ring) == 32

    def test_sweep_sizes(self):
        rows = harness.sweep_sizes((16, 36), lambda g: {"nodes": g.num_nodes()})
        assert len(rows) == 2
        assert rows[0]["nodes"] == rows[0]["n"]


class TestExperimentConfig:
    def test_graphs_is_deprecated_and_honours_topology_seed(self):
        config = harness.ExperimentConfig(sizes=(16, 36), topology_seed=5)
        with pytest.deprecated_call():
            graphs = config.graphs()
        assert [g.num_nodes() for g in graphs] == [16, 36]
        expected = [harness.make_topology("grid", n, seed=5) for n in (16, 36)]
        assert [g.edges() for g in graphs] == [g.edges() for g in expected]

    def test_graphs_default_seed_matches_historical_value(self):
        config = harness.ExperimentConfig(sizes=(16,))
        with pytest.deprecated_call():
            (graph,) = config.graphs()
        assert graph.edges() == harness.make_topology("grid", 16, seed=11).edges()


class TestExperimentsProduceRows:
    def test_e1_all_bounds_hold(self):
        result = run_experiment("e1", overrides={"sizes": (36, 64)})
        assert all(row["all_bounds_hold"] for row in result.rows)

    def test_e2_ratios_bounded(self):
        result = run_experiment("e2", overrides={"sizes": (36, 64)})
        assert all(row["rounds/bound"] < 50 for row in result.rows)

    def test_e3_structure_ok(self):
        result = run_experiment("e3", overrides={"sizes": (36,), "seeds": (1, 2)})
        assert all(row["structure_ok"] for row in result.rows)

    def test_e4_no_excessive_restarts(self):
        result = run_experiment("e4", overrides={"sizes": (36,), "seeds": (1, 2)})
        assert all(row["total_restarts"] <= 2 for row in result.rows)

    def test_e5_values_correct(self):
        result = run_experiment("e5", overrides={"sizes": (36,)})
        assert all(row["value_correct"] for row in result.rows)

    def test_e6_values_correct(self):
        result = run_experiment("e6", overrides={"sizes": (36,), "seeds": (1, 2)})
        assert all(row["values_correct"] for row in result.rows)

    def test_e7_multimedia_beats_both_at_scale(self):
        result = run_experiment("e7", overrides={"sizes": (512,)})
        row = result.rows[0]
        assert row["speedup_vs_p2p"] > 1.0
        assert row["speedup_vs_channel"] > 1.0

    def test_e7_runs_on_new_topology_kinds(self):
        for kind in ("scale_free", "ad_hoc"):
            result = run_experiment(
                "e7",
                overrides={
                    "sizes": (64,), "topology": kind, "channel_baseline": False
                },
            )
            row = result.rows[0]
            assert row["n"] == 64
            # the measured channel baseline is skipped, the bound still shown
            assert row["t_channel_only"] == "-"
            assert row["lb_channel"] >= 64 // 2

    def test_e8_lower_bound_respected(self):
        result = run_experiment("e8", overrides={"params": ((8, 8),)})
        assert all(row["lb ≤ measured"] for row in result.rows)

    def test_e9_mst_matches_kruskal(self):
        result = run_experiment("e9", overrides={"sizes": (36, 64)})
        assert all(row["matches_kruskal"] for row in result.rows)

    def test_e10_synchronizer_and_sizes(self):
        result = run_experiment("e10", overrides={"sizes": (36,), "seeds": (1, 2)})
        row = result.rows[0]
        assert row["sync_msg_overhead(≤2)"] <= 2.0 + 1e-9
        assert row["det_size_exact"] is True

    def test_e10_runs_on_new_topology_kinds(self):
        result = run_experiment(
            "e10",
            overrides={"sizes": (36,), "seeds": (1,), "topology": "scale_free"},
        )
        row = result.rows[0]
        assert row["sync_msg_overhead(≤2)"] <= 2.0 + 1e-9
        assert row["det_size_exact"] is True


class TestLegacyRunWrappers:
    """The module-level ``run()`` wrappers stay drop-in compatible."""

    def test_run_returns_identical_table(self):
        from repro.experiments import e01_det_partition_quality as e1

        table = e1.run(sizes=(16, 36))
        result = run_experiment("e1", overrides={"sizes": (16, 36)})
        assert table.columns == list(result.columns)
        assert table.rows == [
            [row[column] for column in result.columns] for row in result.rows
        ]
