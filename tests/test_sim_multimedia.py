"""Integration tests for the multimedia simulation driver."""

from typing import List

import pytest

from repro.sim.errors import ProtocolError, SimulationTimeout
from repro.sim.events import ChannelEvent, Message
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.node import NodeProtocol
from repro.topology.generators import complete_graph, path_graph, ring_graph


class FloodMax(NodeProtocol):
    """Every node learns the maximum node identifier by flooding (no channel)."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self._best = ctx.node_id
        self._rounds = 0

    def on_start(self):
        self.send_to_all_neighbors(self._best)

    def on_round(self, inbox: List[Message], channel: ChannelEvent):
        self._rounds += 1
        improved = False
        for message in inbox:
            if message.payload > self._best:
                self._best = message.payload
                improved = True
        if improved:
            self.send_to_all_neighbors(self._best)
        if self._rounds >= self.ctx.n:
            self.halt(self._best)


class SingleBroadcaster(NodeProtocol):
    """Node 0 broadcasts once on the channel; everybody halts on hearing it."""

    def on_start(self):
        if self.node_id == 0:
            self.channel_write(("announce", self.node_id))

    def on_round(self, inbox, channel):
        if channel.is_success():
            self.halt(channel.payload)


class NeverHalts(NodeProtocol):
    def on_round(self, inbox, channel):
        pass


class DoubleSender(NodeProtocol):
    def on_start(self):
        neighbor = self.neighbors[0]
        self.send(neighbor, "a")
        self.send(neighbor, "b")

    def on_round(self, inbox, channel):
        self.halt()


class TestMultimediaNetwork:
    def test_flood_max_on_ring(self):
        network = MultimediaNetwork(ring_graph(9))
        result = network.run(FloodMax)
        assert all(value == 8 for value in result.results.values())
        # flooding needs at least diameter rounds
        assert result.rounds >= 4

    def test_channel_broadcast_heard_by_all(self):
        network = MultimediaNetwork(path_graph(6))
        result = network.run(SingleBroadcaster)
        assert all(value == ("announce", 0) for value in result.results.values())
        assert result.metrics.channel_success == 1
        assert result.metrics.point_to_point_messages == 0

    def test_timeout_raised_for_non_terminating_protocol(self):
        network = MultimediaNetwork(path_graph(3))
        with pytest.raises(SimulationTimeout):
            network.run(NeverHalts, max_rounds=20)

    def test_two_messages_on_one_link_rejected(self):
        network = MultimediaNetwork(path_graph(2))
        with pytest.raises(ProtocolError):
            network.run(DoubleSender, max_rounds=5)

    def test_metrics_count_messages_and_rounds(self):
        network = MultimediaNetwork(complete_graph(5))
        result = network.run(FloodMax)
        assert result.metrics.point_to_point_messages >= 4 * 5
        assert result.metrics.rounds == result.rounds

    def test_contexts_receive_inputs_and_n(self):
        network = MultimediaNetwork(path_graph(4), seed=1)
        contexts = network.build_contexts(inputs={0: {"value": 42}})
        assert contexts[0].extra["value"] == 42
        assert contexts[2].extra == {}
        assert contexts[3].n == 4

    def test_n_unknown_mode(self):
        network = MultimediaNetwork(path_graph(4), n_known=False)
        contexts = network.build_contexts()
        assert all(ctx.n is None for ctx in contexts.values())

    def test_seeded_runs_are_reproducible(self):
        graph = ring_graph(7)
        first = MultimediaNetwork(graph, seed=5).run(FloodMax)
        second = MultimediaNetwork(graph, seed=5).run(FloodMax)
        assert first.results == second.results
        assert first.metrics.point_to_point_messages == second.metrics.point_to_point_messages
