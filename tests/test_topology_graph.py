"""Unit tests for the weighted graph data structure."""

import functools

import pytest

from repro.topology.graph import Edge, WeightedGraph, edge_key, sorted_incident_links


@functools.total_ordering
class _ComparableCollidingRepr:
    """Distinct comparable values whose reprs all collide.

    The seed ``edge_key`` ordered endpoints by repr alone, so two distinct
    nodes with equal reprs produced *different* canonical keys depending on
    the argument order — the same physical link could be tracked twice.
    """

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return "node"

    def __hash__(self):
        return hash(self.tag)

    def __eq__(self, other):
        return isinstance(other, _ComparableCollidingRepr) and self.tag == other.tag

    def __lt__(self, other):
        return self.tag < other.tag


class TestEdge:
    def test_other_endpoint(self):
        edge = Edge(1, 2, 5.0)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Edge(1, 2).other(3)

    def test_key_is_canonical(self):
        assert Edge(2, 1).key() == Edge(1, 2).key()
        assert edge_key(5, 3) == edge_key(3, 5)


class TestEdgeKey:
    def test_comparable_nodes_ordered_by_value(self):
        # direct comparison, not repr order ("10" < "2" lexicographically)
        assert edge_key(10, 2) == (2, 10)
        assert edge_key(2, 10) == (2, 10)

    def test_colliding_reprs_of_comparable_nodes_are_consistent(self):
        a = _ComparableCollidingRepr(1)
        b = _ComparableCollidingRepr(2)
        assert repr(a) == repr(b)
        assert edge_key(a, b) == edge_key(b, a)
        assert edge_key(a, b) == (a, b)

    def test_incomparable_nodes_fall_back_to_type_and_repr(self):
        assert edge_key(1, "1") == edge_key("1", 1)
        assert edge_key((0, 1), "x") == edge_key("x", (0, 1))

    def test_string_nodes(self):
        assert edge_key("b", "a") == ("a", "b")

    def test_partial_order_without_strict_comparison_is_consistent(self):
        # disjoint frozensets: a < b and b < a are both False without raising
        a, b = frozenset({1}), frozenset({2})
        assert edge_key(a, b) == edge_key(b, a)


class TestWeightedGraph:
    def test_add_nodes_and_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 2, 4.0)
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 2
        assert graph.weight(0, 1) == 3.0
        assert graph.weight(1, 0) == 3.0

    def test_self_loops_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_duplicate_edge_overwrites_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 9.0)
        assert graph.num_edges() == 1
        assert graph.weight(0, 1) == 9.0

    def test_remove_edge(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        assert graph.num_edges() == 0
        assert not graph.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        graph = WeightedGraph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_weight_missing_edge_raises(self):
        graph = WeightedGraph()
        graph.add_nodes([0, 1])
        with pytest.raises(KeyError):
            graph.weight(0, 1)

    def test_neighbors_and_degree(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert set(graph.neighbors(0)) == {1, 2}
        assert graph.degree(0) == 2
        assert graph.degree(1) == 1

    def test_edges_listed_once(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        assert len(graph.edges()) == 3

    def test_incident_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(0, 2, 3.0)
        incident = graph.incident_edges(0)
        assert {e.other(0) for e in incident} == {1, 2}
        assert sorted(e.weight for e in incident) == [2.0, 3.0]

    def test_copy_is_independent(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges() == 1
        assert clone.num_edges() == 2

    def test_subgraph(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_nodes() == 3
        assert sub.num_edges() == 2
        assert not sub.has_node(3)

    def test_relabeled_default_enumeration(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 7.0)
        renamed = graph.relabeled()
        assert set(renamed.nodes()) == {0, 1}
        assert renamed.weight(0, 1) == 7.0

    def test_relabeled_rejects_collapsed_self_loop(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 3.0)
        with pytest.raises(ValueError):
            graph.relabeled({0: "x", 1: "x", 2: "y"})

    def test_relabeled_merging_mapping_recounts_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(2, 3, 5.0)
        renamed = graph.relabeled({0: "a", 1: "b", 2: "a", 3: "b"})
        assert renamed.num_edges() == 1
        assert renamed.total_weight() == 5.0  # last weight wins, as add_edge

    def test_container_protocol(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        assert 0 in graph
        assert len(graph) == 2
        assert sorted(iter(graph)) == [0, 1]

    def test_total_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 5.0)
        assert graph.total_weight() == 7.0

    def test_set_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.set_weight(0, 1, 11.0)
        assert graph.weight(1, 0) == 11.0
        with pytest.raises(KeyError):
            graph.set_weight(0, 2, 1.0)


class TestIncrementalTotalWeight:
    """total_weight() is maintained incrementally; every mutation must land."""

    def test_add_and_remove(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 5.0)
        assert graph.total_weight() == 7.0
        graph.remove_edge(0, 1)
        assert graph.total_weight() == 5.0

    def test_overwrite_via_add_edge(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(0, 1, 9.0)
        assert graph.total_weight() == 9.0

    def test_set_weight_updates_total(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 3.0)
        graph.set_weight(0, 1, 10.0)
        assert graph.total_weight() == 13.0

    def test_matches_edge_sum_after_mixed_mutations(self):
        graph = WeightedGraph()
        for i in range(6):
            graph.add_edge(i, i + 1, float(i + 1))
        graph.remove_edge(2, 3)
        graph.set_weight(0, 1, 0.5)
        graph.add_edge(0, 6, 4.0)
        assert graph.total_weight() == pytest.approx(
            sum(edge.weight for edge in graph.edges())
        )

    def test_empty_graph(self):
        graph = WeightedGraph()
        graph.add_node(0)
        assert graph.total_weight() == 0.0

    def test_removing_last_edge_clears_float_residue(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 0.1)
        graph.add_edge(2, 3, 0.2)
        graph.remove_edge(0, 1)
        graph.remove_edge(2, 3)
        assert graph.total_weight() == 0.0


class TestCacheInvalidation:
    """The cached whole-graph views must reflect every later mutation."""

    def test_edges_after_add(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        assert len(graph.edges()) == 1  # populate the cache
        graph.add_edge(1, 2, 2.0)
        keys = {edge.key() for edge in graph.edges()}
        assert keys == {(0, 1), (1, 2)}

    def test_edges_after_remove(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.edges()
        graph.remove_edge(0, 1)
        assert [edge.key() for edge in graph.edges()] == [(1, 2)]

    def test_edges_after_set_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.edges()
        graph.set_weight(0, 1, 42.0)
        assert graph.edges()[0].weight == 42.0

    def test_total_weight_after_cached_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        assert graph.total_weight() == 1.0
        graph.edges()
        graph.add_edge(1, 2, 2.0)
        assert graph.total_weight() == 3.0
        graph.set_weight(0, 1, 5.0)
        assert graph.total_weight() == 7.0

    def test_returned_edge_list_is_a_private_copy(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        listing = graph.edges()
        listing.clear()
        assert len(graph.edges()) == 1

    def test_derived_graphs_after_mutation(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.edges()
        graph.add_edge(1, 2, 2.0)
        assert graph.copy().num_edges() == 2
        assert graph.subgraph([0, 1, 2]).num_edges() == 2

    def test_neighbor_views_reflect_mutation(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        view = graph.iter_neighbors(0)
        graph.add_edge(0, 2, 2.0)
        assert list(view) == [1, 2]
        assert dict(graph.neighbor_items(0)) == {1: 1.0, 2: 2.0}


class TestSortedIncidentLinks:
    def test_distinct_weights_use_global_order(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 2, 2.0)
        links = sorted_incident_links(graph)
        assert [(w, v) for w, v, _ in links[0]] == [(1.0, 2), (3.0, 1)]
        assert [(w, v) for w, v, _ in links[2]] == [(1.0, 0), (2.0, 1)]
        # the canonical key rides along with every link
        assert links[0][0][2] == edge_key(0, 2)

    def test_duplicate_weights_break_ties_by_repr(self):
        graph = WeightedGraph()
        graph.add_edge(0, 10, 1.0)
        graph.add_edge(0, 2, 1.0)
        links = sorted_incident_links(graph)
        # repr order: "10" < "2"
        assert [v for _, v, _ in links[0]] == [10, 2]
