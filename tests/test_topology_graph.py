"""Unit tests for the weighted graph data structure."""

import pytest

from repro.topology.graph import Edge, WeightedGraph, edge_key


class TestEdge:
    def test_other_endpoint(self):
        edge = Edge(1, 2, 5.0)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Edge(1, 2).other(3)

    def test_key_is_canonical(self):
        assert Edge(2, 1).key() == Edge(1, 2).key()
        assert edge_key(5, 3) == edge_key(3, 5)


class TestWeightedGraph:
    def test_add_nodes_and_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(1, 2, 4.0)
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 2
        assert graph.weight(0, 1) == 3.0
        assert graph.weight(1, 0) == 3.0

    def test_self_loops_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_duplicate_edge_overwrites_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 1, 9.0)
        assert graph.num_edges() == 1
        assert graph.weight(0, 1) == 9.0

    def test_remove_edge(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        assert graph.num_edges() == 0
        assert not graph.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        graph = WeightedGraph()
        graph.add_node(0)
        graph.add_node(1)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_weight_missing_edge_raises(self):
        graph = WeightedGraph()
        graph.add_nodes([0, 1])
        with pytest.raises(KeyError):
            graph.weight(0, 1)

    def test_neighbors_and_degree(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert set(graph.neighbors(0)) == {1, 2}
        assert graph.degree(0) == 2
        assert graph.degree(1) == 1

    def test_edges_listed_once(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        assert len(graph.edges()) == 3

    def test_incident_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(0, 2, 3.0)
        incident = graph.incident_edges(0)
        assert {e.other(0) for e in incident} == {1, 2}
        assert sorted(e.weight for e in incident) == [2.0, 3.0]

    def test_copy_is_independent(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges() == 1
        assert clone.num_edges() == 2

    def test_subgraph(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_nodes() == 3
        assert sub.num_edges() == 2
        assert not sub.has_node(3)

    def test_relabeled_default_enumeration(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 7.0)
        renamed = graph.relabeled()
        assert set(renamed.nodes()) == {0, 1}
        assert renamed.weight(0, 1) == 7.0

    def test_container_protocol(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        assert 0 in graph
        assert len(graph) == 2
        assert sorted(iter(graph)) == [0, 1]

    def test_total_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 5.0)
        assert graph.total_weight() == 7.0

    def test_set_weight(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.set_weight(0, 1, 11.0)
        assert graph.weight(1, 0) == 11.0
        with pytest.raises(KeyError):
            graph.set_weight(0, 2, 1.0)
