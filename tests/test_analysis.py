"""Tests for complexity curves, statistics and report formatting."""


import pytest

from repro.analysis.complexity import (
    det_partition_message_bound,
    det_partition_time_bound,
    global_det_time_bound,
    global_rand_time_bound,
    mst_time_bound,
    rand_partition_message_bound,
    ratio_to_bound,
)
from repro.analysis.reporting import Table, format_table
from repro.analysis.statistics import mean, population_std, summarize

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


class TestComplexityCurves:
    def test_time_bounds_grow_sublinearly(self):
        assert det_partition_time_bound(400) < 400
        assert det_partition_time_bound(10_000) / det_partition_time_bound(100) < 100

    def test_message_bounds_include_m(self):
        assert det_partition_message_bound(100, 5000) >= 5000
        assert rand_partition_message_bound(100, 5000) >= 5000

    def test_global_bounds_ordering(self):
        # the deterministic bound is larger than the randomized one
        for n in (64, 256, 1024):
            assert global_det_time_bound(n) >= global_rand_time_bound(n) / 4

    def test_mst_bound(self):
        assert mst_time_bound(1024) == pytest.approx(32 * 10)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            det_partition_time_bound(0)
        with pytest.raises(ValueError):
            det_partition_message_bound(10, -1)

    def test_ratio_to_bound(self):
        assert ratio_to_bound([10, 20], [5, 10]) == [2.0, 2.0]
        with pytest.raises(ValueError):
            ratio_to_bound([1], [1, 2])
        with pytest.raises(ValueError):
            ratio_to_bound([1], [0])


class TestStatistics:
    def test_mean_and_std(self):
        assert mean([2, 4, 6]) == 4
        assert population_std([2, 2, 2]) == 0.0
        assert population_std([0, 2]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            summarize([])

    def test_summary(self):
        summary = summarize([1.0, 3.0, 5.0])
        assert summary.count == 3
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    @pytest.mark.skipif(np is None, reason="numpy unavailable")
    def test_matches_numpy(self):
        values = [1.5, 2.25, 8.0, -3.0, 0.5]
        assert mean(values) == pytest.approx(float(np.mean(values)))
        assert population_std(values) == pytest.approx(float(np.std(values)))


class TestReporting:
    def test_table_rendering_contains_rows(self):
        table = Table(title="demo", columns=["n", "value"])
        table.add_row(64, 1.2345)
        table.add_row(128, 7)
        text = table.render()
        assert "demo" in text
        assert "1.23" in text
        assert "128" in text

    def test_row_arity_checked(self):
        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_alignment(self):
        text = format_table("t", ["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines) == 6
        assert lines[2].startswith("col")
