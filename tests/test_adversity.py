"""Tests for the deterministic adversity layer (``repro.sim.adversity``).

The contract under test (see ``docs/architecture.md``, "Adversity model"):
schedules are validated declaratively and derived deterministically from the
``(spec, point key)`` pair, a zero schedule is a strict no-op (bit-identical
rows to a run without the layer), faults reach protocols only through the
normal message/slot interfaces (crash recovery works for protocols that
retransmit), jammed slots are accounted exactly, runs the adversary wedges
abort with a bounded :class:`AdversityAbort` instead of hanging, and the CLI
rejects bad adversity input through its usage-error path.
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main as cli_main
from repro.experiments.harness import make_topology
from repro.experiments.registry import get_experiment
from repro.experiments.runner import run_experiment
from repro.sim.adversity import (
    ADVERSITY_KINDS,
    ADVERSITY_PRESETS,
    AdversitySpec,
    AdversityState,
    adversity_spec,
    adversity_state,
    adversity_stream_seed,
    canonical_adversity,
    resolve_adversity,
)
from repro.sim.channel import SlottedChannel
from repro.sim.errors import AdversityAbort, SimulationTimeout
from repro.sim.metrics import MetricsRecorder
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.node import NodeProtocol
from repro.sim.synchronizer import ChannelSynchronizer
from repro.protocols.spanning.broadcast_convergecast import TreeAggregationProtocol
from repro.protocols.spanning.bfs import build_bfs_forest
from repro.protocols.spanning.tree_utils import children_map


# ----------------------------------------------------------------------
# spec construction and validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_presets_cover_the_declared_kinds(self):
        assert set(ADVERSITY_KINDS) <= set(ADVERSITY_PRESETS)
        for name, spec in ADVERSITY_PRESETS.items():
            assert spec.name == name

    def test_zero_spec_resolves_to_none(self):
        assert resolve_adversity(None) is None
        assert resolve_adversity("none") is None
        assert resolve_adversity({"name": "none"}) is None
        assert adversity_state(None, "k") is None
        assert ADVERSITY_PRESETS["none"].is_zero

    def test_nonzero_presets_are_not_zero(self):
        for name in ("crash", "loss", "jam", "churn"):
            assert not ADVERSITY_PRESETS[name].is_zero

    @pytest.mark.parametrize(
        "field", ["crash_rate", "loss_rate", "delay_rate", "jam_rate", "churn_rate"]
    )
    def test_out_of_range_rate_rejected(self, field):
        with pytest.raises(ValueError, match="must lie in"):
            AdversitySpec(**{field: 1.5})
        with pytest.raises(ValueError, match="must lie in"):
            AdversitySpec(**{field: -0.1})

    def test_unknown_preset_name_rejected(self):
        with pytest.raises(ValueError, match="unknown adversity preset"):
            adversity_spec("meteor")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            adversity_spec({"name": "loss", "severity": 3})

    def test_mapping_overrides_preset_base(self):
        spec = adversity_spec({"name": "loss", "loss_rate": 0.5})
        assert spec.name == "loss"
        assert spec.loss_rate == 0.5
        assert spec.delay_rate == ADVERSITY_PRESETS["loss"].delay_rate

    def test_canonical_form_is_complete_and_round_trips(self):
        canonical = canonical_adversity("jam")
        assert canonical["name"] == "jam"
        assert set(canonical) == set(AdversitySpec().to_dict())
        assert adversity_spec(canonical) == ADVERSITY_PRESETS["jam"]

    def test_canonical_respects_allowed_list(self):
        with pytest.raises(ValueError):
            canonical_adversity("jam", allowed=("none", "loss"))

    def test_registry_rejects_adversity_on_undeclared_experiment(self):
        spec = get_experiment("e1")
        with pytest.raises(ValueError, match="does not accept"):
            spec.params_for("quick", {"adversity": "loss"})


# ----------------------------------------------------------------------
# schedule determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_stream_seed_is_a_pure_function_of_the_point_key(self):
        assert adversity_stream_seed("e7", 64, "ring") == adversity_stream_seed(
            "e7", 64, "ring"
        )
        assert adversity_stream_seed("e7", 64, "ring") != adversity_stream_seed(
            "e7", 64, "grid"
        )

    def test_same_point_key_same_schedule(self):
        graph = make_topology("grid", 36, seed=11)

        def draws():
            state = adversity_state("loss", "det", 36)
            state.bind_topology(graph)
            rng = state.spawn_rng()
            return [
                state.drop_message(rng, 0, 1, r) for r in range(200)
            ], state.counters()

        assert draws() == draws()

    def test_different_substream_tags_differ(self):
        graph = make_topology("grid", 36, seed=11)
        outcomes = []
        for tag in ("multimedia", "p2p"):
            state = adversity_state("loss", "det", 36, tag)
            state.bind_topology(graph)
            rng = state.spawn_rng()
            outcomes.append([state.drop_message(rng, 0, 1, r) for r in range(200)])
        assert outcomes[0] != outcomes[1]

    def test_crash_windows_are_periodic(self):
        spec = adversity_spec(
            {"name": "crash", "crash_nodes": (3,), "crash_length": 2,
             "crash_period": 10, "crash_rate": 0.0}
        )
        state = AdversityState(spec, seed=1)
        state.bind_topology(make_topology("ring", 8, seed=11))
        pattern = [state.node_crashed(3, r) for r in range(30)]
        assert pattern[:10] == pattern[10:20] == pattern[20:30]
        assert sum(pattern[:10]) == 2

    def test_zero_adversity_rows_bit_identical(self):
        clean = run_experiment("e5", preset="quick")
        with_none = run_experiment(
            "e5", preset="quick", overrides={"adversity": "none"}
        )
        assert with_none.rows == clean.rows


# ----------------------------------------------------------------------
# crash-during-broadcast recovery
# ----------------------------------------------------------------------
class _RetransmittingFlood(NodeProtocol):
    """Root floods a token; holders re-send every round (crash-tolerant)."""

    # class default: a node crashed from round 0 has not run on_start when
    # the stop predicate first fires
    has_token = False

    def on_start(self):
        self.has_token = bool(self.ctx.extra.get("root"))
        if self.has_token:
            self.send_to_all_neighbors("tok")

    def on_round(self, inbox, channel):
        if inbox and not self.has_token:
            self.has_token = True
        if self.has_token:
            self.send_to_all_neighbors("tok")


class TestCrashRecovery:
    def test_flood_survives_a_mid_broadcast_crash(self):
        graph = make_topology("ring", 12, seed=11)
        nodes = sorted(graph.nodes())
        root, victim = nodes[0], nodes[len(nodes) // 2]
        # period 8 guarantees the sampled window intersects the flood (which
        # needs >= 6 rounds to reach the antipodal victim on a 12-ring)
        state = adversity_state(
            {"name": "crash", "crash_rate": 0.0, "crash_nodes": (victim,),
             "crash_length": 3, "crash_period": 8},
            "crash-test", 12,
        )
        result = MultimediaNetwork(graph, seed=3).run(
            _RetransmittingFlood,
            inputs={root: {"root": True}},
            stop_when=lambda protocols: all(
                p.has_token for p in protocols.values()
            ),
            adversity=state,
        )
        assert all(p.has_token for p in result.protocols.values())
        # the victim actually lost rounds to its crash window
        assert state.crash_node_rounds > 0

    def test_crashed_from_round_zero_gets_deferred_start(self):
        graph = make_topology("ring", 8, seed=11)
        nodes = sorted(graph.nodes())
        root, victim = nodes[0], nodes[3]
        # the victim is down for rounds 0..3 (offset forced by crash_nodes)
        state = adversity_state(
            {"name": "crash", "crash_rate": 0.0, "crash_nodes": (victim,),
             "crash_length": 4, "crash_period": 64},
            "late-start", 8,
        )
        result = MultimediaNetwork(graph, seed=3).run(
            _RetransmittingFlood,
            inputs={root: {"root": True}},
            stop_when=lambda protocols: all(
                p.has_token for p in protocols.values()
            ),
            adversity=state,
        )
        assert result.protocols[victim].has_token


# ----------------------------------------------------------------------
# jam accounting
# ----------------------------------------------------------------------
class TestJamAccounting:
    def test_certain_jam_forces_every_slot_to_collide(self):
        state = AdversityState(adversity_spec({"name": "jam", "jam_rate": 1.0}),
                               seed=9)
        recorder = MetricsRecorder()
        channel = SlottedChannel(metrics=recorder, adversity=state)
        for slot in range(20):
            event = channel.resolve_slot(slot, [(0, "x")] if slot % 2 else [])
            assert event.is_collision()
        assert recorder.channel_jammed == 20
        assert recorder.channel_collision == 20
        assert state.slots_jammed == 20

    def test_jammed_slots_counted_exactly(self):
        state = AdversityState(adversity_spec("jam"), seed=17)
        recorder = MetricsRecorder()
        channel = SlottedChannel(metrics=recorder, adversity=state)
        rng = random.Random(4)
        for slot in range(300):
            writers = [(i, i) for i in range(rng.randrange(3))]
            channel.resolve_slot(slot, writers)
        assert recorder.channel_jammed == state.slots_jammed
        assert 0 < recorder.channel_jammed < 300
        # a jam can only ever add collisions, never hide a write
        assert recorder.channel_jammed <= recorder.channel_collision

    def test_no_adversity_leaves_jam_counter_zero(self):
        recorder = MetricsRecorder()
        channel = SlottedChannel(metrics=recorder)
        channel.resolve_slot(0, [(0, "a"), (1, "b")])
        assert recorder.channel_collision == 1
        assert recorder.channel_jammed == 0


# ----------------------------------------------------------------------
# bounded aborts: the adversary can wedge a run, never hang it
# ----------------------------------------------------------------------
def _aggregation_inputs(graph, root):
    parents, _, _ = build_bfs_forest(graph, [root])
    children = children_map(parents)
    return {
        node: {
            "parent": parents[node],
            "children": tuple(children[node]),
            "value": 1,
            "combine": lambda a, b: a + b,
        }
        for node in graph.nodes()
    }


class TestBoundedAbort:
    def test_heavy_loss_aborts_within_budget(self):
        graph = make_topology("grid", 36, seed=11)
        root = min(graph.nodes())
        state = adversity_state(
            {"name": "loss", "loss_rate": 0.6, "delay_rate": 0.0},
            "abort-test", 36,
        )
        with pytest.raises(AdversityAbort) as excinfo:
            MultimediaNetwork(graph, seed=3).run(
                TreeAggregationProtocol,
                inputs=_aggregation_inputs(graph, root),
                adversity=state,
            )
        abort = excinfo.value
        assert abort.rounds <= state.round_budget(36)
        assert abort.pending > 0
        assert isinstance(abort, SimulationTimeout)  # safety nets still catch it

    def test_round_budget_override_is_honoured(self):
        graph = make_topology("grid", 36, seed=11)
        root = min(graph.nodes())
        state = adversity_state(
            {"name": "loss", "loss_rate": 0.6, "delay_rate": 0.0,
             "round_budget": 40, "stall_rounds": 10_000},
            "budget-test", 36,
        )
        with pytest.raises(AdversityAbort) as excinfo:
            MultimediaNetwork(graph, seed=3).run(
                TreeAggregationProtocol,
                inputs=_aggregation_inputs(graph, root),
                adversity=state,
            )
        assert excinfo.value.rounds == 40

    def test_synchronizer_lost_message_deadlock_aborts(self):
        graph = make_topology("grid", 25, seed=11)
        root = min(graph.nodes())
        state = adversity_state(
            {"name": "loss", "loss_rate": 0.7, "delay_rate": 0.0},
            "sync-abort", 25,
        )
        with pytest.raises(AdversityAbort):
            ChannelSynchronizer(graph, max_link_delay=3, seed=3).run(
                TreeAggregationProtocol,
                inputs=_aggregation_inputs(graph, root),
                adversity=state,
            )

    def test_experiment_rows_report_abort_instead_of_raising(self):
        result = run_experiment(
            "e7", preset="quick",
            overrides={"adversity": {"name": "loss", "loss_rate": 0.6}},
        )
        cells = {row["t_multimedia"] for row in result.rows}
        assert "abort" in cells  # bounded, structured — not a traceback


# ----------------------------------------------------------------------
# CLI validation paths
# ----------------------------------------------------------------------
class TestCliValidation:
    def test_unknown_adversity_name_is_a_usage_error(self, capsys):
        code = cli_main(["run", "e7", "--preset", "quick",
                         "--adversity", "meteor"])
        assert code == 2
        assert "unknown adversity preset" in capsys.readouterr().err

    def test_out_of_range_rate_is_a_usage_error(self, capsys):
        code = cli_main(["run", "e7", "--preset", "quick",
                         "--adversity", "loss",
                         "--set", "adversity.loss_rate=1.5"])
        assert code == 2
        assert "must lie in" in capsys.readouterr().err

    def test_unknown_adversity_field_is_a_usage_error(self, capsys):
        code = cli_main(["run", "e7", "--preset", "quick",
                         "--set", "adversity.meteor_rate=0.5"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_dotted_field_is_a_usage_error(self, capsys):
        code = cli_main(["run", "e7", "--preset", "quick",
                         "--set", "adversity.=0.5"])
        assert code == 2
        assert "adversity.FIELD" in capsys.readouterr().err

    def test_experiment_without_axis_rejects_flag(self, capsys):
        code = cli_main(["run", "e1", "--preset", "quick",
                         "--adversity", "loss"])
        assert code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_named_preset_with_dotted_refinement_runs(self, capsys):
        code = cli_main(["run", "e7", "--preset", "quick", "--quiet",
                         "--adversity", "loss",
                         "--set", "adversity.loss_rate=0.01",
                         "--set", "adversity.delay_rate=0.0"])
        assert code == 0
