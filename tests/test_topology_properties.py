"""Unit tests for graph-property helpers."""

import pytest

from repro.topology.generators import grid_graph, path_graph, ring_graph
from repro.topology.graph import WeightedGraph
from repro.topology.properties import (
    bfs_tree_parents,
    breadth_first_levels,
    connected_components,
    diameter,
    eccentricity,
    graph_radius,
    is_connected,
    shortest_path_lengths,
    tree_radius_from_root,
)


class TestBFS:
    def test_levels_on_path(self):
        graph = path_graph(5)
        levels = breadth_first_levels(graph, 0)
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_levels_missing_source(self):
        with pytest.raises(KeyError):
            breadth_first_levels(path_graph(3), 99)

    def test_bfs_tree_parents(self):
        graph = grid_graph(3, 3)
        parents = bfs_tree_parents(graph, 0)
        assert parents[0] is None
        assert len(parents) == 9
        # every non-root's parent is one hop closer to the root
        levels = breadth_first_levels(graph, 0)
        for node, parent in parents.items():
            if parent is not None:
                assert levels[parent] == levels[node] - 1


class TestConnectivity:
    def test_connected_components_split(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        components = connected_components(graph)
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]

    def test_is_connected(self):
        assert is_connected(ring_graph(5))
        graph = WeightedGraph()
        graph.add_nodes([0, 1])
        assert not is_connected(graph)

    def test_empty_graph_is_connected(self):
        assert is_connected(WeightedGraph())


class TestDistances:
    def test_diameter_and_radius_of_path(self):
        graph = path_graph(7)
        assert diameter(graph) == 6
        assert graph_radius(graph) == 3

    def test_eccentricity(self):
        graph = path_graph(5)
        assert eccentricity(graph, 0) == 4
        assert eccentricity(graph, 2) == 2

    def test_eccentricity_disconnected_raises(self):
        graph = WeightedGraph()
        graph.add_nodes([0, 1])
        with pytest.raises(ValueError):
            eccentricity(graph, 0)

    def test_diameter_of_empty_graph_raises(self):
        with pytest.raises(ValueError):
            diameter(WeightedGraph())

    def test_all_pairs(self):
        graph = ring_graph(6)
        lengths = shortest_path_lengths(graph)
        assert lengths[0][3] == 3
        assert lengths[2][5] == 3


class TestTreeRadius:
    def test_radius_from_parent_map(self):
        parents = {0: None, 1: 0, 2: 1, 3: 1}
        assert tree_radius_from_root(parents, 0) == 2

    def test_cycle_detection(self):
        parents = {0: 1, 1: 0}
        with pytest.raises(ValueError):
            tree_radius_from_root(parents, 0)


class TestApproximateDiameter:
    def test_exact_on_paths_trees_and_rings(self):
        from repro.topology.generators import path_graph, random_tree, ring_graph
        from repro.topology.properties import approximate_diameter, diameter

        assert approximate_diameter(path_graph(17)) == 16
        tree = random_tree(40, seed=8)
        assert approximate_diameter(tree) == diameter(tree)
        # on a cycle the second sweep starts at an antipode, whose
        # eccentricity equals the true diameter
        assert approximate_diameter(ring_graph(30)) == 15
        assert approximate_diameter(ring_graph(31)) == 15

    def test_lower_bound_never_exceeds_exact(self):
        from repro.topology.generators import erdos_renyi_graph
        from repro.topology.properties import approximate_diameter, diameter

        for seed in (1, 2, 3):
            graph = erdos_renyi_graph(60, 0.08, seed=seed)
            assert approximate_diameter(graph) <= diameter(graph)

    def test_rejects_empty_and_disconnected(self):
        import pytest

        from repro.topology.graph import WeightedGraph
        from repro.topology.properties import approximate_diameter

        with pytest.raises(ValueError):
            approximate_diameter(WeightedGraph())
        disconnected = WeightedGraph()
        disconnected.add_nodes([0, 1])
        with pytest.raises(ValueError):
            approximate_diameter(disconnected)
