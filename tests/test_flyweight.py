"""Flyweight sim layer tests (``repro.sim.flyweight``).

The contract: a flyweight protocol produces exactly the outputs its
classic per-node counterpart produces — on the synchronous simulator, under
every adversity preset, and under the channel synchronizer — while holding
all per-node state in slot-indexed columns on one shared instance.  The
equivalence pairs here run :class:`TreeAggregationProtocol` (classic)
against :class:`TreeAggregationFlyweight` point by point; the stream-era
fingerprints live in ``tests/test_perf_equivalence.py`` (golden v4).
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import make_topology
from repro.protocols.collision import (
    GreenbergLadnerEstimator,
    GreenbergLadnerFlyweight,
    RandomizedLeaderElection,
    RandomizedLeaderElectionFlyweight,
)
from repro.protocols.spanning.bfs import build_bfs_forest
from repro.protocols.spanning.broadcast_convergecast import (
    TreeAggregationFlyweight,
    TreeAggregationProtocol,
)
from repro.protocols.spanning.tree_utils import children_map
from repro.sim.adversity import ADVERSITY_PRESETS, adversity_state
from repro.sim.errors import AdversityAbort
from repro.sim.flyweight import (
    FlyweightEnvironment,
    FlyweightProtocol,
    is_flyweight_factory,
)
from repro.sim.multimedia import MultimediaNetwork
from repro.sim.synchronizer import ChannelSynchronizer


def aggregation_inputs(graph, redistribute):
    """Build per-node forest inputs for a BFS tree rooted at the min node."""
    root = min(graph.nodes())
    parents, _, _ = build_bfs_forest(graph, [root])
    children = children_map(parents)
    return {
        node: {
            "parent": parents[node],
            "children": tuple(children[node]),
            "value": 1,
            "combine": lambda a, b: a + b,
            "redistribute": redistribute,
        }
        for node in graph.nodes()
    }


TOPOLOGIES = (("grid", 36), ("ring", 24), ("scale_free", 48))


class TestFactoryDetection:
    def test_flyweight_subclass_detected(self):
        assert is_flyweight_factory(TreeAggregationFlyweight)

    def test_classic_protocol_rejected(self):
        assert not is_flyweight_factory(TreeAggregationProtocol)

    def test_non_class_rejected(self):
        assert not is_flyweight_factory(lambda ctx: None)


class TestSynchronousEquivalence:
    @pytest.mark.parametrize("kind,n", TOPOLOGIES)
    @pytest.mark.parametrize("redistribute", (False, True))
    def test_results_and_rounds_match_classic(self, kind, n, redistribute):
        graph = make_topology(kind, n, seed=11)
        inputs = aggregation_inputs(graph, redistribute)
        classic = MultimediaNetwork(graph, seed=3).run(
            TreeAggregationProtocol, inputs=inputs
        )
        flyweight = MultimediaNetwork(graph, seed=3).run(
            TreeAggregationFlyweight, inputs=inputs
        )
        assert flyweight.results == classic.results
        assert flyweight.rounds == classic.rounds
        assert (
            flyweight.metrics.point_to_point_messages
            == classic.metrics.point_to_point_messages
        )

    def test_stop_when_rejected(self):
        graph = make_topology("ring", 8, seed=11)
        inputs = aggregation_inputs(graph, False)
        with pytest.raises(ValueError, match="stop_when"):
            MultimediaNetwork(graph, seed=3).run(
                TreeAggregationFlyweight,
                inputs=inputs,
                stop_when=lambda protocols: False,
            )


CHANNEL_PAIRS = (
    (GreenbergLadnerEstimator, GreenbergLadnerFlyweight),
    (RandomizedLeaderElection, RandomizedLeaderElectionFlyweight),
)


class TestChannelProtocolEquivalence:
    """The PR 7 follow-up twins: channel-feedback protocols, no mail."""

    @pytest.mark.parametrize("kind,n", TOPOLOGIES)
    @pytest.mark.parametrize("classic,flyweight", CHANNEL_PAIRS)
    def test_results_and_rounds_match_classic(self, kind, n, classic, flyweight):
        graph = make_topology(kind, n, seed=11)
        for seed in (3, 9):
            classic_run = MultimediaNetwork(graph, seed=seed).run(classic)
            flyweight_run = MultimediaNetwork(graph, seed=seed).run(flyweight)
            assert flyweight_run.results == classic_run.results
            assert flyweight_run.rounds == classic_run.rounds
            assert flyweight_run.metrics.rounds == classic_run.metrics.rounds
            assert (
                flyweight_run.channel_history == classic_run.channel_history
            )

    @pytest.mark.parametrize(
        "preset", sorted(name for name in ADVERSITY_PRESETS if name != "none")
    )
    @pytest.mark.parametrize("classic,flyweight", CHANNEL_PAIRS)
    def test_outcome_matches_classic_under_preset(self, preset, classic, flyweight):
        graph = make_topology("grid", 36, seed=11)
        outcomes = []
        for factory in (classic, flyweight):
            adv = adversity_state(preset, "flyweight-channel", 36, "grid", preset)
            try:
                result = MultimediaNetwork(graph, seed=3).run(
                    factory, adversity=adv
                )
                outcomes.append(("ok", result.results, result.rounds, adv.counters()))
            except AdversityAbort as abort:
                outcomes.append(
                    ("abort", abort.rounds, abort.reason, adv.counters())
                )
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("flyweight", [pair[1] for pair in CHANNEL_PAIRS])
    def test_detected_as_flyweight(self, flyweight):
        assert is_flyweight_factory(flyweight)


class TestAdversityEquivalence:
    @pytest.mark.parametrize(
        "preset", sorted(name for name in ADVERSITY_PRESETS if name != "none")
    )
    def test_outcome_matches_classic_under_preset(self, preset):
        graph = make_topology("grid", 36, seed=11)
        inputs = aggregation_inputs(graph, True)
        outcomes = []
        for factory in (TreeAggregationProtocol, TreeAggregationFlyweight):
            adv = adversity_state(preset, "flyweight-test", 36, "grid", preset)
            try:
                result = MultimediaNetwork(graph, seed=3).run(
                    factory, inputs=inputs, adversity=adv
                )
                outcomes.append(("ok", result.results, result.rounds, adv.counters()))
            except AdversityAbort as abort:
                outcomes.append(
                    ("abort", abort.rounds, abort.reason, adv.counters())
                )
        assert outcomes[0] == outcomes[1]


class TestSynchronizerEquivalence:
    @pytest.mark.parametrize("kind,n", TOPOLOGIES)
    def test_report_matches_classic(self, kind, n):
        graph = make_topology(kind, n, seed=11)
        inputs = aggregation_inputs(graph, True)
        classic = ChannelSynchronizer(graph, max_link_delay=3, seed=3).run(
            TreeAggregationProtocol, inputs=inputs
        )
        flyweight = ChannelSynchronizer(graph, max_link_delay=3, seed=3).run(
            TreeAggregationFlyweight, inputs=inputs
        )
        assert flyweight.results == classic.results
        assert flyweight.pulses == classic.pulses
        assert flyweight.asynchronous_time == classic.asynchronous_time
        assert flyweight.algorithm_messages == classic.algorithm_messages
        assert flyweight.ack_messages == classic.ack_messages
        assert flyweight.busy_tone_slots == classic.busy_tone_slots

    @pytest.mark.parametrize("preset", ("loss", "crash"))
    def test_outcome_matches_classic_under_adversity(self, preset):
        graph = make_topology("grid", 36, seed=11)
        inputs = aggregation_inputs(graph, True)
        outcomes = []
        for factory in (TreeAggregationProtocol, TreeAggregationFlyweight):
            adv = adversity_state(preset, "flyweight-sync", 36, "grid", preset)
            try:
                report = ChannelSynchronizer(graph, max_link_delay=3, seed=3).run(
                    factory, inputs=inputs, adversity=adv
                )
                outcomes.append(
                    ("ok", report.results, report.pulses, report.total_messages)
                )
            except AdversityAbort as abort:
                outcomes.append(("abort", abort.rounds, abort.reason))
        assert outcomes[0] == outcomes[1]


class TestFlyweightState:
    def test_columns_are_slot_indexed(self):
        graph = make_topology("ring", 8, seed=11)
        inputs = aggregation_inputs(graph, False)
        network = MultimediaNetwork(graph, seed=3)
        env = network._flyweight_environment()
        assert env.num_slots == graph.num_nodes()
        assert sorted(env.slot_of[node] for node in env.nodes) == list(
            range(env.num_slots)
        )

    def test_halt_slot_bookkeeping(self):
        env = FlyweightEnvironment(
            nodes=("a", "b"),
            neighbors=(("b",), ("a",)),
            link_weights=({"b": 1.0}, {"a": 1.0}),
            n=2,
            streams=None,
        )

        class Noop(FlyweightProtocol):
            def on_round(self, slot, inbox, channel):
                pass

        protocol = Noop(env)
        assert protocol.active_count == 2
        protocol.halt_slot(env.slot_of["b"], result=7)
        assert protocol.active_count == 1
        assert protocol.results_by_node() == {"a": None, "b": 7}
